//! A concurrent plan cache keyed by canonical query fingerprint + catalog
//! epoch.
//!
//! Caching optimized plans is semantically safe here because optimization
//! is a pure function of (query, catalog statistics, optimizer options):
//! the estimators are deterministic and consult only the statistics frozen
//! in a catalog snapshot. The cache key therefore needs three parts:
//!
//! * the **canonical fingerprint** of the SQL (`els-sql`'s
//!   [`els_sql::fingerprint`] — whitespace, conjunct order and symmetric
//!   operand order do not fragment the cache),
//! * the **optimizer configuration**
//!   ([`crate::OptimizerOptions::config_fingerprint`]) — the same SQL
//!   planned under a different estimator strategy, selectivity rule, or
//!   feedback mode is a different plan, and serving one to the other would
//!   replay the wrong estimates (the caller folds this into the string
//!   fingerprint it passes in), and
//! * the **catalog epoch** the plan was optimized against
//!   ([`els_catalog::SharedCatalog::epoch`]) — any catalog mutation bumps
//!   it, so stale plans can never be served.
//!
//! Eviction is LRU by a logical access clock under a capacity bound.
//! Hit/miss/eviction/invalidation counters live in
//! [`els_exec::EngineCounters`] so monitoring sits next to the execution
//! metrics.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use els_core::sync::lock_recovering;
use els_exec::{EngineCounters, EngineCountersSnapshot, MetricsRegistry};

use crate::optimizer::OptimizedQuery;

/// Bump one counter on this cache and mirror it into the process-wide
/// [`MetricsRegistry`], which aggregates cache traffic across all engines.
fn bump(local: &std::sync::atomic::AtomicU64, global: &std::sync::atomic::AtomicU64, n: u64) {
    local.fetch_add(n, Ordering::Relaxed);
    global.fetch_add(n, Ordering::Relaxed);
}

/// Everything needed to execute a cached plan without re-binding: the
/// optimized plan plus the name resolution the binder produced.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The optimization result (plan, join order, estimates).
    pub optimized: OptimizedQuery,
    /// Base-table names of the `FROM` list, in positional order — resolve
    /// these against the *same-epoch* snapshot to get the input tables.
    pub table_names: Vec<String>,
    /// Binding names (aliases) of the `FROM` list, for display.
    pub binding_names: Vec<String>,
}

#[derive(Debug)]
struct Entry {
    epoch: u64,
    plan: Arc<CachedPlan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct State {
    entries: HashMap<String, Entry>,
    clock: u64,
}

/// A bounded, thread-safe map from query fingerprint to optimized plan.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    counters: EngineCounters,
    state: Mutex<State>,
}

impl PlanCache {
    /// Default capacity used by [`PlanCache::default`] and the engine.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A cache holding at most `capacity` plans (0 disables caching: every
    /// lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache { capacity, counters: EngineCounters::new(), state: Mutex::new(State::default()) }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a plan optimized at exactly `epoch`. A present entry from an
    /// older epoch is dropped (counted as an invalidation) and reported as
    /// a miss.
    pub fn get(&self, fingerprint: &str, epoch: u64) -> Option<Arc<CachedPlan>> {
        let global = MetricsRegistry::global().cache_counters();
        let mut state = lock_recovering(&self.state);
        state.clock += 1;
        let clock = state.clock;
        match state.entries.get_mut(fingerprint) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = clock;
                let plan = Arc::clone(&entry.plan);
                drop(state);
                bump(&self.counters.hits, &global.hits, 1);
                Some(plan)
            }
            Some(_) => {
                state.entries.remove(fingerprint);
                drop(state);
                bump(&self.counters.invalidations, &global.invalidations, 1);
                bump(&self.counters.misses, &global.misses, 1);
                None
            }
            None => {
                drop(state);
                bump(&self.counters.misses, &global.misses, 1);
                None
            }
        }
    }

    /// Insert a plan optimized at `epoch`, evicting least-recently-used
    /// entries to stay within capacity. Two threads racing to insert the
    /// same fingerprint is benign — last writer wins, both plans are
    /// equivalent.
    ///
    /// Replacing an existing fingerprint is **not** an eviction (capacity
    /// did not force anything out) and must not trigger the LRU sweep: the
    /// replaced slot already counted toward `len`, so the cache cannot be
    /// over capacity. Replacing an entry whose epoch went stale *is*
    /// counted as an invalidation — the old plan died of catalog drift, and
    /// dropping it silently would under-report invalidations relative to
    /// the `get`-then-reoptimize path.
    pub fn insert(&self, fingerprint: String, epoch: u64, plan: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let global = MetricsRegistry::global().cache_counters();
        let mut state = lock_recovering(&self.state);
        state.clock += 1;
        let clock = state.clock;
        let prev = state.entries.insert(fingerprint, Entry { epoch, plan, last_used: clock });
        let stale_replaced = prev.as_ref().is_some_and(|e| e.epoch != epoch);
        let mut evicted = 0u64;
        while prev.is_none() && state.entries.len() > self.capacity {
            let lru = state.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone());
            let Some(lru) = lru else { break };
            state.entries.remove(&lru);
            evicted += 1;
        }
        drop(state);
        if stale_replaced {
            bump(&self.counters.invalidations, &global.invalidations, 1);
        }
        if evicted > 0 {
            bump(&self.counters.evictions, &global.evictions, evicted);
        }
    }

    /// Drop every entry (configuration changed, tests).
    pub fn clear(&self) {
        lock_recovering(&self.state).entries.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        lock_recovering(&self.state).entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live counters (shared with anyone monitoring this cache).
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// Point-in-time copy of the counters.
    pub fn stats(&self) -> EngineCountersSnapshot {
        self.counters.snapshot()
    }
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new(PlanCache::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_core::Els;
    use els_exec::plan::PlanOutput;
    use els_exec::{PlanNode, QueryPlan};

    fn dummy_plan() -> Arc<CachedPlan> {
        let els = Els::prepare(
            &[],
            &els_core::QueryStatistics::new(vec![els_core::TableStatistics::new(
                10.0,
                vec![els_core::ColumnStatistics::with_distinct(10.0)],
            )]),
            &els_core::ElsOptions::default(),
        )
        .unwrap();
        Arc::new(CachedPlan {
            optimized: OptimizedQuery {
                plan: QueryPlan::new(
                    PlanNode::Scan { table_id: 0, filters: vec![] },
                    PlanOutput::CountStar,
                ),
                join_order: vec![0],
                estimated_sizes: vec![],
                estimated_cost: 0.0,
                els,
                alt: None,
                corrections_applied: 0,
            },
            table_names: vec!["t".into()],
            binding_names: vec!["t".into()],
        })
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = PlanCache::new(4);
        assert!(cache.get("q", 0).is_none());
        cache.insert("q".into(), 0, dummy_plan());
        assert!(cache.get("q", 0).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn stale_epoch_invalidates() {
        let cache = PlanCache::new(4);
        cache.insert("q".into(), 0, dummy_plan());
        assert!(cache.get("q", 1).is_none(), "epoch moved on");
        assert_eq!(cache.len(), 0, "stale entry dropped eagerly");
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        // Re-optimized plans at the new epoch cache normally again.
        cache.insert("q".into(), 1, dummy_plan());
        assert!(cache.get("q", 1).is_some());
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 0, dummy_plan());
        cache.insert("b".into(), 0, dummy_plan());
        assert!(cache.get("a", 0).is_some()); // touch a → b is LRU
        cache.insert("c".into(), 0, dummy_plan());
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", 0).is_none(), "b was evicted");
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("c", 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert("q".into(), 0, dummy_plan());
        assert!(cache.get("q", 0).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn replacing_same_fingerprint_does_not_evict_others() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 0, dummy_plan());
        cache.insert("b".into(), 0, dummy_plan());
        cache.insert("a".into(), 1, dummy_plan());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get("a", 1).is_some());
        assert!(cache.get("b", 0).is_some());
    }

    #[test]
    fn insert_over_existing_at_bumped_epoch_counts_invalidation_not_eviction() {
        // Replay the replacement path directly (no intervening `get`): the
        // old entry at epoch 0 is displaced by the same fingerprint
        // re-optimized at epoch 1. That displacement is catalog drift — an
        // invalidation — and must NOT also run the LRU sweep (which would
        // double-count the slot as insertion + eviction and throw out an
        // innocent neighbor).
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 0, dummy_plan());
        cache.insert("b".into(), 0, dummy_plan());
        assert_eq!(cache.len(), 2);

        cache.insert("a".into(), 1, dummy_plan());
        assert_eq!(cache.len(), 2, "replacement keeps len constant");
        let s = cache.stats();
        assert_eq!(s.evictions, 0, "replacement is not an eviction");
        assert_eq!(s.invalidations, 1, "stale entry displaced by newer epoch");
        assert!(cache.get("a", 1).is_some());
        assert!(cache.get("b", 0).is_some(), "neighbor survived the replacement");

        // The replaced entry took the newest LRU stamp: a later capacity
        // eviction removes `b` (older), not the refreshed `a`.
        assert!(cache.get("a", 1).is_some()); // touch a again
        cache.insert("c".into(), 0, dummy_plan());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get("a", 1).is_some(), "refreshed entry is MRU, kept");
        assert!(cache.get("b", 0).is_none(), "LRU neighbor evicted");

        // Same-epoch replacement (two threads raced to optimize the same
        // query) is neither an eviction nor an invalidation.
        let before = cache.stats();
        cache.insert("c".into(), 0, dummy_plan());
        let after = cache.stats();
        assert_eq!(after.evictions, before.evictions);
        assert_eq!(after.invalidations, before.invalidations);
    }

    #[test]
    fn cache_traffic_mirrors_into_the_global_registry() {
        let global = MetricsRegistry::global().cache_counters();
        let before = global.snapshot();
        let cache = PlanCache::new(2);
        cache.insert("q".into(), 0, dummy_plan());
        assert!(cache.get("q", 0).is_some());
        assert!(cache.get("missing", 0).is_none());
        let after = global.snapshot();
        // Other tests run concurrently against the same global registry, so
        // assert deltas as lower bounds.
        assert!(after.hits >= before.hits + 1);
        assert!(after.misses >= before.misses + 1);
    }

    #[test]
    fn concurrent_mixed_traffic_is_safe() {
        let cache = PlanCache::new(8);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let key = format!("q{}", (t + i) % 12);
                        if cache.get(&key, 0).is_none() {
                            cache.insert(key, 0, dummy_plan());
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert!(cache.len() <= 8);
    }
}
