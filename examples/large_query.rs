//! Optimizing past the dynamic program: a 20-table join.
//!
//! The exact System-R DP is exponential in the table count; the paper's
//! Section 1 points at the AB algorithm [15] and randomized algorithms
//! [14, 5] as the practical alternatives — all of them driven by the same
//! incremental size estimation Algorithm ELS provides. This example builds
//! a 20-table chain query (far beyond the DP's 16-table cap), orders it
//! with the greedy and iterative-improvement strategies, executes the
//! greedy plan, and verifies the answer.
//!
//! Run with: `cargo run --release --example large_query`

use std::sync::Arc;

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::core::{Els, ElsOptions};
use els::exec::plan::PlanOutput;
use els::exec::{execute_plan, JoinMethod, QueryPlan};
use els::optimizer::{greedy_order, iterative_improvement, CostParams, TableProfile};
use els::sql::{bind, parse};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

const N: usize = 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tables t0..t19, each with a shared key column over nested domains.
    let mut catalog = Catalog::new();
    let mut from = Vec::new();
    for i in 0..N {
        // Key columns over nested sequential domains: every table holds key
        // 7 exactly once, so the 20-way chain joins to exactly one row.
        let rows = 200 * (1 + (i % 7));
        let name = format!("t{i}");
        catalog.register(
            TableSpec::new(&name, rows)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
                .generate(i as u64 + 1),
            &CollectOptions::default(),
        )?;
        from.push(name);
    }
    let mut sql = format!("SELECT COUNT(*) FROM {}", from.join(", "));
    sql.push_str(" WHERE ");
    let joins: Vec<String> = (1..N).map(|i| format!("t{}.k = t{}.k", i - 1, i)).collect();
    sql.push_str(&joins.join(" AND "));
    sql.push_str(" AND t0.k = 7"); // a point filter keeps the result finite

    let bound = bind(&parse(&sql)?, &catalog)?;
    let from_refs: Vec<&str> = bound.table_names.iter().map(String::as_str).collect();
    let stats = catalog.query_statistics(&from_refs)?;
    let els = Els::prepare(&bound.predicates, &stats, &ElsOptions::algorithm_els())?;
    let profiles: Vec<TableProfile> = from_refs
        .iter()
        .map(|n| TableProfile::of(catalog.table_data(n).unwrap().as_ref()))
        .collect();
    let methods = [JoinMethod::NestedLoop, JoinMethod::SortMerge, JoinMethod::Hash];
    let params = CostParams::default();

    println!("{N}-table chain join with a point filter (DP limit is 16 tables)\n");
    let greedy = greedy_order(&els, &profiles, &methods, &params)?;
    println!(
        "greedy (AB-style):      cost {:>10.1}, order {:?}",
        greedy.estimated_cost, greedy.join_order
    );
    let ii = iterative_improvement(&els, &profiles, &methods, &params, 3, 42)?;
    println!("iterative improvement:  cost {:>10.1}, order {:?}", ii.estimated_cost, ii.join_order);

    // Execute the greedy plan.
    let tables: Vec<Arc<_>> = from_refs.iter().map(|n| catalog.table_data(n).unwrap()).collect();
    let plan = QueryPlan::new(greedy.root, PlanOutput::CountStar);
    let out = execute_plan(&plan, &tables)?;
    println!("\nexecuted greedy plan: COUNT(*) = {}", out.count);
    println!("metrics: {}", out.metrics);

    // The truth: each table holds key 7 exactly once; the chain join
    // multiplies the per-table multiplicities (all 1).
    let expected: u64 = from_refs
        .iter()
        .map(|n| {
            let t = catalog.table_data(n).unwrap();
            t.column_by_name("k").unwrap().iter().filter(|v| v.as_int() == Some(7)).count() as u64
        })
        .product();
    assert_eq!(out.count, expected, "executed count must match the closed form");
    println!("verified against the closed-form product: {expected}");
    Ok(())
}
