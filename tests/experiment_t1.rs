//! The headline reproduction (experiment T1) as a test, so `cargo test`
//! guards the paper's Section 8 shape end to end:
//!
//! * PTC+Rule-M's estimates collapse through (1, 4·10⁻⁸, 4·10⁻²¹);
//! * PTC+Rule-SS's through (1, 2·10⁻³, 2·10⁻⁶) on the optimizer's order;
//! * ELS estimates exactly 100 everywhere;
//! * every plan computes the true count (100);
//! * the misled plans pay ≥10× the ELS plan's I/O (the paper's 9–12×).

use els_bench::{section8_catalog, SECTION8_SQL};
use els_exec::execute_plan;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els_sql::{bind, parse};

#[test]
fn section8_experiment_shape_holds() {
    let catalog = section8_catalog(42);
    let bound = bind(&parse(SECTION8_SQL).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();

    let mut pages = std::collections::HashMap::new();
    for preset in EstimatorPreset::all() {
        let optimized =
            optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset)).unwrap();
        let out = execute_plan(&optimized.plan, &tables).unwrap();
        assert_eq!(out.count, 100, "{} computed a wrong answer", preset.label());
        pages.insert(preset.label(), out.metrics.pages_read);

        match preset {
            EstimatorPreset::Els => {
                for s in &optimized.estimated_sizes {
                    assert!(
                        (s - 100.0).abs() < 1e-6,
                        "ELS must estimate 100 everywhere, got {:?}",
                        optimized.estimated_sizes
                    );
                }
            }
            EstimatorPreset::Sm => {
                let last = *optimized.estimated_sizes.last().unwrap();
                assert!(last < 1e-15, "PTC+M must collapse, got {last}");
            }
            EstimatorPreset::Sss => {
                let last = *optimized.estimated_sizes.last().unwrap();
                assert!(last < 1.0, "PTC+SS must underestimate, got {last}");
            }
            EstimatorPreset::SmNoPtc => {}
        }
    }

    let els_pages = pages["Orig. ELS"];
    for label in ["Orig.+PTC SM", "Orig.+PTC SSS"] {
        assert!(
            pages[label] >= 10 * els_pages,
            "{label} should pay >=10x the ELS plan's I/O: {} vs {els_pages}",
            pages[label]
        );
    }
}

#[test]
fn paper_join_order_reproduces_rows_2_and_3_exactly() {
    // On the paper's own order M ⋈ B ⋈ S ⋈ G the estimate sequences match
    // the published table digits exactly.
    let catalog = section8_catalog(42);
    let bound = bind(&parse(SECTION8_SQL).unwrap(), &catalog).unwrap();
    let order = [1usize, 2, 0, 3];

    let sm =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Sm)).unwrap();
    let sizes = sm.els.estimate_order(&order).unwrap();
    assert!((sizes[0] - 0.2).abs() < 1e-12, "{sizes:?}");
    assert!((sizes[1] - 4e-8).abs() < 1e-20, "{sizes:?}");
    assert!((sizes[2] - 4e-21).abs() < 1e-33, "{sizes:?}");

    let sss =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Sss)).unwrap();
    let sizes = sss.els.estimate_order(&order).unwrap();
    assert!((sizes[0] - 0.2).abs() < 1e-12, "{sizes:?}");
    assert!((sizes[1] - 4e-4).abs() < 1e-16, "{sizes:?}");
    assert!((sizes[2] - 4e-7).abs() < 1e-19, "{sizes:?}");

    // ELS: the paper's chosen order B ⋈ G ⋈ M ⋈ S gives (100, 100, 100).
    let els =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els)).unwrap();
    let sizes = els.els.estimate_order(&[2, 3, 1, 0]).unwrap();
    assert_eq!(sizes, vec![100.0, 100.0, 100.0]);
}
