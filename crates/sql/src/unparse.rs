//! Rendering parsed queries back to SQL text.
//!
//! [`Query`] implements `Display` producing canonical SQL that re-parses to
//! an equivalent AST (property-tested: `parse(q.to_string()) == q` for
//! every parseable query, up to `BETWEEN` desugaring, which the parser
//! already normalizes away). Used by tools that rewrite queries (e.g. the
//! PTC rewrite) and want to show their output as SQL.

use std::fmt;

use els_storage::Value;

use crate::ast::{Operand, PredicateAst, Projection, Query};

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        match &self.projection {
            Projection::CountStar => write!(f, "COUNT(*)")?,
            Projection::Star => write!(f, "*")?,
            Projection::Columns(cols) => {
                let cols: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                write!(f, "{}", cols.join(", "))?;
            }
            Projection::ColumnsAndCount(cols) => {
                let cols: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                write!(f, "{}, COUNT(*)", cols.join(", "))?;
            }
        }
        write!(f, " FROM ")?;
        let tables: Vec<String> = self
            .from
            .iter()
            .map(|t| match &t.alias {
                Some(a) => format!("{} AS {}", t.name, a),
                None => t.name.clone(),
            })
            .collect();
        write!(f, "{}", tables.join(", "))?;
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self.predicates.iter().map(render_predicate).collect();
            write!(f, " WHERE {}", preds.join(" AND "))?;
        }
        if !self.group_by.is_empty() {
            let cols: Vec<String> = self.group_by.iter().map(|c| c.to_string()).collect();
            write!(f, " GROUP BY {}", cols.join(", "))?;
        }
        if !self.order_by.is_empty() {
            let items: Vec<String> =
                self.order_by
                    .iter()
                    .map(|o| {
                        if o.descending {
                            format!("{} DESC", o.column)
                        } else {
                            o.column.to_string()
                        }
                    })
                    .collect();
            write!(f, " ORDER BY {}", items.join(", "))?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

fn render_operand(o: &Operand) -> String {
    match o {
        Operand::Column(c) => c.to_string(),
        Operand::Literal(Value::Str(s)) => format!("'{}'", s.replace('\'', "''")),
        Operand::Literal(Value::Float(v)) => {
            // Keep a decimal point so the literal re-lexes as a float.
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Operand::Literal(v) => v.to_string(),
    }
}

pub(crate) fn render_predicate(p: &PredicateAst) -> String {
    match p {
        PredicateAst::Cmp { left, op, right } => {
            format!("{} {op} {}", render_operand(left), render_operand(right))
        }
        PredicateAst::IsNull { operand, negated: false } => {
            format!("{} IS NULL", render_operand(operand))
        }
        PredicateAst::IsNull { operand, negated: true } => {
            format!("{} IS NOT NULL", render_operand(operand))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    /// Round-trip every clause class.
    #[test]
    fn round_trips() {
        let cases = [
            "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100",
            "SELECT * FROM t",
            "SELECT a, b FROM t WHERE a >= 1.5 AND name = 'it''s' ORDER BY a DESC, b LIMIT 9",
            "SELECT a, COUNT(*) FROM t WHERE a IS NOT NULL GROUP BY a",
            "SELECT o.id FROM orders AS o, lines AS l WHERE o.id = l.oid",
            "SELECT x FROM t WHERE x <> 3 AND y IS NULL",
        ];
        for sql in cases {
            let q = parse(sql).unwrap();
            let printed = q.to_string();
            let reparsed =
                parse(&printed).unwrap_or_else(|e| panic!("`{printed}` does not re-parse: {e}"));
            assert_eq!(q, reparsed, "round trip changed the AST for `{sql}`");
        }
    }

    #[test]
    fn between_normalizes_to_two_ranges() {
        // The parser desugars BETWEEN, so the printed form uses >=/<= and is
        // stable under re-parsing.
        let q = parse("SELECT * FROM t WHERE x BETWEEN 1 AND 5").unwrap();
        let printed = q.to_string();
        assert!(printed.contains(">= 1") && printed.contains("<= 5"), "{printed}");
        assert_eq!(parse(&printed).unwrap(), q);
    }

    proptest::proptest! {
        /// Randomized round-trip: assemble a query from random fragments,
        /// parse, print, re-parse, compare.
        #[test]
        fn random_round_trip(seed in 0u64..2000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut sql = String::from("SELECT ");
            let grouped = rng.gen_bool(0.2);
            if grouped {
                sql.push_str("g, COUNT(*)");
            } else {
                match rng.gen_range(0..3) {
                    0 => sql.push_str("COUNT(*)"),
                    1 => sql.push('*'),
                    _ => sql.push_str("a, t1.b"),
                }
            }
            sql.push_str(" FROM t1");
            if rng.gen_bool(0.5) {
                sql.push_str(", t2 AS u");
            }
            let mut conjuncts = Vec::new();
            for _ in 0..rng.gen_range(0..3) {
                conjuncts.push(match rng.gen_range(0..4) {
                    0 => format!("t1.a {} {}", ["=", "<", ">="][rng.gen_range(0..3usize)], rng.gen_range(-9i64..9)),
                    1 => "t1.a IS NULL".to_owned(),
                    2 => format!("t1.a = {}", ["t1.b", "c"][rng.gen_range(0..2usize)]),
                    _ => format!("name = '{}'", ["x", "y y", ""][rng.gen_range(0..3usize)]),
                });
            }
            if !conjuncts.is_empty() {
                sql.push_str(" WHERE ");
                sql.push_str(&conjuncts.join(" AND "));
            }
            if grouped {
                sql.push_str(" GROUP BY g");
            }
            if rng.gen_bool(0.3) {
                sql.push_str(" ORDER BY a DESC");
            }
            if rng.gen_bool(0.3) {
                sql.push_str(&format!(" LIMIT {}", rng.gen_range(0..50)));
            }
            let Ok(q) = parse(&sql) else { return Ok(()) };
            let printed = q.to_string();
            let reparsed = parse(&printed).expect("printed SQL parses");
            proptest::prop_assert_eq!(q, reparsed, "round trip changed `{}` -> `{}`", sql, printed);
        }
    }
}
