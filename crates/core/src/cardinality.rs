//! Pluggable cardinality estimation: the [`CardinalityEstimator`] trait
//! and the non-ELS implementations behind it.
//!
//! The paper's Algorithm ELS is one way to answer the question a join
//! enumerator keeps asking — *how big is this set of joined tables?* —
//! but not the only one. This module makes the question a trait (in the
//! spirit of PostBOUND's `JoinBoundCardinalityEstimator` meta-strategy:
//! set up once per query, then estimate per join edge/state), so the
//! optimizer can run the same dynamic program over any estimator:
//!
//! * **[`Els`]** — the paper's pipeline, in all its configurations: rule
//!   LS (Algorithm ELS), the System-R rule M and rule SS baselines, and
//!   the feedback-corrected variant (corrections are folded in during
//!   `prepare_full`, so a corrected `Els` *is* the feedback estimator).
//! * **[`UpperBoundEstimator`]** — a UES-style sketch bound built from
//!   max join-column frequencies: estimates are *guaranteed upper
//!   bounds* on the true result size, for any data distribution. The
//!   price of the guarantee is pessimism.
//! * **[`NoEstimatesEstimator`]** — the Simpli-Squared baseline: no
//!   statistics beyond table cardinalities, and the blanket assumption
//!   that joins never expand (every join set is planned at the size of
//!   its largest member). A deliberately information-free control that
//!   keeps bake-offs honest.
//!
//! All three hand out the same opaque [`JoinState`] tokens, so the
//! enumerator in `els-optimizer` is estimator-agnostic.

use std::collections::HashMap;

use crate::algorithm::Els;
use crate::closure::transitive_closure;
use crate::error::{ElsError, ElsResult};
use crate::estimator::{JoinState, MAX_TABLES};
use crate::ids::{ColumnRef, TableId};
use crate::predicate::Predicate;
use crate::rules::SelectivityRule;
use crate::stats::QueryStatistics;

/// Estimate join-result sizes for a query, one join state at a time.
///
/// The surface is exactly what a System-R style enumerator consumes:
/// per-table planning cardinalities, incremental [`join`] /
/// [`join_sets`] transitions, and the (possibly closed) predicate set
/// the physical plan must evaluate. Implementations are prepared once
/// per query (the analogue of PostBOUND's `setup_for_query`) and then
/// answer estimation requests for arbitrary join orders.
///
/// [`join`]: CardinalityEstimator::join
/// [`join_sets`]: CardinalityEstimator::join_sets
pub trait CardinalityEstimator: std::fmt::Debug {
    /// Stable short name for diagnostics and bake-off labels.
    fn name(&self) -> &'static str;

    /// Number of tables in the query this estimator was prepared for.
    fn num_tables(&self) -> usize;

    /// The predicate set the physical plan evaluates (deduplicated, and
    /// closed under transitivity when the implementation applies the
    /// paper's Step 2).
    fn predicates(&self) -> &[Predicate];

    /// The planning cardinality of one base table — what a scan of it is
    /// expected to produce.
    fn effective_cardinality(&self, table: TableId) -> ElsResult<f64>;

    /// The stored (pre-predicate) cardinality of one base table — what a
    /// *rescan* of it produces.
    fn original_cardinality(&self, table: TableId) -> ElsResult<f64>;

    /// Start a join state from one base table.
    fn initial_state(&self, table: TableId) -> ElsResult<JoinState>;

    /// Extend a state by one base table (the left-deep transition).
    fn join(&self, state: &JoinState, table: TableId) -> ElsResult<JoinState>;

    /// Join two disjoint intermediate results (the bushy transition).
    fn join_sets(&self, a: &JoinState, b: &JoinState) -> ElsResult<JoinState>;

    /// Estimate the sizes of every intermediate result along a join
    /// order (`order.len() - 1` entries).
    fn estimate_order(&self, order: &[TableId]) -> ElsResult<Vec<f64>> {
        let Some((&first, rest)) = order.split_first() else {
            return Ok(Vec::new());
        };
        let mut state = self.initial_state(first)?;
        let mut sizes = Vec::with_capacity(rest.len());
        for &t in rest {
            state = self.join(&state, t)?;
            sizes.push(state.cardinality());
        }
        Ok(sizes)
    }
}

impl CardinalityEstimator for Els {
    fn name(&self) -> &'static str {
        use crate::algorithm::Preprocessing;
        match (self.options().preprocessing, self.options().rule) {
            (Preprocessing::Els, SelectivityRule::LargestSelectivity) => "els",
            (Preprocessing::Els, SelectivityRule::Multiplicative) => "els-rule-m",
            (Preprocessing::Els, SelectivityRule::SmallestSelectivity) => "els-rule-ss",
            (Preprocessing::Els, SelectivityRule::Representative) => "els-rule-rep",
            (Preprocessing::Standard, SelectivityRule::LargestSelectivity) => "standard-ls",
            (Preprocessing::Standard, SelectivityRule::Multiplicative) => "standard-sm",
            (Preprocessing::Standard, SelectivityRule::SmallestSelectivity) => "standard-sss",
            (Preprocessing::Standard, SelectivityRule::Representative) => "standard-rep",
        }
    }

    fn num_tables(&self) -> usize {
        self.prepared().num_tables()
    }

    fn predicates(&self) -> &[Predicate] {
        Els::predicates(self)
    }

    fn effective_cardinality(&self, table: TableId) -> ElsResult<f64> {
        Els::effective_cardinality(self, table)
    }

    fn original_cardinality(&self, table: TableId) -> ElsResult<f64> {
        self.effective_stats()
            .tables
            .get(table)
            .map(|t| t.original_cardinality)
            .ok_or(ElsError::UnknownTable(table))
    }

    fn initial_state(&self, table: TableId) -> ElsResult<JoinState> {
        Els::initial_state(self, table)
    }

    fn join(&self, state: &JoinState, table: TableId) -> ElsResult<JoinState> {
        Els::join(self, state, table)
    }

    fn join_sets(&self, a: &JoinState, b: &JoinState) -> ElsResult<JoinState> {
        Els::join_sets(self, a, b)
    }

    fn estimate_order(&self, order: &[TableId]) -> ElsResult<Vec<f64>> {
        Els::estimate_order(self, order)
    }
}

/// Shared scaffolding of the non-ELS estimators: stored cardinalities,
/// the closed predicate set, and checked table access.
#[derive(Debug, Clone)]
struct BaseTables {
    /// Stored table cardinalities ‖R‖ (never reduced by local
    /// predicates).
    cardinality: Vec<f64>,
    /// The transitively closed predicate set (what the plan evaluates).
    predicates: Vec<Predicate>,
}

impl BaseTables {
    fn new(predicates: &[Predicate], stats: &QueryStatistics) -> ElsResult<BaseTables> {
        stats.validate()?;
        let predicates = transitive_closure(predicates);
        let shape = stats.shape();
        for p in &predicates {
            p.validate(&shape)?;
        }
        Ok(BaseTables {
            cardinality: stats.tables.iter().map(|t| t.cardinality).collect(),
            predicates,
        })
    }

    /// Stored cardinality of `table`, or a typed error when the id is
    /// outside the query or the 64-table state mask (same contract as
    /// `PreparedQuery::checked_base` — degrade to an error, never panic).
    fn checked(&self, table: TableId) -> ElsResult<f64> {
        if table >= MAX_TABLES {
            return Err(ElsError::InvalidJoinStep { table, reason: "table out of range" });
        }
        self.cardinality
            .get(table)
            .copied()
            .ok_or(ElsError::InvalidJoinStep { table, reason: "table out of range" })
    }
}

/// A UES-style upper-bound estimator.
///
/// For a join `R ⋈ S` on `a = b`, the result size is
/// `Σ_v f_R(a=v) · f_S(b=v) ≤ min(‖R‖ · MF_S(b), ‖S‖ · MF_R(a))`, where
/// `MF(x)` is the frequency of the most common value of `x`. The bound
/// holds for *any* data — no uniformity, independence or containment
/// assumption — and it composes: the max frequency of a column inside an
/// intermediate result grows by at most the other side's per-row match
/// bound, so iterating the formula over a join set yields a guaranteed
/// upper bound on the final size.
///
/// Two deliberate pessimisms keep the guarantee airtight:
///
/// * base cardinalities are **unfiltered** — local-predicate
///   selectivities are estimates, not bounds, so they never shrink the
///   bound;
/// * a column with no collected max-frequency statistic falls back to
///   the worst value consistent with `(‖R‖, d)`: one value owning all
///   the slack rows, `MF = ‖R‖ − d + 1`.
///
/// Estimates depend only on the table *set*, not the join order, so the
/// bound is reproducible across plan shapes.
///
/// Inequality join predicates ([`Predicate::JoinRange`]) never tighten
/// the bound: a selectivity for `L < R` would be an estimate, not a
/// guarantee, so a table pair linked only by a range predicate bounds at
/// the cross product — exactly what the worst data (every left value
/// below every right value) realizes.
#[derive(Debug, Clone)]
pub struct UpperBoundEstimator {
    base: BaseTables,
    /// Per-table, per-column max-frequency bound (fallback applied).
    max_frequency: Vec<Vec<f64>>,
    /// The cross-table equality edges of the closed predicate set.
    join_edges: Vec<(ColumnRef, ColumnRef)>,
}

impl UpperBoundEstimator {
    /// Prepare the bound estimator for one query.
    pub fn new(
        predicates: &[Predicate],
        stats: &QueryStatistics,
    ) -> ElsResult<UpperBoundEstimator> {
        let base = BaseTables::new(predicates, stats)?;
        let max_frequency = stats
            .tables
            .iter()
            .map(|t| {
                t.columns
                    .iter()
                    .map(|c| {
                        c.max_frequency
                            .unwrap_or_else(|| (t.cardinality - c.distinct + 1.0).max(1.0))
                            .min(t.cardinality.max(1.0))
                    })
                    .collect()
            })
            .collect();
        let join_edges = base
            .predicates
            .iter()
            .filter_map(|p| match p {
                Predicate::JoinEq { left, right } => Some((*left, *right)),
                _ => None,
            })
            .collect();
        Ok(UpperBoundEstimator { base, max_frequency, join_edges })
    }

    /// Max-frequency bound of a base-table column (worst-case fallback
    /// already folded in at construction). `join_edges` only holds
    /// validated columns, so a miss means the edge list and the statistics
    /// drifted apart — surface that as a typed error rather than the old
    /// silent `f64::INFINITY` (which would quietly neutralize the bound).
    fn column_mf(&self, c: ColumnRef) -> ElsResult<f64> {
        self.max_frequency
            .get(c.table)
            .and_then(|cols| cols.get(c.column))
            .copied()
            .ok_or(ElsError::UnknownColumn(c))
    }

    /// The upper bound for one table set, by folding tables into a
    /// growing component (connected tables first, lowest id breaking
    /// ties, cartesian only when forced). The fold tracks a per-column
    /// max-frequency bound of the intermediate alongside its size bound.
    fn bound_for_mask(&self, mask: u64) -> ElsResult<f64> {
        let tables: Vec<TableId> = (0..MAX_TABLES).filter(|t| mask & (1u64 << t) != 0).collect();
        let Some((&first, rest)) = tables.split_first() else {
            return Ok(0.0);
        };
        let mut in_component = 1u64 << first;
        let mut bound = self.base.checked(first)?;
        // Upper bounds on each column's max frequency inside the
        // intermediate.
        let mut mf: HashMap<ColumnRef, f64> = self
            .max_frequency
            .get(first)
            .map(|cols| {
                cols.iter().enumerate().map(|(i, &v)| (ColumnRef::new(first, i), v)).collect()
            })
            .unwrap_or_default();
        let mut remaining: Vec<TableId> = rest.to_vec();
        while !remaining.is_empty() {
            let connected = remaining.iter().position(|&t| {
                self.join_edges.iter().any(|(l, r)| {
                    (l.table == t && in_component & (1u64 << r.table) != 0)
                        || (r.table == t && in_component & (1u64 << l.table) != 0)
                })
            });
            // els-lint: allow(numeric-discipline, "deliberate cartesian fallback: when no remaining table joins the component, fold the lowest-id one at full size")
            let t = remaining.remove(connected.unwrap_or(0));
            let t_card = self.base.checked(t)?;
            // One intermediate row matches at most `t_factor` rows of the
            // new table; one new-table row matches at most
            // `component_factor` intermediate rows. Cartesian steps leave
            // the factors at the full sizes.
            let mut t_factor = t_card;
            let mut component_factor = bound;
            for (l, r) in &self.join_edges {
                let (t_col, comp_col) = if l.table == t && in_component & (1u64 << r.table) != 0 {
                    (*l, *r)
                } else if r.table == t && in_component & (1u64 << l.table) != 0 {
                    (*r, *l)
                } else {
                    continue;
                };
                t_factor = t_factor.min(self.column_mf(t_col)?);
                component_factor =
                    component_factor.min(mf.get(&comp_col).copied().unwrap_or(bound));
            }
            let new_bound = (bound * t_factor).min(t_card * component_factor);
            for v in mf.values_mut() {
                *v = (*v * t_factor).min(new_bound);
            }
            if let Some(cols) = self.max_frequency.get(t) {
                for (i, &base_mf) in cols.iter().enumerate() {
                    mf.insert(ColumnRef::new(t, i), (base_mf * component_factor).min(new_bound));
                }
            }
            bound = new_bound;
            in_component |= 1u64 << t;
        }
        Ok(bound)
    }
}

impl CardinalityEstimator for UpperBoundEstimator {
    fn name(&self) -> &'static str {
        "upper-bound"
    }

    fn num_tables(&self) -> usize {
        self.base.cardinality.len()
    }

    fn predicates(&self) -> &[Predicate] {
        &self.base.predicates
    }

    fn effective_cardinality(&self, table: TableId) -> ElsResult<f64> {
        self.base.checked(table)
    }

    fn original_cardinality(&self, table: TableId) -> ElsResult<f64> {
        self.base.checked(table)
    }

    fn initial_state(&self, table: TableId) -> ElsResult<JoinState> {
        let cardinality = self.base.checked(table)?;
        Ok(JoinState::from_parts(1u64 << table, cardinality))
    }

    fn join(&self, state: &JoinState, table: TableId) -> ElsResult<JoinState> {
        self.base.checked(table)?;
        if state.contains(table) {
            return Err(ElsError::InvalidJoinStep { table, reason: "table already joined" });
        }
        if state.is_empty() {
            return self.initial_state(table);
        }
        let mask = state.table_mask() | (1u64 << table);
        Ok(JoinState::from_parts(mask, self.bound_for_mask(mask)?))
    }

    fn join_sets(&self, a: &JoinState, b: &JoinState) -> ElsResult<JoinState> {
        if a.table_mask() & b.table_mask() != 0 {
            return Err(ElsError::InvalidJoinStep {
                table: (a.table_mask() & b.table_mask()).trailing_zeros() as usize,
                reason: "join sides overlap",
            });
        }
        if a.is_empty() {
            return Ok(*b);
        }
        if b.is_empty() {
            return Ok(*a);
        }
        let mask = a.table_mask() | b.table_mask();
        Ok(JoinState::from_parts(mask, self.bound_for_mask(mask)?))
    }
}

/// The Simpli-Squared no-estimates baseline.
///
/// Uses no statistic beyond table cardinalities and assumes joins never
/// expand: every join set is planned at the size of its *largest* member
/// (sound for key–foreign-key joins, a plain guess otherwise). Useful as
/// the information-free control in estimator bake-offs — any estimator
/// that cannot beat it is not earning its statistics.
#[derive(Debug, Clone)]
pub struct NoEstimatesEstimator {
    base: BaseTables,
}

impl NoEstimatesEstimator {
    /// Prepare the baseline for one query.
    pub fn new(
        predicates: &[Predicate],
        stats: &QueryStatistics,
    ) -> ElsResult<NoEstimatesEstimator> {
        Ok(NoEstimatesEstimator { base: BaseTables::new(predicates, stats)? })
    }
}

impl CardinalityEstimator for NoEstimatesEstimator {
    fn name(&self) -> &'static str {
        "no-estimates"
    }

    fn num_tables(&self) -> usize {
        self.base.cardinality.len()
    }

    fn predicates(&self) -> &[Predicate] {
        &self.base.predicates
    }

    fn effective_cardinality(&self, table: TableId) -> ElsResult<f64> {
        self.base.checked(table)
    }

    fn original_cardinality(&self, table: TableId) -> ElsResult<f64> {
        self.base.checked(table)
    }

    fn initial_state(&self, table: TableId) -> ElsResult<JoinState> {
        let cardinality = self.base.checked(table)?;
        Ok(JoinState::from_parts(1u64 << table, cardinality))
    }

    fn join(&self, state: &JoinState, table: TableId) -> ElsResult<JoinState> {
        let card = self.base.checked(table)?;
        if state.contains(table) {
            return Err(ElsError::InvalidJoinStep { table, reason: "table already joined" });
        }
        if state.is_empty() {
            return self.initial_state(table);
        }
        Ok(JoinState::from_parts(
            state.table_mask() | (1u64 << table),
            state.cardinality().max(card),
        ))
    }

    fn join_sets(&self, a: &JoinState, b: &JoinState) -> ElsResult<JoinState> {
        if a.table_mask() & b.table_mask() != 0 {
            return Err(ElsError::InvalidJoinStep {
                table: (a.table_mask() & b.table_mask()).trailing_zeros() as usize,
                reason: "join sides overlap",
            });
        }
        if a.is_empty() {
            return Ok(*b);
        }
        if b.is_empty() {
            return Ok(*a);
        }
        Ok(JoinState::from_parts(
            a.table_mask() | b.table_mask(),
            a.cardinality().max(b.cardinality()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::ElsOptions;
    use crate::predicate::CmpOp;
    use crate::stats::{ColumnStatistics, TableStatistics};

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    /// The Section 8 catalog: S/M/B/G with key join columns (MF = 1).
    fn section8() -> (QueryStatistics, Vec<Predicate>) {
        let mk = |rows: f64| {
            TableStatistics::new(
                rows,
                vec![ColumnStatistics::with_domain(rows, 0.0, rows - 1.0).with_max_frequency(1.0)],
            )
        };
        let stats =
            QueryStatistics::new(vec![mk(1000.0), mk(10_000.0), mk(50_000.0), mk(100_000.0)]);
        let preds = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
            Predicate::col_eq(c(2, 0), c(3, 0)),
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
        ];
        (stats, preds)
    }

    #[test]
    fn els_behind_the_trait_matches_the_direct_path() {
        let (stats, preds) = section8();
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        let dynamic: &dyn CardinalityEstimator = &els;
        assert_eq!(dynamic.name(), "els");
        assert_eq!(dynamic.num_tables(), 4);
        for order in [[2usize, 3, 1, 0], [0, 1, 2, 3]] {
            let via_trait = dynamic.estimate_order(&order).unwrap();
            let direct = els.estimate_order(&order).unwrap();
            assert_eq!(via_trait, direct);
        }
        assert_eq!(dynamic.original_cardinality(3).unwrap(), 100_000.0);
        assert_eq!(dynamic.effective_cardinality(3).unwrap(), 100.0);
    }

    #[test]
    fn els_names_track_the_configuration() {
        let (stats, preds) = section8();
        let sm = Els::prepare(&preds, &stats, &ElsOptions::algorithm_sm()).unwrap();
        assert_eq!(CardinalityEstimator::name(&sm), "standard-sm");
        let sss = Els::prepare(&preds, &stats, &ElsOptions::algorithm_sss()).unwrap();
        assert_eq!(CardinalityEstimator::name(&sss), "standard-sss");
    }

    #[test]
    fn upper_bound_on_key_joins_is_tight_to_the_small_side() {
        // With MF = 1 everywhere each join step bounds at min(‖L‖, ‖R‖):
        // S ⋈ M ≤ 1000, ⋈ B ≤ 1000, ⋈ G ≤ 1000. The true (unfiltered)
        // chain result is 1000, so the bound is exact here.
        let (stats, preds) = section8();
        let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
        let sizes = ues.estimate_order(&[0, 1, 2, 3]).unwrap();
        assert_eq!(sizes, vec![1000.0, 1000.0, 1000.0]);
        // Order independence: the bound depends only on the table set.
        let other = ues.estimate_order(&[3, 2, 1, 0]).unwrap();
        assert_eq!(other.last(), sizes.last());
    }

    #[test]
    fn upper_bound_ignores_local_filters() {
        // `s < 100` filters S to 100 rows, but filter selectivities are
        // estimates, not bounds: the UES base stays ‖S‖ = 1000.
        let (stats, preds) = section8();
        let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
        assert_eq!(ues.effective_cardinality(0).unwrap(), 1000.0);
        assert_eq!(ues.initial_state(0).unwrap().cardinality(), 1000.0);
    }

    #[test]
    fn upper_bound_dominates_any_actual_frequency_pairing() {
        // Two 100-row tables joining on a column with MF 10 and 4: the
        // worst pairing realizes Σ f_R·f_S ≤ min(100·4, 100·10) = 400.
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(
                100.0,
                vec![ColumnStatistics::with_distinct(10.0).with_max_frequency(10.0)],
            ),
            TableStatistics::new(
                100.0,
                vec![ColumnStatistics::with_distinct(25.0).with_max_frequency(4.0)],
            ),
        ]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0))];
        let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
        let s = ues.join(&ues.initial_state(0).unwrap(), 1).unwrap();
        assert_eq!(s.cardinality(), 400.0);
    }

    #[test]
    fn missing_max_frequency_falls_back_to_worst_case() {
        // ‖R‖ = 100, d = 91: the worst distribution gives one value
        // 100 − 91 + 1 = 10 rows. The bound must assume it.
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(91.0)]),
            TableStatistics::new(50.0, vec![ColumnStatistics::with_distinct(50.0)]),
        ]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0))];
        let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
        let s = ues.join(&ues.initial_state(1).unwrap(), 0).unwrap();
        // min(‖S‖·MF_R, ‖R‖·MF_S) = min(50·10, 100·1) = 100.
        assert_eq!(s.cardinality(), 100.0);
    }

    #[test]
    fn upper_bound_cartesian_is_the_product() {
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(10.0, vec![]),
            TableStatistics::new(20.0, vec![]),
        ]);
        let ues = UpperBoundEstimator::new(&[], &stats).unwrap();
        let s = ues.join(&ues.initial_state(0).unwrap(), 1).unwrap();
        assert_eq!(s.cardinality(), 200.0);
        let bushy =
            ues.join_sets(&ues.initial_state(0).unwrap(), &ues.initial_state(1).unwrap()).unwrap();
        assert_eq!(bushy.cardinality(), 200.0);
    }

    #[test]
    fn upper_bound_exceeds_the_exhaustive_worst_case_on_random_stats() {
        // Adversarial check against brute force: for every two-table
        // equality join, the maximum achievable result given (n, d, MF)
        // per side is Σ over value slots of f_R·f_S maximized greedily —
        // which is ≤ min(n_R·MF_S, n_S·MF_R), the exact bound we compute.
        for (n_r, d_r, mf_r, n_s, d_s, mf_s) in [
            (100.0, 10.0, 20.0, 100.0, 10.0, 20.0),
            (1000.0, 100.0, 50.0, 10.0, 10.0, 1.0),
            (7.0, 7.0, 1.0, 9.0, 3.0, 5.0),
        ] {
            let stats = QueryStatistics::new(vec![
                TableStatistics::new(
                    n_r,
                    vec![ColumnStatistics::with_distinct(d_r).with_max_frequency(mf_r)],
                ),
                TableStatistics::new(
                    n_s,
                    vec![ColumnStatistics::with_distinct(d_s).with_max_frequency(mf_s)],
                ),
            ]);
            let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0))];
            let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
            let bound = ues.join(&ues.initial_state(0).unwrap(), 1).unwrap().cardinality();
            assert!(
                bound >= (n_r * mf_s).min(n_s * mf_r) - 1e-9,
                "bound {bound} below the achievable worst case"
            );
        }
    }

    #[test]
    fn range_joins_leave_the_upper_bound_at_the_cross_product() {
        // A pure inequality join has no equality edge. The worst data
        // (every left value below every right value) realizes the full
        // cross product, so any tighter bound would be unsound.
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(10.0, vec![ColumnStatistics::with_domain(10.0, 0.0, 9.0)]),
            TableStatistics::new(20.0, vec![ColumnStatistics::with_domain(20.0, 0.0, 19.0)]),
        ]);
        let preds = vec![Predicate::join_range(c(0, 0), CmpOp::Lt, c(1, 0))];
        let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
        let s = ues.join(&ues.initial_state(0).unwrap(), 1).unwrap();
        assert_eq!(s.cardinality(), 200.0);
        // The Simpli-Squared baseline stays at the largest member, and the
        // range predicate survives into the exposed predicate set for the
        // physical plan to evaluate.
        let simpli = NoEstimatesEstimator::new(&preds, &stats).unwrap();
        let s = simpli.join(&simpli.initial_state(0).unwrap(), 1).unwrap();
        assert_eq!(s.cardinality(), 20.0);
        assert!(simpli.predicates().iter().any(|p| matches!(p, Predicate::JoinRange { .. })));
    }

    #[test]
    fn no_estimates_plans_every_set_at_its_largest_member() {
        let (stats, preds) = section8();
        let simpli = NoEstimatesEstimator::new(&preds, &stats).unwrap();
        let sizes = simpli.estimate_order(&[0, 1, 2, 3]).unwrap();
        assert_eq!(sizes, vec![10_000.0, 50_000.0, 100_000.0]);
        let a = simpli.join(&simpli.initial_state(3).unwrap(), 0).unwrap();
        assert_eq!(a.cardinality(), 100_000.0);
        let b = simpli.initial_state(1).unwrap();
        assert_eq!(simpli.join_sets(&a, &b).unwrap().cardinality(), 100_000.0);
    }

    #[test]
    fn alternative_estimators_reject_invalid_steps() {
        let (stats, preds) = section8();
        let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
        let simpli = NoEstimatesEstimator::new(&preds, &stats).unwrap();
        for est in [&ues as &dyn CardinalityEstimator, &simpli] {
            let s = est.initial_state(0).unwrap();
            assert!(matches!(
                est.join(&s, 0),
                Err(ElsError::InvalidJoinStep { reason: "table already joined", .. })
            ));
            for bad in [4usize, MAX_TABLES, usize::MAX] {
                assert!(est.initial_state(bad).is_err());
                assert!(est.join(&s, bad).is_err());
                assert!(est.effective_cardinality(bad).is_err());
            }
            let overlap = est.join_sets(&s, &s);
            assert!(matches!(
                overlap,
                Err(ElsError::InvalidJoinStep { reason: "join sides overlap", .. })
            ));
        }
    }

    #[test]
    fn alternative_estimators_expose_the_closed_predicate_set() {
        // Closure derives filters for every chained table (6 join + 4
        // local predicates on Section 8), so the physical plans built
        // over these estimators evaluate the same predicates as ELS's.
        let (stats, preds) = section8();
        let ues = UpperBoundEstimator::new(&preds, &stats).unwrap();
        assert_eq!(ues.predicates().len(), 10);
        let simpli = NoEstimatesEstimator::new(&preds, &stats).unwrap();
        assert_eq!(simpli.predicates().len(), 10);
    }

    #[test]
    fn construction_validates_stats_and_predicates() {
        let stats = QueryStatistics::new(vec![TableStatistics::new(-1.0, vec![])]);
        assert!(UpperBoundEstimator::new(&[], &stats).is_err());
        assert!(NoEstimatesEstimator::new(&[], &stats).is_err());
        let stats = QueryStatistics::new(vec![TableStatistics::new(10.0, vec![])]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(5, 0))];
        assert!(UpperBoundEstimator::new(&preds, &stats).is_err());
    }
}
