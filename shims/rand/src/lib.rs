//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace replaces the real `rand` with this path crate (see the
//! offline-build note in `DESIGN.md`). The surface is deliberately small:
//!
//! * [`rngs::StdRng`] — a seedable deterministic generator
//!   (xoshiro256++ seeded through SplitMix64).
//! * [`SeedableRng::seed_from_u64`] — the only constructor the repo uses.
//! * [`Rng::gen_range`] over integer/float ranges, [`Rng::gen`] for `f64`
//!   in `[0, 1)`, and [`Rng::gen_bool`].
//!
//! The streams differ from the real `rand` crate's `StdRng` (which is
//! ChaCha12); everything in this repo treats seeded streams as arbitrary
//! but deterministic, so only determinism and statistical quality matter.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform `f64` in `[0, 1)` using the top 53 bits of a word.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Types that [`Rng::gen`] can produce ("standard" distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A draw from the standard distribution of `T` (for `f64`:
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API-compatible with the
    /// `rand` crate's `StdRng` for the methods this repo uses).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 — used to expand the 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this shim's `StdRng` is already small and fast.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let i = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let sum: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
