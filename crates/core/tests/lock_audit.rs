//! Integration tests for the `els_lock_audit` runtime shim: the dynamic
//! half of the lock-order story (els-lint's `lock-order` pass is the
//! static half). Compiled only when the feature is on — which the
//! workspace root's dev-dependencies arrange for every full `cargo test`
//! run.
#![cfg(feature = "els_lock_audit")]

use els_core::sync::{audit, lock_recovering, LOCK_ORDER};
use std::sync::Mutex;

#[test]
fn in_order_acquisition_succeeds_and_tracks_held_ranks() {
    assert_eq!(audit::held_ranks(), Vec::<usize>::new());
    let outer = audit::enter_class(LOCK_ORDER[0]);
    let inner = audit::enter_class(LOCK_ORDER[2]);
    assert_eq!(audit::held_ranks(), vec![0, 2]);
    drop(inner);
    drop(outer);
    assert_eq!(audit::held_ranks(), Vec::<usize>::new());
}

#[test]
fn out_of_order_acquisition_panics() {
    // The held stack is thread-local, so run the violation on its own
    // thread and observe the panic through the join handle.
    let result = std::thread::spawn(|| {
        let _inner = audit::enter_class(LOCK_ORDER[LOCK_ORDER.len() - 1]);
        let _outer = audit::enter_class(LOCK_ORDER[0]); // backwards: must panic
    })
    .join();
    let panic = result.expect_err("backwards acquisition must panic");
    let msg = panic.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("lock-order violation"), "unexpected message: {msg}");
    assert!(msg.contains(LOCK_ORDER[0]), "message should name the class: {msg}");
}

#[test]
fn reentrant_acquisition_of_the_same_class_panics() {
    let result = std::thread::spawn(|| {
        let _a = audit::enter_class(LOCK_ORDER[1]);
        let _b = audit::enter_class(LOCK_ORDER[1]); // equal rank: not strictly increasing
    })
    .join();
    assert!(result.is_err(), "re-entrant acquisition must panic");
}

#[test]
fn dropping_a_token_releases_its_rank_out_of_stack_order() {
    let a = audit::enter_class(LOCK_ORDER[0]);
    let b = audit::enter_class(LOCK_ORDER[1]);
    drop(a); // released before the inner guard — legal with RAII guards
    assert_eq!(audit::held_ranks(), vec![1]);
    // With rank 0 released, acquiring it again while holding rank 1 is
    // still a violation (1 is not < 0).
    drop(b);
    assert_eq!(audit::held_ranks(), Vec::<usize>::new());
}

#[test]
fn locks_acquired_from_unranked_files_are_not_audited() {
    // This file's stem (`lock_audit`) names no LOCK_ORDER class, so the
    // recovering helpers hand out rank-None tokens: acquisitions from
    // tests and tools never trip the audit, whatever their order.
    let (m1, m2) = (Mutex::new(1u32), Mutex::new(2u32));
    let g2 = lock_recovering(&m2);
    let g1 = lock_recovering(&m1); // any order is fine: unranked
    assert_eq!(*g1 + *g2, 3);
    assert_eq!(audit::held_ranks(), Vec::<usize>::new());
}

#[test]
fn unknown_class_names_get_no_rank() {
    let t = audit::enter_class("no_such.class");
    assert_eq!(audit::held_ranks(), Vec::<usize>::new());
    drop(t);
}
