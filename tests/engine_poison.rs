//! A panicking worker thread must not take the shared [`Engine`] down with
//! it. The engine's internal locks (catalog state, plan cache, feedback
//! store, metrics) all go through `els_core::sync::lock_recovering`, whose
//! policy is *recover*: a poisoned lock yields its inner data instead of
//! cascading the panic into every other thread. This test drives that
//! policy end to end — one worker warms the shared state and dies, and the
//! engine keeps answering with the same results and a live plan cache.

use std::sync::Arc;
use std::thread;

use els::engine::Engine;
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

const QUERY: &str = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.f < 50";

fn shared_engine() -> Arc<Engine> {
    let engine = Engine::new();
    engine
        .generate(
            TableSpec::new("a", 1000)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
                .column(ColumnSpec::new("f", Distribution::UniformInt { lo: 0, hi: 99 })),
            7,
        )
        .unwrap();
    engine
        .generate(
            TableSpec::new("b", 500)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            8,
        )
        .unwrap();
    Arc::new(engine)
}

#[test]
fn caught_worker_panic_leaves_engine_usable() {
    let engine = shared_engine();
    let baseline = engine.execute(QUERY).unwrap().count;

    // The worker exercises the shared catalog, plan cache, and metrics
    // registry, then panics mid-flight like a buggy thread would.
    let worker = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            let count = engine.execute(QUERY).unwrap().count;
            assert!(count > 0);
            panic!("injected worker bug");
        })
    };
    assert!(worker.join().is_err(), "worker must have panicked");

    // The engine keeps serving from the other side of the panic: identical
    // results, and the plan the dead worker cached is still reusable.
    let after = engine.execute(QUERY).unwrap();
    assert_eq!(after.count, baseline);
    assert!(after.cache_hit, "plan cached before the panic must survive it");

    // Registering new tables (a catalog write) also still works.
    engine
        .generate(
            TableSpec::new("c", 100)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            9,
        )
        .unwrap();
    let joined = engine.execute("SELECT COUNT(*) FROM a, c WHERE a.k = c.k").unwrap();
    assert_eq!(joined.count, 100);
}

#[test]
fn panics_in_many_workers_do_not_cascade() {
    let engine = shared_engine();
    let expected = engine.execute(QUERY).unwrap().count;

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                for _ in 0..5 {
                    assert_eq!(engine.execute(QUERY).unwrap().count, expected);
                }
                if i % 2 == 0 {
                    panic!("injected worker bug {i}");
                }
            })
        })
        .collect();

    let panicked = handles.into_iter().map(|h| h.join().is_err()).filter(|&p| p).count();
    assert_eq!(panicked, 2);
    assert_eq!(engine.execute(QUERY).unwrap().count, expected);
}
