//! The engine's single poisoned-lock policy: **recover** — plus the
//! committed lock-acquisition total order and its runtime audit.
//!
//! Every shared structure in the engine guarded by a `Mutex`/`RwLock` —
//! the plan cache, the metrics registry, the feedback store, the shared
//! catalog — maintains its invariants at every point a panic can unwind
//! through (plain counters, maps, and copy-on-write snapshots; no
//! multi-step states held across calls into user code). Poisoning
//! therefore adds no safety and subtracts a lot of availability: one
//! panicking worker thread would cascade `PoisonError`s into every other
//! thread touching the engine. These helpers centralize the decision to
//! take the guard anyway, so the policy is written (and lintable) in
//! exactly one place instead of being re-decided at each `lock()` site.
//!
//! If a structure ever *does* need partial-update protection, it should
//! not reach for poisoning — it should keep a generation counter or build
//! the new state off to the side and swap it in, as `SharedCatalog` does.
//!
//! # Lock order
//!
//! [`LOCK_ORDER`] is the engine-wide total order over lock *classes* (one
//! class per guarded field, named `<file stem>.<field>`). Two enforcement
//! layers keep it honest:
//!
//! * **Statically**, els-lint's `lock-order` pass extracts every
//!   `lock_recovering`/`read_recovering`/`write_recovering` call site,
//!   builds the inter-procedural held-while-acquiring graph over the
//!   workspace call graph, and hard-fails if any edge runs backwards in
//!   this list (a cycle can never be consistent with a total order).
//! * **Dynamically**, the `els_lock_audit` cargo feature (enabled for
//!   every `cargo test` run via the workspace root's dev-dependencies)
//!   wraps each guard in an [`Audited`] token that pushes the acquiring
//!   class's rank onto a thread-local stack and panics the moment any
//!   thread acquires a class out of order — covering the closures and
//!   trait objects the static pass cannot see through.

#[cfg(feature = "els_lock_audit")]
use std::sync::Condvar;
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The committed total order of engine lock classes, outermost first. A
/// class is `<file stem>.<field>`; the acquiring module and the field the
/// guard protects name it unambiguously (today every guarded field is
/// acquired only from its defining file — els-lint's `lock-order` pass
/// keeps that true).
///
/// Rationale for the order: catalog publication (`shared.state`) is the
/// outermost state transition and may run caller closures under
/// `SharedCatalog::update`; the plan cache and admission queue are
/// mid-level control structures; the metrics and feedback maps are leaf
/// counters that never call out while held; the scheduler deques are
/// innermost, held only for a single pop/steal.
pub const LOCK_ORDER: &[&str] = &[
    "shared.state",
    "plan_cache.state",
    "admission.state",
    "metrics.qerr",
    "feedback.entries",
    "scheduler.deques",
];

/// Guard type returned by [`lock_recovering`]: the plain `MutexGuard` in
/// production builds, an [`Audited`] wrapper under `els_lock_audit`.
#[cfg(not(feature = "els_lock_audit"))]
pub type LockGuard<'a, T> = MutexGuard<'a, T>;
/// Guard type returned by [`lock_recovering`] under the audit feature.
#[cfg(feature = "els_lock_audit")]
pub type LockGuard<'a, T> = Audited<MutexGuard<'a, T>>;

/// Guard type returned by [`read_recovering`].
#[cfg(not(feature = "els_lock_audit"))]
pub type ReadGuard<'a, T> = RwLockReadGuard<'a, T>;
/// Guard type returned by [`read_recovering`] under the audit feature.
#[cfg(feature = "els_lock_audit")]
pub type ReadGuard<'a, T> = Audited<RwLockReadGuard<'a, T>>;

/// Guard type returned by [`write_recovering`].
#[cfg(not(feature = "els_lock_audit"))]
pub type WriteGuard<'a, T> = RwLockWriteGuard<'a, T>;
/// Guard type returned by [`write_recovering`] under the audit feature.
#[cfg(feature = "els_lock_audit")]
pub type WriteGuard<'a, T> = Audited<RwLockWriteGuard<'a, T>>;

/// Lock a mutex, recovering the guard if a previous holder panicked.
#[cfg(not(feature = "els_lock_audit"))]
pub fn lock_recovering<T: ?Sized>(mutex: &Mutex<T>) -> LockGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lock a mutex, recovering the guard if a previous holder panicked. The
/// audit build additionally asserts the [`LOCK_ORDER`] rank discipline
/// *before* blocking, so an out-of-order acquisition panics instead of
/// deadlocking.
#[cfg(feature = "els_lock_audit")]
#[track_caller]
pub fn lock_recovering<T: ?Sized>(mutex: &Mutex<T>) -> LockGuard<'_, T> {
    let token = audit::enter(std::panic::Location::caller().file());
    Audited { inner: mutex.lock().unwrap_or_else(PoisonError::into_inner), token }
}

/// Take a read lock, recovering the guard if a writer panicked.
#[cfg(not(feature = "els_lock_audit"))]
pub fn read_recovering<T: ?Sized>(lock: &RwLock<T>) -> ReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Take a read lock, recovering the guard if a writer panicked (audited).
#[cfg(feature = "els_lock_audit")]
#[track_caller]
pub fn read_recovering<T: ?Sized>(lock: &RwLock<T>) -> ReadGuard<'_, T> {
    let token = audit::enter(std::panic::Location::caller().file());
    Audited { inner: lock.read().unwrap_or_else(PoisonError::into_inner), token }
}

/// Take a write lock, recovering the guard if a previous holder panicked.
#[cfg(not(feature = "els_lock_audit"))]
pub fn write_recovering<T: ?Sized>(lock: &RwLock<T>) -> WriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Take a write lock, recovering the guard if a previous holder panicked
/// (audited).
#[cfg(feature = "els_lock_audit")]
#[track_caller]
pub fn write_recovering<T: ?Sized>(lock: &RwLock<T>) -> WriteGuard<'_, T> {
    let token = audit::enter(std::panic::Location::caller().file());
    Audited { inner: lock.write().unwrap_or_else(PoisonError::into_inner), token }
}

/// Wait on a condvar with a timeout, recovering the reacquired guard if a
/// holder panicked during the wait. Returns the guard and whether the wait
/// timed out. This is the one legal way to pass a recovered guard to a
/// `Condvar` — it keeps the poison policy centralized here and lets the
/// audit build release/reacquire the guard's rank around the wait.
#[cfg(not(feature = "els_lock_audit"))]
pub fn wait_timeout_recovering<'a, T>(
    cv: &std::sync::Condvar,
    guard: LockGuard<'a, T>,
    timeout: std::time::Duration,
) -> (LockGuard<'a, T>, bool) {
    let (guard, wait) = cv.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
    (guard, wait.timed_out())
}

/// Wait on a condvar with a timeout, recovering the reacquired guard if a
/// holder panicked during the wait (audited: the rank is released for the
/// duration of the wait, exactly like the OS lock).
#[cfg(feature = "els_lock_audit")]
pub fn wait_timeout_recovering<'a, T>(
    cv: &Condvar,
    guard: LockGuard<'a, T>,
    timeout: std::time::Duration,
) -> (LockGuard<'a, T>, bool) {
    let Audited { inner, token } = guard;
    let rank = token.rank();
    drop(token); // the wait releases the lock, so release the rank too
    let (inner, wait) = cv.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
    (Audited { inner, token: audit::enter_rank(rank) }, wait.timed_out())
}

/// A guard carrying its lock-order audit token. Derefs straight through to
/// the guarded data; the declaration order (guard first, token second)
/// releases the OS lock before the rank, keeping the audit stack an upper
/// bound on what is really held.
#[cfg(feature = "els_lock_audit")]
pub struct Audited<G> {
    inner: G,
    token: audit::Token,
}

#[cfg(feature = "els_lock_audit")]
impl<G: std::ops::Deref> std::ops::Deref for Audited<G> {
    type Target = G::Target;

    fn deref(&self) -> &G::Target {
        &self.inner
    }
}

#[cfg(feature = "els_lock_audit")]
impl<G: std::ops::DerefMut> std::ops::DerefMut for Audited<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.inner
    }
}

/// The runtime lock-order audit: a thread-local stack of held
/// [`LOCK_ORDER`] ranks, asserted strictly increasing at every
/// acquisition. Compiled only under the `els_lock_audit` feature, which
/// the workspace root's dev-dependencies enable for every `cargo test`
/// run — release builds carry none of this.
#[cfg(feature = "els_lock_audit")]
pub mod audit {
    use std::cell::RefCell;

    use super::LOCK_ORDER;

    thread_local! {
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII token for one audited acquisition; dropping it releases the
    /// rank from the thread's held stack.
    pub struct Token {
        rank: Option<usize>,
    }

    impl Token {
        /// The [`LOCK_ORDER`] rank this token holds (`None` for locks
        /// acquired from files outside the order, e.g. tests).
        pub fn rank(&self) -> Option<usize> {
            self.rank
        }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            let Some(rank) = self.rank else { return };
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Guards may drop out of stack order (e.g. `drop(a)` before
                // `b` goes away), so remove one matching instance, not the
                // top.
                if let Some(i) = held.iter().rposition(|&r| r == rank) {
                    held.remove(i);
                }
            });
        }
    }

    /// Rank of the lock class acquired from `file` (a
    /// `std::panic::Location` path), via the `<file stem>.<field>` class
    /// naming: every class's stem is the file that owns the field.
    /// Unknown files — tests, examples — get no rank and are not audited.
    fn rank_of_file(file: &str) -> Option<usize> {
        let stem = file.rsplit(['/', '\\']).next()?.strip_suffix(".rs")?;
        LOCK_ORDER.iter().position(|class| {
            class.split_once('.').is_some_and(|(class_stem, _)| class_stem == stem)
        })
    }

    /// Record an acquisition from `file`, asserting every already-held
    /// rank is strictly lower. Called *before* blocking on the lock, so an
    /// order violation panics with a diagnostic instead of deadlocking.
    pub fn enter(file: &str) -> Token {
        enter_rank(rank_of_file(file))
    }

    /// Record an acquisition of a known rank (the condvar reacquire path,
    /// and the direct test hook).
    pub fn enter_rank(rank: Option<usize>) -> Token {
        if let Some(rank) = rank {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                for &r in held.iter() {
                    assert!(
                        r < rank,
                        "lock-order violation: acquiring `{}` (rank {rank}) while holding \
                         `{}` (rank {r}); els_core::sync::LOCK_ORDER requires strictly \
                         increasing ranks",
                        LOCK_ORDER.get(rank).copied().unwrap_or("?"),
                        LOCK_ORDER.get(r).copied().unwrap_or("?"),
                    );
                }
                held.push(rank);
            });
        }
        Token { rank }
    }

    /// Acquire an audit token for `class` directly — the test hook for
    /// exercising the order assertion without real engine locks.
    pub fn enter_class(class: &str) -> Token {
        enter_rank(LOCK_ORDER.iter().position(|c| *c == class))
    }

    /// The ranks the current thread holds, innermost last (test hook).
    pub fn held_ranks() -> Vec<usize> {
        HELD.with(|held| held.borrow().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison<T: Send + Sync + 'static>(m: &Arc<Mutex<T>>) {
        let m2 = Arc::clone(m);
        let res = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first holder");
            panic!("deliberate: poison the mutex");
        })
        .join();
        assert!(res.is_err(), "worker should have panicked");
    }

    #[test]
    fn poisoned_mutex_recovers_with_data_intact() {
        let m = Arc::new(Mutex::new(41));
        poison(&m);
        assert!(m.is_poisoned());
        *lock_recovering(&m) += 1;
        assert_eq!(*lock_recovering(&m), 42);
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let res = std::thread::spawn(move || {
            let _guard = l2.write().expect("first writer");
            panic!("deliberate: poison the rwlock");
        })
        .join();
        assert!(res.is_err());
        assert_eq!(read_recovering(&l).len(), 3);
        write_recovering(&l).push(4);
        assert_eq!(*read_recovering(&l), vec![1, 2, 3, 4]);
    }

    #[test]
    fn wait_timeout_recovering_times_out_and_returns_the_guard() {
        let m = Mutex::new(7);
        let cv = std::sync::Condvar::new();
        let guard = lock_recovering(&m);
        let (guard, timed_out) =
            wait_timeout_recovering(&cv, guard, std::time::Duration::from_millis(1));
        assert!(timed_out);
        assert_eq!(*guard, 7);
    }

    #[test]
    fn lock_order_is_well_formed() {
        // Classes are `<stem>.<field>`, unique, with unique stems (the
        // runtime audit resolves ranks by file stem).
        let mut stems: Vec<&str> = Vec::new();
        for class in LOCK_ORDER {
            let (stem, field) = class.split_once('.').expect("class must be stem.field");
            assert!(!stem.is_empty() && !field.is_empty(), "malformed class {class}");
            assert!(!stems.contains(&stem), "duplicate stem {stem}");
            stems.push(stem);
        }
    }
}
