//! **T1** — the paper's Section 8 experiment table.
//!
//! Generates S/M/B/G, runs the query under the four configurations
//! (Orig. SM, Orig.+PTC SM, Orig.+PTC SSS, Orig. ELS), and prints the
//! experiment table: chosen join order, estimated intermediate result
//! sizes, and measured execution effort (simulated page reads, tuples
//! touched, wall time — best of three runs).
//!
//! Paper reference values (Starburst on 1994 hardware, elapsed seconds):
//!
//! ```text
//! Orig.        SM   S⋈M⋈B⋈G                                     610
//! Orig.+PTC    SM   (0.2, 4e-8, 4e-21)                          560
//! Orig.+PTC    SSS  (0.2, 4e-4, 4e-7)                           472
//! Orig.        ELS  B⋈G⋈M⋈S  (100, 100, 100)                     50
//! ```
//!
//! Absolute numbers differ (our substrate is an in-memory engine); the
//! shape to check is: the PTC+SM/SSS plans under-estimate by many orders of
//! magnitude and execute roughly an order of magnitude (or more) slower
//! than the ELS plan, whose estimates are exactly 100 everywhere.

use els_bench::{fmt_num, section8_catalog, SECTION8_SQL};
use els_exec::execute_plan;
use els_exec::executor::execute_plan_buffered;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els_sql::{bind, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = section8_catalog(42);
    let bound = bind(&parse(SECTION8_SQL)?, &catalog)?;
    let tables = bound_query_tables(&bound, &catalog)?;
    let names = ["S", "M", "B", "G"];

    println!("# T1 — Section 8 experiment");
    println!("query: {SECTION8_SQL}");
    println!("true size after any subset of joins: 100\n");
    println!(
        "| {:<13} | {:<11} | {:<28} | {:>9} | {:>10} | {:>9} |",
        "algorithm", "join order", "estimated sizes", "pages", "tuples", "time(ms)"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(15),
        "-".repeat(13),
        "-".repeat(30),
        "-".repeat(11),
        "-".repeat(12),
        "-".repeat(11)
    );

    let mut measured: Vec<(EstimatorPreset, u64, f64)> = Vec::new();
    for preset in EstimatorPreset::all() {
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset))?;
        let order: Vec<&str> = optimized.join_order.iter().map(|&t| names[t]).collect();
        let sizes: Vec<String> = optimized.estimated_sizes.iter().map(|s| fmt_num(*s)).collect();

        // Best of three runs to damp wall-time noise.
        let mut best_ms = f64::INFINITY;
        let mut pages = 0u64;
        let mut tuples = 0u64;
        let mut count = 0u64;
        for _ in 0..3 {
            let out = execute_plan(&optimized.plan, &tables)?;
            best_ms = best_ms.min(out.metrics.elapsed.as_secs_f64() * 1e3);
            pages = out.metrics.pages_read;
            tuples = out.metrics.tuples_scanned;
            count = out.count;
        }
        assert_eq!(count, 100, "plan must compute the true answer");
        println!(
            "| {:<13} | {:<11} | {:<28} | {:>9} | {:>10} | {:>9.2} |",
            preset.label(),
            order.join("⋈"),
            format!("({})", sizes.join(", ")),
            pages,
            tuples,
            best_ms,
        );
        measured.push((preset, pages, best_ms));
    }

    let els = measured.iter().find(|(p, _, _)| *p == EstimatorPreset::Els).unwrap();
    println!("\nslowdown vs ELS (pages / wall time):");
    for (preset, pages, ms) in &measured {
        println!(
            "  {:<13} {:>6.1}x / {:>6.1}x",
            preset.label(),
            *pages as f64 / els.1 as f64,
            ms / els.2,
        );
    }

    // The paper ran with a fixed buffer; show the same plans through a
    // 500-page LRU pool (G = 391 pages fits): physical I/O converges, CPU
    // damage remains. Full sweep: figure_buffer_sensitivity (F8).
    println!("\nwith a 500-page LRU buffer pool (physical pages / wall time):");
    for preset in EstimatorPreset::all() {
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset))?;
        let mut best_ms = f64::INFINITY;
        let mut phys = 0u64;
        for _ in 0..3 {
            let out = execute_plan_buffered(&optimized.plan, &tables, 500)?;
            assert_eq!(out.count, 100);
            best_ms = best_ms.min(out.metrics.elapsed.as_secs_f64() * 1e3);
            phys = out.metrics.physical_pages_read;
        }
        println!("  {:<13} {:>8} phys pages  {:>8.2} ms", preset.label(), phys, best_ms);
    }
    Ok(())
}
