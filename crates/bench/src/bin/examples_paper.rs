//! **E1–E5** — the paper's worked numeric examples, recomputed and checked.
//!
//! Exits non-zero if any recomputed value differs from the paper.

use els_core::prelude::*;
use els_core::rules::RepresentativeStrategy;
use els_core::{exact, urn};

fn check(label: &str, got: f64, expected: f64) {
    let ok = (got - expected).abs() <= expected.abs() * 1e-9 + 1e-12;
    println!("{} {label}: got {got}, paper says {expected}", if ok { "ok  " } else { "FAIL" });
    assert!(ok, "{label}: {got} != {expected}");
}

fn main() {
    // E1: Example 1b.
    let stats = QueryStatistics::new(vec![
        TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(10.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(100.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(1000.0)]),
    ]);
    let predicates = vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::join_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
    ];
    let prep = |rule: SelectivityRule, rep: RepresentativeStrategy| {
        Els::prepare(
            &predicates,
            &stats,
            &ElsOptions::default().with_rule(rule).with_representative(rep),
        )
        .unwrap()
    };

    println!("== E1: Example 1b ==");
    let ls = prep(SelectivityRule::LargestSelectivity, RepresentativeStrategy::default());
    check("||R2 ⋈ R3||", ls.estimate_order(&[1, 2]).unwrap()[0], 1000.0);
    check(
        "||R1 ⋈ R2 ⋈ R3|| (Equation 3)",
        exact::n_way(&[(100.0, 10.0), (1000.0, 100.0), (1000.0, 1000.0)]),
        1000.0,
    );

    println!("== E2: Example 2 (Rule M) ==");
    let m = prep(SelectivityRule::Multiplicative, RepresentativeStrategy::default());
    check("Rule M final", m.estimate_final(&[1, 2, 0]).unwrap(), 1.0);

    println!("== E3: Example 3 (Rules SS and LS) ==");
    let ss = prep(SelectivityRule::SmallestSelectivity, RepresentativeStrategy::default());
    check("Rule SS final", ss.estimate_final(&[1, 2, 0]).unwrap(), 100.0);
    check("Rule LS final", ls.estimate_final(&[1, 2, 0]).unwrap(), 1000.0);
    let rep_hi = prep(SelectivityRule::Representative, RepresentativeStrategy::LargestInClass);
    check("Representative 0.01 final", rep_hi.estimate_final(&[1, 2, 0]).unwrap(), 10_000.0);
    let rep_lo = prep(SelectivityRule::Representative, RepresentativeStrategy::SmallestInClass);
    check("Representative 0.001 final", rep_lo.estimate_final(&[1, 2, 0]).unwrap(), 100.0);

    println!("== E4: Section 5 urn example ==");
    check("urn(10000, 50000)", urn::expected_distinct_rounded(10_000.0, 50_000.0).unwrap(), 9933.0);
    check(
        "proportional(10000, 50000/100000)",
        urn::proportional_distinct(10_000.0, 50_000.0, 100_000.0).unwrap(),
        5000.0,
    );
    check(
        "urn at full selection",
        urn::expected_distinct_rounded(10_000.0, 100_000.0).unwrap(),
        10_000.0,
    );

    println!("== E5: Section 6 example ==");
    let stats6 = QueryStatistics::new(vec![
        TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(100.0)]),
        TableStatistics::new(
            1000.0,
            vec![ColumnStatistics::with_distinct(10.0), ColumnStatistics::with_distinct(50.0)],
        ),
    ]);
    let preds6 = vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 1)),
    ];
    let els6 = Els::prepare(&preds6, &stats6, &ElsOptions::default()).unwrap();
    let adj = &els6.same_table_adjustments()[0];
    check("||R2||' = 1000/50", adj.cardinality_after, 20.0);
    check("effective column cardinality", adj.join_distinct, 9.0);

    println!("\nall paper examples reproduced");
}
