//! Plan interpretation.

use std::sync::Arc;
use std::time::Duration;

use crate::timing::Stopwatch;

use els_storage::Table;

use crate::chunk::Chunk;
use crate::error::{ExecError, ExecResult};
use crate::filter::apply_filters;
use crate::join::{hash_join, nested_loop_join, sort_merge_join};
use crate::metrics::ExecMetrics;
use crate::plan::{JoinMethod, PlanNode, PlanOutput, QueryPlan};

/// Result of executing a plan.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// The result rows (for `COUNT(*)`, a single-row single-column table
    /// holding the count).
    pub rows: Table,
    /// The count when the output was `COUNT(*)`, else the row count.
    pub count: u64,
    /// Accumulated metrics, including wall time.
    pub metrics: ExecMetrics,
}

/// How a plan tree is evaluated. Both modes produce identical rows, in
/// identical order, with identical logical-work counters (a property the
/// differential tests assert); they differ only in wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The original tuple-at-a-time interpreter, kept as the reference
    /// oracle: whole-table clones at scans, per-row `Value` extraction,
    /// full materialization at every operator.
    RowAtATime,
    /// Typed whole-column kernels with selection vectors and late
    /// materialization (see [`crate::vectorized`]). Hash-join probes split
    /// into morsels across `workers` threads when the probe side is large
    /// enough; `workers == 1` (the default) stays serial.
    Vectorized {
        /// Probe-side worker threads (values below 1 are treated as 1).
        workers: usize,
    },
}

impl Default for ExecMode {
    fn default() -> ExecMode {
        ExecMode::Vectorized { workers: 1 }
    }
}

/// A named evaluation strategy over the same plan/tables interface — lets
/// benches and differential tests iterate over evaluators.
pub trait PlanEvaluator {
    /// Short display name (for bench reports and test diagnostics).
    fn name(&self) -> &'static str;

    /// The mode this evaluator runs plans under.
    fn mode(&self) -> ExecMode;

    /// Evaluate a plan, unbuffered.
    fn run(&self, plan: &QueryPlan, tables: &[Arc<Table>]) -> ExecResult<ExecOutput> {
        execute_plan_with(plan, tables, self.mode())
    }
}

/// The tuple-at-a-time reference oracle.
pub struct RowOracle;

impl PlanEvaluator for RowOracle {
    fn name(&self) -> &'static str {
        "row"
    }

    fn mode(&self) -> ExecMode {
        ExecMode::RowAtATime
    }
}

/// The vectorized engine with a configurable probe worker count.
pub struct VectorizedEvaluator {
    /// Probe-side worker threads.
    pub workers: usize,
}

impl PlanEvaluator for VectorizedEvaluator {
    fn name(&self) -> &'static str {
        "vectorized"
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Vectorized { workers: self.workers }
    }
}

/// Execute `plan` against `tables`, where `tables[i]` is the data of query
/// table `i` (the `FROM`-list position). No buffering: every logical base
/// page read is physical. Runs in the default [`ExecMode`].
pub fn execute_plan(plan: &QueryPlan, tables: &[Arc<Table>]) -> ExecResult<ExecOutput> {
    execute_plan_with(plan, tables, ExecMode::default())
}

/// [`execute_plan`] under an explicit execution mode.
pub fn execute_plan_with(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
    mode: ExecMode,
) -> ExecResult<ExecOutput> {
    execute_plan_io(plan, tables, &mut crate::buffer::PageIo::unbuffered(), mode)
}

/// [`execute_plan`] with an LRU buffer pool of `buffer_pages` pages: base
/// pages already resident cost no physical I/O (the paper's experiment ran
/// with a fixed buffer size).
pub fn execute_plan_buffered(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
    buffer_pages: usize,
) -> ExecResult<ExecOutput> {
    execute_plan_buffered_with(plan, tables, buffer_pages, ExecMode::default())
}

/// [`execute_plan_buffered`] under an explicit execution mode.
pub fn execute_plan_buffered_with(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
    buffer_pages: usize,
    mode: ExecMode,
) -> ExecResult<ExecOutput> {
    execute_plan_io(plan, tables, &mut crate::buffer::PageIo::with_pool(buffer_pages), mode)
}

/// Per-operator output sizes observed during execution, in post-order —
/// the "actual rows" column of EXPLAIN ANALYZE. Join entries align with
/// [`els_core::Els`] step estimates for left-deep plans.
#[derive(Debug, Clone, Default)]
pub struct Observations {
    /// `(tables covered by the subtree, output rows)` for every Join node,
    /// post-order.
    pub join_outputs: Vec<(Vec<usize>, u64)>,
    /// `(table id, rows surviving the scan filters)` for every Scan node.
    /// For inners consumed by rescanning access paths (plain or indexed
    /// nested loops) the stored row count is recorded instead — their
    /// filters are applied during each rescan, so no single filtered
    /// output exists.
    pub scan_outputs: Vec<(usize, u64)>,
    /// Inclusive subtree wall time per Join node, aligned with
    /// `join_outputs`. The rescan-NL/INL inner's cost is charged to its
    /// join, not to the phantom scan entry.
    pub join_elapsed: Vec<Duration>,
    /// Inclusive wall time per Scan node, aligned with `scan_outputs`
    /// (zero for rescanned inners — see `join_elapsed`).
    pub scan_elapsed: Vec<Duration>,
}

/// Equality compares only the *logical* observations (output cardinalities):
/// the wall-time vectors are measurement noise and would make every
/// differential `vec_obs == row_obs` assertion flaky.
impl PartialEq for Observations {
    fn eq(&self, other: &Observations) -> bool {
        self.join_outputs == other.join_outputs && self.scan_outputs == other.scan_outputs
    }
}

/// [`execute_plan`] that also records per-operator actual cardinalities.
pub fn execute_plan_observed(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
) -> ExecResult<(ExecOutput, Observations)> {
    execute_plan_observed_with(plan, tables, ExecMode::default())
}

/// [`execute_plan_observed`] under an explicit execution mode.
pub fn execute_plan_observed_with(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
    mode: ExecMode,
) -> ExecResult<(ExecOutput, Observations)> {
    let mut obs = Observations::default();
    let out = execute_plan_io_observed(
        plan,
        tables,
        &mut crate::buffer::PageIo::unbuffered(),
        &mut obs,
        mode,
    )?;
    Ok((out, obs))
}

/// [`execute_plan_buffered_with`] that also records per-operator actual
/// cardinalities and wall times — the execution half of EXPLAIN ANALYZE.
pub fn execute_plan_buffered_observed_with(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
    buffer_pages: usize,
    mode: ExecMode,
) -> ExecResult<(ExecOutput, Observations)> {
    let mut obs = Observations::default();
    let out = execute_plan_io_observed(
        plan,
        tables,
        &mut crate::buffer::PageIo::with_pool(buffer_pages),
        &mut obs,
        mode,
    )?;
    Ok((out, obs))
}

/// Mutable execution state threaded through every operator: counters,
/// simulated page I/O, and observed cardinalities.
pub(crate) struct ExecState<'a> {
    pub(crate) metrics: &'a mut ExecMetrics,
    pub(crate) io: &'a mut crate::buffer::PageIo,
    pub(crate) obs: &'a mut Observations,
}

fn execute_plan_io(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
    io: &mut crate::buffer::PageIo,
    mode: ExecMode,
) -> ExecResult<ExecOutput> {
    execute_plan_io_observed(plan, tables, io, &mut Observations::default(), mode)
}

fn execute_plan_io_observed(
    plan: &QueryPlan,
    tables: &[Arc<Table>],
    io: &mut crate::buffer::PageIo,
    obs: &mut Observations,
    mode: ExecMode,
) -> ExecResult<ExecOutput> {
    let start = Stopwatch::start();
    let mut metrics = ExecMetrics::default();
    let (mut rows, count): (Table, u64) = match mode {
        ExecMode::RowAtATime => {
            let chunk = execute_node_observed(&plan.root, tables, &mut metrics, io, obs)?;
            shape_output(chunk, &plan.output, &mut metrics)?
        }
        ExecMode::Vectorized { workers } => {
            let mut st = ExecState { metrics: &mut metrics, io, obs };
            if matches!(plan.output, PlanOutput::CountStar) {
                // COUNT(*) never materializes the join result — the point
                // of carrying row ids to the top of the plan — and a keyed
                // hash/sort-merge root fuses the probe with the count, so
                // not even the root's pair list is allocated.
                let n = crate::vectorized::execute_root_count(
                    &plan.root,
                    tables,
                    workers.max(1),
                    &mut st,
                )?;
                (count_table(n)?, n)
            } else {
                let v =
                    crate::vectorized::execute_root(&plan.root, tables, workers.max(1), &mut st)?;
                shape_output(v.materialize()?, &plan.output, &mut metrics)?
            }
        }
    };
    if !plan.order_by.is_empty() {
        rows = sort_output(&rows, &plan.order_by, &mut metrics)?;
    }
    let mut count = count;
    if let Some(limit) = plan.limit {
        let keep = (limit as usize).min(rows.num_rows());
        if keep < rows.num_rows() {
            let indices: Vec<usize> = (0..keep).collect();
            rows = rows.gather(rows.name().to_owned(), &indices)?;
        }
        count = count.min(limit);
    }
    metrics.elapsed = start.elapsed();
    Ok(ExecOutput { rows, count, metrics })
}

/// Shape a materialized root chunk into the client-facing table per the
/// plan's output clause (shared by both execution modes).
fn shape_output(
    chunk: Chunk,
    output: &PlanOutput,
    metrics: &mut ExecMetrics,
) -> ExecResult<(Table, u64)> {
    Ok(match output {
        PlanOutput::CountStar => {
            let n = chunk.num_rows() as u64;
            (count_table(n)?, n)
        }
        PlanOutput::Star => {
            let n = chunk.num_rows() as u64;
            (chunk.data, n)
        }
        PlanOutput::Columns(cols) => {
            let projected = chunk.project(cols)?;
            let n = projected.num_rows() as u64;
            (projected.data, n)
        }
        PlanOutput::GroupCount(cols) => {
            let grouped = group_count(&chunk, cols, metrics)?;
            let n = grouped.num_rows() as u64;
            (grouped, n)
        }
    })
}

/// The single-row `COUNT(*)` result table.
fn count_table(n: u64) -> ExecResult<Table> {
    let mut t = Table::empty("count", &[("count", els_storage::DataType::Int)]);
    t.push_row(vec![els_storage::Value::Int(n as i64)])?;
    Ok(t)
}

/// Stable-sort an output table by `(column, descending)` keys; the columns
/// are located by their synthesized output names (`t{T}_c{C}`).
fn sort_output(
    rows: &Table,
    order_by: &[(els_core::ColumnRef, bool)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Table> {
    // Resolve every key column up front so the comparator below is
    // infallible (a malformed plan degrades to an error, never a panic
    // inside `sort_by`).
    let keys: Vec<(&els_storage::ColumnVector, bool)> = order_by
        .iter()
        .map(|&(c, desc)| {
            let p = rows
                .column_index(&format!("t{}_c{}", c.table, c.column))
                .ok_or(ExecError::ColumnNotInSchema(c))?;
            let column = rows.column(p).map_err(|_| ExecError::ColumnNotInSchema(c))?;
            Ok((column, desc))
        })
        .collect::<ExecResult<Vec<_>>>()?;
    let mut indices: Vec<usize> = (0..rows.num_rows()).collect();
    metrics.rows_sorted += rows.num_rows() as u64;
    indices.sort_by(|&a, &b| {
        for &(column, desc) in &keys {
            // Indices come from `0..num_rows`, so both lookups succeed;
            // treat the unreachable error arm as NULL rather than panic.
            let va = column.get(a).unwrap_or(els_storage::Value::Null);
            let vb = column.get(b).unwrap_or(els_storage::Value::Null);
            let ord = va.total_cmp(&vb);
            if ord != std::cmp::Ordering::Equal {
                return if desc { ord.reverse() } else { ord };
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(rows.gather(rows.name().to_owned(), &indices)?)
}

/// Hash-aggregate `chunk` by the given key columns, producing a table of
/// the keys plus a trailing `count` column, sorted by key (deterministic
/// output order). NULL keys form their own group, as in SQL `GROUP BY`.
pub fn group_count(
    chunk: &Chunk,
    columns: &[els_core::ColumnRef],
    metrics: &mut ExecMetrics,
) -> ExecResult<Table> {
    let positions: Vec<usize> =
        columns.iter().map(|&c| chunk.require(c)).collect::<ExecResult<Vec<_>>>()?;
    // Group by the rendered total-order key (values of one column share a
    // type, so rendering is collision-free) and remember one witness row.
    let mut groups: std::collections::BTreeMap<Vec<String>, (usize, u64)> =
        std::collections::BTreeMap::new();
    for row in 0..chunk.num_rows() {
        let mut key = Vec::with_capacity(positions.len());
        for &p in &positions {
            key.push(chunk.data.column(p)?.get(row)?.to_string());
        }
        metrics.hash_probes += 1;
        groups.entry(key).and_modify(|(_, n)| *n += 1).or_insert((row, 1));
    }
    // Assemble the output table.
    let mut out_columns: Vec<(String, els_storage::ColumnVector)> = positions
        .iter()
        .zip(columns)
        .map(|(&p, c)| {
            Ok((
                format!("t{}_c{}", c.table, c.column),
                els_storage::ColumnVector::with_capacity(
                    chunk.data.column(p)?.data_type(),
                    groups.len(),
                ),
            ))
        })
        .collect::<ExecResult<Vec<_>>>()?;
    let mut counts =
        els_storage::ColumnVector::with_capacity(els_storage::DataType::Int, groups.len());
    for (witness, n) in groups.values() {
        for (slot, &p) in positions.iter().enumerate() {
            let v = chunk.data.column(p)?.get(*witness)?;
            out_columns[slot].1.push(v)?;
        }
        counts.push(els_storage::Value::Int(*n as i64))?;
    }
    out_columns.push(("count".to_owned(), counts));
    metrics.tuples_emitted += groups.len() as u64;
    Ok(Table::new("group_count", out_columns)?)
}

/// Recursively execute one plan node.
pub fn execute_node(
    node: &PlanNode,
    tables: &[Arc<Table>],
    metrics: &mut ExecMetrics,
    io: &mut crate::buffer::PageIo,
) -> ExecResult<Chunk> {
    execute_node_observed(node, tables, metrics, io, &mut Observations::default())
}

/// [`execute_node`] recording per-operator output sizes into `obs`.
pub fn execute_node_observed(
    node: &PlanNode,
    tables: &[Arc<Table>],
    metrics: &mut ExecMetrics,
    io: &mut crate::buffer::PageIo,
    obs: &mut Observations,
) -> ExecResult<Chunk> {
    let start = Stopwatch::start();
    let chunk = execute_node_inner(node, tables, metrics, io, obs)?;
    match node {
        PlanNode::Scan { table_id, .. } => {
            obs.scan_outputs.push((*table_id, chunk.num_rows() as u64));
            obs.scan_elapsed.push(start.elapsed());
        }
        PlanNode::Join { .. } => {
            obs.join_outputs.push((node.tables(), chunk.num_rows() as u64));
            obs.join_elapsed.push(start.elapsed());
        }
    }
    Ok(chunk)
}

fn execute_node_inner(
    node: &PlanNode,
    tables: &[Arc<Table>],
    metrics: &mut ExecMetrics,
    io: &mut crate::buffer::PageIo,
    obs: &mut Observations,
) -> ExecResult<Chunk> {
    match node {
        PlanNode::Scan { table_id, filters } => {
            let data = tables.get(*table_id).ok_or(ExecError::UnknownTable(*table_id))?;
            metrics.tuples_scanned += data.num_rows() as u64;
            io.scan_table(*table_id, data.num_pages() as u64, metrics);
            let chunk = Chunk::from_base_table(*table_id, (**data).clone());
            let filtered = apply_filters(&chunk, filters, metrics)?;
            metrics.tuples_emitted += filtered.num_rows() as u64;
            Ok(filtered)
        }
        PlanNode::Join { method, left, right, keys, ranges } => {
            let l = execute_node_observed(left, tables, metrics, io, obs)?;
            // Nested loops with a base-table inner uses the System-R access
            // pattern: rescan the stored relation (filters applied on the
            // fly) once per outer tuple. Other shapes materialize the inner.
            if let (JoinMethod::NestedLoop, PlanNode::Scan { table_id, filters }) =
                (method, right.as_ref())
            {
                let mut st = ExecState { metrics, io, obs };
                let out = rescan_nested_loop(&l, *table_id, filters, keys, tables, &mut st)?;
                return crate::join::apply_join_ranges(out, ranges, metrics);
            }
            if *method == JoinMethod::IndexNestedLoop {
                let mut st = ExecState { metrics, io, obs };
                let out = indexed_nested_loop(&l, right, keys, tables, &mut st)?;
                return crate::join::apply_join_ranges(out, ranges, metrics);
            }
            let r = execute_node_observed(right, tables, metrics, io, obs)?;
            if *method == JoinMethod::Range {
                if !keys.is_empty() {
                    return Err(ExecError::InvalidPlan("range join cannot carry equi-keys".into()));
                }
                return crate::join::range_join(&l, &r, ranges, metrics);
            }
            let out = match method {
                JoinMethod::NestedLoop => nested_loop_join(&l, &r, keys, metrics),
                JoinMethod::SortMerge => sort_merge_join(&l, &r, keys, metrics),
                JoinMethod::Hash => hash_join(&l, &r, keys, metrics),
                JoinMethod::IndexNestedLoop | JoinMethod::Range => unreachable!("handled above"),
            }?;
            crate::join::apply_join_ranges(out, ranges, metrics)
        }
    }
}

/// Nested loops over a stored inner (System-R rescan access pattern),
/// recording the inner's scan observation. Shared by the row and vectorized
/// paths — the operator's cost is the simulated rescans, so the vectorized
/// path delegates here rather than reimplementing it.
pub(crate) fn rescan_nested_loop(
    l: &Chunk,
    inner_table_id: usize,
    inner_filters: &[crate::filter::CompiledFilter],
    keys: &[(els_core::ColumnRef, els_core::ColumnRef)],
    tables: &[Arc<Table>],
    st: &mut ExecState<'_>,
) -> ExecResult<Chunk> {
    let inner = tables.get(inner_table_id).ok_or(ExecError::UnknownTable(inner_table_id))?;
    let out = crate::join::nested_loop_rescan_join(
        l,
        inner_table_id,
        inner,
        inner_filters,
        keys,
        st.metrics,
        st.io,
    )?;
    st.obs.scan_outputs.push((inner_table_id, inner.num_rows() as u64));
    st.obs.scan_elapsed.push(Duration::ZERO);
    Ok(out)
}

/// Indexed nested loops: build a sorted index on the inner's first key
/// column (charged as a scan plus a sort), then probe per outer tuple.
/// `right` must be a base-table scan. Shared by both execution paths.
pub(crate) fn indexed_nested_loop(
    l: &Chunk,
    right: &PlanNode,
    keys: &[(els_core::ColumnRef, els_core::ColumnRef)],
    tables: &[Arc<Table>],
    st: &mut ExecState<'_>,
) -> ExecResult<Chunk> {
    let PlanNode::Scan { table_id, filters } = right else {
        return Err(ExecError::InvalidPlan(
            "index nested loops requires a base-table inner".into(),
        ));
    };
    let inner = tables.get(*table_id).ok_or(ExecError::UnknownTable(*table_id))?;
    let Some(&(_, first_right)) = keys.first() else {
        return Err(ExecError::InvalidPlan(
            "index nested loops requires at least one join key".into(),
        ));
    };
    let index = crate::index::SortedIndex::build(inner, first_right.column)?;
    st.metrics.tuples_scanned += inner.num_rows() as u64;
    st.io.scan_table(*table_id, inner.num_pages() as u64, st.metrics);
    st.metrics.rows_sorted += inner.num_rows() as u64;
    let out = crate::index::index_nested_loop_join(
        l, *table_id, inner, &index, filters, keys, st.metrics, st.io,
    )?;
    st.obs.scan_outputs.push((*table_id, inner.num_rows() as u64));
    st.obs.scan_elapsed.push(Duration::ZERO);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::CompiledFilter;
    use els_core::predicate::CmpOp;
    use els_core::ColumnRef;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};
    use els_storage::Value;

    /// Two tables: T0 has keys 0..100, T1 has keys 0..1000; every T0 key
    /// matches exactly one T1 key.
    fn tables() -> Vec<Arc<Table>> {
        let t0 = TableSpec::new("T0", 100)
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
            .generate(1);
        let t1 = TableSpec::new("T1", 1000)
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
            .generate(2);
        vec![Arc::new(t0), Arc::new(t1)]
    }

    fn join_plan(method: JoinMethod, filters: Vec<CompiledFilter>) -> QueryPlan {
        QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method,
                left: Box::new(PlanNode::Scan { table_id: 0, filters }),
                right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
                ranges: vec![],
            },
            output: PlanOutput::CountStar,
        }
    }

    #[test]
    fn count_star_counts_join_result() {
        for method in [JoinMethod::NestedLoop, JoinMethod::SortMerge, JoinMethod::Hash] {
            let out = execute_plan(&join_plan(method, Vec::new()), &tables()).unwrap();
            assert_eq!(out.count, 100, "{method:?}");
            assert_eq!(out.rows.row(0).unwrap(), vec![Value::Int(100)]);
        }
    }

    #[test]
    fn scan_filters_apply_before_join() {
        let f = CompiledFilter::Cmp {
            column: ColumnRef::new(0, 0),
            op: CmpOp::Lt,
            value: Value::Int(10),
        };
        let out = execute_plan(&join_plan(JoinMethod::SortMerge, vec![f]), &tables()).unwrap();
        assert_eq!(out.count, 10);
    }

    #[test]
    fn metrics_accumulate_across_nodes() {
        let out = execute_plan(&join_plan(JoinMethod::Hash, Vec::new()), &tables()).unwrap();
        assert_eq!(out.metrics.tuples_scanned, 1100);
        assert!(out.metrics.pages_read >= 3); // both scans at least.
        assert!(out.metrics.hash_probes == 1000);
        assert!(out.metrics.elapsed.as_nanos() > 0);
    }

    #[test]
    fn star_output_returns_all_columns() {
        let mut plan = join_plan(JoinMethod::SortMerge, Vec::new());
        plan.output = PlanOutput::Star;
        let out = execute_plan(&plan, &tables()).unwrap();
        assert_eq!(out.count, 100);
        assert_eq!(out.rows.num_columns(), 2);
    }

    #[test]
    fn column_output_projects() {
        let mut plan = join_plan(JoinMethod::SortMerge, Vec::new());
        plan.output = PlanOutput::Columns(vec![ColumnRef::new(1, 0)]);
        let out = execute_plan(&plan, &tables()).unwrap();
        assert_eq!(out.rows.num_columns(), 1);
        assert_eq!(out.count, 100);
    }

    #[test]
    fn index_nested_loop_plan_executes_and_is_cheap() {
        let filter = CompiledFilter::Cmp {
            column: ColumnRef::new(0, 0),
            op: CmpOp::Lt,
            value: Value::Int(10),
        };
        let plan = |method| QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method,
                left: Box::new(PlanNode::Scan { table_id: 0, filters: vec![filter.clone()] }),
                right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
                ranges: vec![],
            },
            output: PlanOutput::CountStar,
        };
        let inl = execute_plan(&plan(JoinMethod::IndexNestedLoop), &tables()).unwrap();
        assert_eq!(inl.count, 10);
        let nl = execute_plan(&plan(JoinMethod::NestedLoop), &tables()).unwrap();
        assert_eq!(nl.count, 10);
        // INL scans the inner once for the build; NL rescans it 10 times.
        assert!(
            inl.metrics.tuples_scanned < nl.metrics.tuples_scanned,
            "INL {} vs NL {}",
            inl.metrics.tuples_scanned,
            nl.metrics.tuples_scanned
        );
    }

    #[test]
    fn index_nested_loop_rejects_intermediate_inner() {
        let scan = |t| PlanNode::Scan { table_id: t, filters: Vec::new() };
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method: JoinMethod::IndexNestedLoop,
                left: Box::new(scan(0)),
                right: Box::new(PlanNode::Join {
                    method: JoinMethod::Hash,
                    left: Box::new(scan(1)),
                    right: Box::new(scan(0)),
                    keys: vec![],
                    ranges: vec![],
                }),
                keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
                ranges: vec![],
            },
            output: PlanOutput::CountStar,
        };
        assert!(matches!(execute_plan(&plan, &tables()), Err(ExecError::InvalidPlan(_))));
    }

    #[test]
    fn buffered_execution_absorbs_rescans_when_the_inner_fits() {
        // NL join with T1 (1000 rows = 2 pages) as the inner, 100 outer
        // tuples: unbuffered pays 100 rescans; a 16-page pool reads T1 once.
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method: JoinMethod::NestedLoop,
                left: Box::new(PlanNode::Scan { table_id: 0, filters: Vec::new() }),
                right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
                ranges: vec![],
            },
            output: PlanOutput::CountStar,
        };
        let ts = tables();
        let unbuffered = execute_plan(&plan, &ts).unwrap();
        let buffered = execute_plan_buffered(&plan, &ts, 16).unwrap();
        assert_eq!(unbuffered.count, buffered.count);
        // Logical reads identical; physical reads collapse.
        assert_eq!(unbuffered.metrics.pages_read, buffered.metrics.pages_read);
        assert_eq!(unbuffered.metrics.physical_pages_read, unbuffered.metrics.pages_read);
        let t0_pages = ts[0].num_pages() as u64;
        let t1_pages = ts[1].num_pages() as u64;
        assert_eq!(buffered.metrics.physical_pages_read, t0_pages + t1_pages);
    }

    #[test]
    fn a_too_small_buffer_floods_and_does_not_help() {
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method: JoinMethod::NestedLoop,
                left: Box::new(PlanNode::Scan { table_id: 0, filters: Vec::new() }),
                right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
                ranges: vec![],
            },
            output: PlanOutput::CountStar,
        };
        let ts = tables();
        let t1_pages = ts[1].num_pages();
        assert!(t1_pages >= 2);
        // Pool strictly smaller than the rescanned inner: LRU sequential
        // flooding -- physical equals logical on the inner.
        let out = execute_plan_buffered(&plan, &ts, t1_pages - 1).unwrap();
        let unbuffered = execute_plan(&plan, &ts).unwrap();
        assert_eq!(out.metrics.physical_pages_read, unbuffered.metrics.physical_pages_read);
    }

    #[test]
    fn group_count_output() {
        // T0 keys 0..100 joined with T1 keys 0..1000, grouped by T0 key
        // modulo nothing: every key occurs once -> 100 groups of 1. More
        // interesting: group the *inner* side of a duplicated join.
        let mut ts = tables();
        // A table where each key 0..10 appears 3 times.
        let mut dup = Table::empty("dup", &[("k", els_storage::DataType::Int)]);
        for r in 0..30 {
            dup.push_row(vec![Value::Int(r % 10)]).unwrap();
        }
        ts.push(Arc::new(dup));
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Scan { table_id: 2, filters: Vec::new() },
            output: PlanOutput::GroupCount(vec![ColumnRef::new(2, 0)]),
        };
        let out = execute_plan(&plan, &ts).unwrap();
        assert_eq!(out.count, 10); // ten groups
        assert_eq!(out.rows.num_columns(), 2);
        // Every group has count 3; keys are sorted.
        for r in 0..10 {
            let row = out.rows.row(r).unwrap();
            assert_eq!(row[1], Value::Int(3), "group {r}");
        }
        assert_eq!(out.rows.row(0).unwrap()[0], Value::Int(0));
    }

    #[test]
    fn group_count_nulls_form_one_group() {
        let mut t = Table::empty("t", &[("k", els_storage::DataType::Int)]);
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let ts = vec![Arc::new(t)];
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Scan { table_id: 0, filters: Vec::new() },
            output: PlanOutput::GroupCount(vec![ColumnRef::new(0, 0)]),
        };
        let out = execute_plan(&plan, &ts).unwrap();
        assert_eq!(out.count, 2);
    }

    #[test]
    fn unknown_table_errors() {
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Scan { table_id: 7, filters: Vec::new() },
            output: PlanOutput::CountStar,
        };
        assert!(matches!(execute_plan(&plan, &tables()), Err(ExecError::UnknownTable(7))));
    }

    #[test]
    fn single_scan_count() {
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Scan { table_id: 0, filters: Vec::new() },
            output: PlanOutput::CountStar,
        };
        let out = execute_plan(&plan, &tables()).unwrap();
        assert_eq!(out.count, 100);
    }

    /// Old counters with the vectorized-only fields and wall time zeroed,
    /// for cross-mode equality checks.
    fn comparable(mut m: ExecMetrics) -> ExecMetrics {
        m.kernel_rows = 0;
        m.sel_reuses = 0;
        m.morsels = 0;
        m.partitions = 0;
        m.steals = 0;
        m.pair_lists = 0;
        m.elapsed = std::time::Duration::ZERO;
        m
    }

    #[test]
    fn vectorized_mode_matches_row_mode_on_every_method() {
        let f = CompiledFilter::Cmp {
            column: ColumnRef::new(0, 0),
            op: CmpOp::Lt,
            value: Value::Int(50),
        };
        for method in [
            JoinMethod::NestedLoop,
            JoinMethod::SortMerge,
            JoinMethod::Hash,
            JoinMethod::IndexNestedLoop,
        ] {
            for output in [PlanOutput::CountStar, PlanOutput::Star] {
                let mut plan = join_plan(method, vec![f.clone()]);
                plan.output = output;
                let (row, row_obs) =
                    execute_plan_observed_with(&plan, &tables(), ExecMode::RowAtATime).unwrap();
                let (vec, vec_obs) = execute_plan_observed_with(
                    &plan,
                    &tables(),
                    ExecMode::Vectorized { workers: 1 },
                )
                .unwrap();
                assert_eq!(vec.count, row.count, "{method:?}");
                assert_eq!(vec.rows.num_rows(), row.rows.num_rows(), "{method:?}");
                assert_eq!(vec.rows.column_names(), row.rows.column_names(), "{method:?}");
                for r in 0..row.rows.num_rows() {
                    assert_eq!(vec.rows.row(r).unwrap(), row.rows.row(r).unwrap(), "{method:?}");
                }
                assert_eq!(comparable(vec.metrics), comparable(row.metrics), "{method:?}");
                assert_eq!(vec_obs, row_obs, "{method:?}");
            }
        }
    }

    fn range_plan(method: JoinMethod, keys: Vec<(ColumnRef, ColumnRef)>, op: CmpOp) -> QueryPlan {
        QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method,
                left: Box::new(PlanNode::Scan { table_id: 0, filters: Vec::new() }),
                right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                keys,
                ranges: vec![(ColumnRef::new(0, 0), op, ColumnRef::new(1, 0))],
            },
            output: PlanOutput::CountStar,
        }
    }

    #[test]
    fn range_join_plan_matches_row_mode_across_workers() {
        // T0.k in 0..100, T1.k in 0..1000: |{(a,b) : a < b}| = Σ(999-k).
        let expected: u64 = (0..100u64).map(|k| 999 - k).sum();
        for output in [PlanOutput::CountStar, PlanOutput::Star] {
            let mut plan = range_plan(JoinMethod::Range, vec![], CmpOp::Lt);
            plan.output = output;
            let (row, row_obs) =
                execute_plan_observed_with(&plan, &tables(), ExecMode::RowAtATime).unwrap();
            assert_eq!(row.count, expected);
            assert_eq!(row.metrics.range_join_rows, expected);
            for workers in [1, 2, 3, 8] {
                let (vec, vec_obs) =
                    execute_plan_observed_with(&plan, &tables(), ExecMode::Vectorized { workers })
                        .unwrap();
                assert_eq!(vec.count, row.count, "workers={workers}");
                assert_eq!(vec.rows.num_rows(), row.rows.num_rows(), "workers={workers}");
                for r in 0..row.rows.num_rows() {
                    assert_eq!(vec.rows.row(r).unwrap(), row.rows.row(r).unwrap());
                }
                assert_eq!(comparable(vec.metrics), comparable(row.metrics), "workers={workers}");
                assert_eq!(vec_obs, row_obs, "workers={workers}");
            }
        }
    }

    #[test]
    fn residual_ranges_agree_across_methods_and_modes() {
        // Keyed on k with residual `T0.k <= T1.k`: the residual keeps every
        // matched pair, so the count stays 100 and both modes charge the
        // same comparisons. The residual path never touches the band-join
        // counter.
        for method in [JoinMethod::NestedLoop, JoinMethod::SortMerge, JoinMethod::Hash] {
            let keys = vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
            let plan = range_plan(method, keys, CmpOp::Le);
            let row = execute_plan_with(&plan, &tables(), ExecMode::RowAtATime).unwrap();
            let vec =
                execute_plan_with(&plan, &tables(), ExecMode::Vectorized { workers: 1 }).unwrap();
            assert_eq!(row.count, 100, "{method:?}");
            assert_eq!(vec.count, 100, "{method:?}");
            assert_eq!(comparable(vec.metrics), comparable(row.metrics), "{method:?}");
            assert_eq!(row.metrics.range_join_rows, 0, "{method:?}");
        }
        // A strict residual on the same column pair eliminates every pair.
        let keys = vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
        let plan = range_plan(JoinMethod::Hash, keys, CmpOp::Lt);
        for mode in [ExecMode::RowAtATime, ExecMode::Vectorized { workers: 1 }] {
            assert_eq!(execute_plan_with(&plan, &tables(), mode).unwrap().count, 0);
        }
    }

    #[test]
    fn range_join_with_keys_is_rejected_in_both_modes() {
        let keys = vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
        let plan = range_plan(JoinMethod::Range, keys, CmpOp::Lt);
        for mode in [ExecMode::RowAtATime, ExecMode::Vectorized { workers: 1 }] {
            let err = execute_plan_with(&plan, &tables(), mode).unwrap_err();
            assert!(matches!(err, ExecError::InvalidPlan(_)), "{err}");
        }
    }

    #[test]
    fn evaluators_expose_modes_and_run() {
        assert_eq!(RowOracle.mode(), ExecMode::RowAtATime);
        assert_eq!(RowOracle.name(), "row");
        let v = VectorizedEvaluator { workers: 2 };
        assert_eq!(v.mode(), ExecMode::Vectorized { workers: 2 });
        assert_eq!(v.name(), "vectorized");
        assert_eq!(ExecMode::default(), ExecMode::Vectorized { workers: 1 });
        let plan = join_plan(JoinMethod::Hash, Vec::new());
        let a = RowOracle.run(&plan, &tables()).unwrap();
        let b = v.run(&plan, &tables()).unwrap();
        assert_eq!(a.count, b.count);
    }

    #[test]
    fn vectorized_count_star_skips_materialization() {
        // Counts agree with Star row counts even though no gather happens.
        let plan = join_plan(JoinMethod::Hash, Vec::new());
        let count =
            execute_plan_with(&plan, &tables(), ExecMode::Vectorized { workers: 1 }).unwrap();
        let mut star = join_plan(JoinMethod::Hash, Vec::new());
        star.output = PlanOutput::Star;
        let rows =
            execute_plan_with(&star, &tables(), ExecMode::Vectorized { workers: 1 }).unwrap();
        assert_eq!(count.count, rows.rows.num_rows() as u64);
        // The fused COUNT(*) root allocates no row-id pair list; the Star
        // plan materializes exactly one (the root join's).
        assert_eq!(count.metrics.pair_lists, 0, "fused count must not build a pair list");
        assert_eq!(rows.metrics.pair_lists, 1);
    }

    #[test]
    fn fused_count_only_skips_the_root_pair_list() {
        // (T0 ⋈ T1) ⋈ T1: the lower join must still materialize its pair
        // list (its parent composes selections from it); only the root
        // fuses away.
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method: JoinMethod::Hash,
                left: Box::new(PlanNode::Join {
                    method: JoinMethod::Hash,
                    left: Box::new(PlanNode::Scan { table_id: 0, filters: Vec::new() }),
                    right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                    keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
                    ranges: vec![],
                }),
                right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                keys: vec![(ColumnRef::new(1, 0), ColumnRef::new(1, 0))],
                ranges: vec![],
            },
            output: PlanOutput::CountStar,
        };
        let out = execute_plan_with(&plan, &tables(), ExecMode::Vectorized { workers: 1 }).unwrap();
        assert_eq!(out.count, 100);
        assert_eq!(out.metrics.pair_lists, 1, "only the lower join materializes");
    }

    #[test]
    fn three_way_join_pipeline() {
        // (T0 ⋈ T1) ⋈ T2 with T2 = 0..50.
        let mut ts = tables();
        ts.push(Arc::new(
            TableSpec::new("T2", 50)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
                .generate(3),
        ));
        let plan = QueryPlan {
            order_by: Vec::new(),
            limit: None,
            root: PlanNode::Join {
                method: JoinMethod::Hash,
                left: Box::new(PlanNode::Join {
                    method: JoinMethod::SortMerge,
                    left: Box::new(PlanNode::Scan { table_id: 0, filters: Vec::new() }),
                    right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                    keys: vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))],
                    ranges: vec![],
                }),
                right: Box::new(PlanNode::Scan { table_id: 2, filters: Vec::new() }),
                // Join on either prior table's key: use T1's column.
                keys: vec![(ColumnRef::new(1, 0), ColumnRef::new(2, 0))],
                ranges: vec![],
            },
            output: PlanOutput::CountStar,
        };
        let out = execute_plan(&plan, &ts).unwrap();
        assert_eq!(out.count, 50);
    }
}
