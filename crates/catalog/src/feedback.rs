//! Feedback-driven selectivity correction (closing the estimation loop).
//!
//! Static catalog statistics drift: a skewed join or a correlated local
//! predicate keeps producing the *same* bad ELS estimate on every replay.
//! This module learns per-key correction factors from executed queries —
//! each operator's `(estimated, actual)` pair folds into an exponentially
//! decayed geometric mean of the observed error — and the estimator
//! multiplies the matched correction into its selectivity *before*
//! clamping, leaving the paper's Section 4 incremental machinery untouched.
//!
//! Keys identify *what was estimated*, not *where in the plan*:
//!
//! * scans — `(table name, local-predicate fingerprint)`, where the
//!   fingerprint is a sorted, within-table rendering of the pushed-down
//!   predicates, so the key is independent of `FROM`-list position;
//! * joins — the canonical column pair of the join's equivalence class
//!   (all members mapped to `(table name, column index)`, sorted, first
//!   two taken), so every predicate implied by the same class shares one
//!   correction regardless of join order or `FROM` order;
//! * range joins — the oriented column pair plus the comparison operator
//!   (flipped alongside the endpoints when they sort the other way), so
//!   `A.x < B.y` and `B.y > A.x` share one correction while `A.x < B.y`
//!   and `A.x >= B.y` stay separate.
//!
//! Each entry keeps two logs: `log_live`, the decayed estimate of the true
//! correction, and `log_pub`, the value `FeedbackMode::Apply` actually
//! reads. Publication is **edge-triggered**: only when the live value
//! drifts more than the configured threshold (default 2.0× q-error) away
//! from the published one does the store publish and ask the engine to
//! bump the shared-catalog epoch (invalidating cached plans). A steady
//! workload therefore converges — corrections stop moving, no epoch churn
//! — and a pathological one is bounded by the per-key bump cap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use els_core::correction::CorrectionSource;
use els_core::predicate::CmpOp;
use els_core::sync::lock_recovering;
use els_core::ColumnRef;

/// How the engine uses the feedback store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FeedbackMode {
    /// No harvesting, no corrections — the PR-3 behaviour.
    #[default]
    Off,
    /// Harvest `(estimated, actual)` pairs into the store but never
    /// consult it: estimates are bit-identical to [`FeedbackMode::Off`].
    Observe,
    /// Harvest *and* multiply published corrections into selectivities.
    Apply,
}

impl FeedbackMode {
    /// True when executions should harvest observations.
    pub fn observes(self) -> bool {
        self != FeedbackMode::Off
    }

    /// True when the estimator should consult the store.
    pub fn applies(self) -> bool {
        self == FeedbackMode::Apply
    }
}

/// What a correction factor corrects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeedbackKey {
    /// A base-table scan under a specific set of local predicates.
    Scan {
        /// Base-table name (not the binding alias).
        table: String,
        /// Canonical within-table predicate fingerprint (sorted, rendered
        /// with within-table column indices); never empty — an unfiltered
        /// scan's estimate is the exact row count and needs no correction.
        fingerprint: String,
    },
    /// A join equivalence class, identified by its two smallest members
    /// after mapping to `(table name, column index)`.
    Join {
        /// Lexicographically smaller endpoint.
        a: (String, usize),
        /// Lexicographically larger endpoint (equal for self-joins).
        b: (String, usize),
    },
    /// An inequality (range) join predicate `a op b`. Unlike equality
    /// joins there is no equivalence class — the key is the oriented
    /// column pair plus the comparison operator, canonicalized so that
    /// `A.x < B.y` and `B.y > A.x` name the same key.
    Range {
        /// Lexicographically smaller endpoint.
        a: (String, usize),
        /// The comparison, rendered (`<`, `<=`, `>`, `>=`) as applied to
        /// the canonical endpoint order.
        op: String,
        /// Lexicographically larger endpoint.
        b: (String, usize),
    },
}

impl FeedbackKey {
    /// A scan key.
    pub fn scan(table: impl Into<String>, fingerprint: impl Into<String>) -> FeedbackKey {
        FeedbackKey::Scan { table: table.into(), fingerprint: fingerprint.into() }
    }

    /// A join key; the endpoint pair is canonicalized (sorted) so both
    /// argument orders name the same key.
    pub fn join(a: (String, usize), b: (String, usize)) -> FeedbackKey {
        if a <= b {
            FeedbackKey::Join { a, b }
        } else {
            FeedbackKey::Join { a: b, b: a }
        }
    }

    /// A range-join key for `a op b`; canonicalized by sorting the
    /// endpoints and flipping `op` when they swap (and, for equal
    /// endpoints — two aliases of one table joined on the same column —
    /// normalizing to the `<` family), so both renderings of one
    /// inequality name the same key.
    pub fn range(a: (String, usize), op: CmpOp, b: (String, usize)) -> FeedbackKey {
        if a < b || (a == b && !matches!(op, CmpOp::Gt | CmpOp::Ge)) {
            FeedbackKey::Range { a, op: op.to_string(), b }
        } else {
            FeedbackKey::Range { a: b, op: op.flip().to_string(), b: a }
        }
    }
}

/// Per-key learning state (see module docs for the two-log scheme).
#[derive(Debug, Clone, Copy)]
struct CorrectionEntry {
    /// Exponentially decayed log-correction (the live estimate).
    log_live: f64,
    /// Published log-correction that [`FeedbackStore::correction`] serves;
    /// `0.0` until first publication (serve nothing).
    log_pub: f64,
    /// Observations folded into `log_live`.
    observations: u64,
    /// Publications so far (each one bumps the catalog epoch).
    bumps: u64,
}

/// Point-in-time counters for monitoring and the bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackCounters {
    /// Observations folded in via [`FeedbackStore::observe`].
    pub learned: u64,
    /// Correction lookups that returned a published factor.
    pub applied: u64,
    /// Publications (= epoch-bump requests granted).
    pub epoch_bumps: u64,
    /// Keys currently tracked.
    pub keys: u64,
    /// Keys with a published (non-identity) correction.
    pub published: u64,
}

/// Thread-safe store of per-key correction factors.
///
/// Shared by every snapshot of one engine's catalog (it sits behind an
/// `Arc` on [`crate::Catalog`], so copy-on-write snapshot publication
/// keeps pointing at the same live store): observations harvested against
/// an old snapshot are never lost.
#[derive(Debug)]
pub struct FeedbackStore {
    entries: Mutex<HashMap<FeedbackKey, CorrectionEntry>>,
    /// EWMA weight of the newest observation, in `(0, 1]`.
    decay: f64,
    /// `ln` of the publication threshold (default `ln 2`).
    drift_log: f64,
    /// Maximum publications per key (bounds epoch churn).
    max_bumps_per_key: u64,
    learned: AtomicU64,
    applied: AtomicU64,
    epoch_bumps: AtomicU64,
}

impl Default for FeedbackStore {
    fn default() -> FeedbackStore {
        FeedbackStore {
            entries: Mutex::new(HashMap::new()),
            decay: FeedbackStore::DEFAULT_DECAY,
            drift_log: FeedbackStore::DEFAULT_DRIFT_THRESHOLD.ln(),
            max_bumps_per_key: FeedbackStore::DEFAULT_MAX_BUMPS_PER_KEY,
            learned: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            epoch_bumps: AtomicU64::new(0),
        }
    }
}

impl FeedbackStore {
    /// Default EWMA weight for the newest observation.
    pub const DEFAULT_DECAY: f64 = 0.4;
    /// Default publication threshold, as a q-error factor.
    pub const DEFAULT_DRIFT_THRESHOLD: f64 = 2.0;
    /// Default cap on publications (epoch bumps) per key.
    pub const DEFAULT_MAX_BUMPS_PER_KEY: u64 = 8;
    /// Corrections are clamped to `[1/BOUND, BOUND]`.
    const CORRECTION_BOUND: f64 = 1.0e6;

    /// An empty store with default tuning.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Set the EWMA weight of the newest observation (clamped to
    /// `(0, 1]`; the first observation of a key always lands with full
    /// weight).
    #[must_use]
    pub fn with_decay(mut self, decay: f64) -> FeedbackStore {
        self.decay = if decay.is_finite() { decay.clamp(f64::MIN_POSITIVE, 1.0) } else { 1.0 };
        self
    }

    /// Set the publication threshold as a q-error factor (clamped to
    /// `>= 1`; at exactly 1 every drift publishes).
    #[must_use]
    pub fn with_drift_threshold(mut self, threshold: f64) -> FeedbackStore {
        self.drift_log = if threshold.is_finite() { threshold.max(1.0).ln() } else { f64::MAX };
        self
    }

    /// Set the per-key publication cap.
    #[must_use]
    pub fn with_max_bumps_per_key(mut self, cap: u64) -> FeedbackStore {
        self.max_bumps_per_key = cap;
        self
    }

    /// Fold one `(estimated, actual)` observation into `key`'s correction.
    ///
    /// `corrected` says whether `estimated` already had this key's
    /// published correction multiplied in (an `Apply`-mode estimate): the
    /// store then reconstructs the *raw* residual by composing the
    /// published log back in, so learning targets the uncorrected
    /// estimator error and re-applying never double-counts.
    ///
    /// Returns `true` when the observation moved the live correction far
    /// enough from the published one to publish (edge-trigger) — the
    /// caller should then bump the shared-catalog epoch so cached plans
    /// re-optimize against the new correction.
    pub fn observe(&self, key: FeedbackKey, estimated: f64, actual: f64, corrected: bool) -> bool {
        if !estimated.is_finite() || !actual.is_finite() || estimated < 0.0 || actual < 0.0 {
            return false;
        }
        self.observe_ratio(key, actual.max(1.0) / estimated.max(1.0), corrected)
    }

    /// [`FeedbackStore::observe`] with the residual ratio `actual/estimated`
    /// already isolated by the caller — the join-harvest path, which strips
    /// child errors out of an observed join cardinality and splits the
    /// remainder across linking equivalence classes, producing a fractional
    /// factor no tuple-count floor should touch. Rejects non-positive and
    /// non-finite ratios.
    pub fn observe_ratio(&self, key: FeedbackKey, ratio: f64, corrected: bool) -> bool {
        if !ratio.is_finite() || ratio <= 0.0 {
            return false;
        }
        let residual = ratio.ln();
        let bound = FeedbackStore::CORRECTION_BOUND.ln();
        self.learned.fetch_add(1, Ordering::Relaxed);
        let mut entries = lock_recovering(&self.entries);
        let entry = entries.entry(key).or_insert(CorrectionEntry {
            log_live: 0.0,
            log_pub: 0.0,
            observations: 0,
            bumps: 0,
        });
        let target = (if corrected { entry.log_pub } else { 0.0 } + residual).clamp(-bound, bound);
        entry.log_live = if entry.observations == 0 {
            target
        } else {
            (self.decay * target + (1.0 - self.decay) * entry.log_live).clamp(-bound, bound)
        };
        entry.observations += 1;
        let drifted = (entry.log_live - entry.log_pub).abs() > self.drift_log;
        if drifted && entry.bumps < self.max_bumps_per_key {
            entry.log_pub = entry.log_live;
            entry.bumps += 1;
            drop(entries);
            self.epoch_bumps.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The published correction factor for `key`, if any. Returns `None`
    /// when the key is unknown **or** nothing has been published yet — a
    /// store with zero published corrections therefore leaves every
    /// estimate bit-identical to [`FeedbackMode::Off`].
    pub fn correction(&self, key: &FeedbackKey) -> Option<f64> {
        let entries = lock_recovering(&self.entries);
        let log_pub = entries.get(key).map(|e| e.log_pub).filter(|&l| l != 0.0)?;
        drop(entries);
        self.applied.fetch_add(1, Ordering::Relaxed);
        Some(log_pub.exp())
    }

    /// Point-in-time counters.
    pub fn counters(&self) -> FeedbackCounters {
        let entries = lock_recovering(&self.entries);
        let keys = entries.len() as u64;
        let published = entries.values().filter(|e| e.log_pub != 0.0).count() as u64;
        drop(entries);
        FeedbackCounters {
            learned: self.learned.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            epoch_bumps: self.epoch_bumps.load(Ordering::Relaxed),
            keys,
            published,
        }
    }

    /// Sorted `(key, published correction, observations)` rows for
    /// reports; unpublished keys report a correction of 1.0.
    pub fn snapshot(&self) -> Vec<(FeedbackKey, f64, u64)> {
        let entries = lock_recovering(&self.entries);
        let mut rows: Vec<(FeedbackKey, f64, u64)> =
            entries.iter().map(|(k, e)| (k.clone(), e.log_pub.exp(), e.observations)).collect();
        drop(entries);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        lock_recovering(&self.entries).len()
    }

    /// True when no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// [`CorrectionSource`] adapter binding one query's `FROM` list to the
/// shared store: `els-core` asks by positional table index and class
/// members; this translates to name-based [`FeedbackKey`]s so corrections
/// survive any `FROM` order or alias shuffle. Also the key factory the
/// engine's harvest path uses, so learning and application can never
/// disagree on canonicalization.
#[derive(Debug)]
pub struct QueryCorrections {
    store: Arc<FeedbackStore>,
    /// Base-table name per `FROM` position (names, not aliases: two
    /// aliases of one table share corrections).
    tables: Vec<String>,
    applied: AtomicU64,
}

impl QueryCorrections {
    /// Bind `store` to a query's positional table-name list.
    pub fn new(store: Arc<FeedbackStore>, tables: Vec<String>) -> QueryCorrections {
        QueryCorrections { store, tables, applied: AtomicU64::new(0) }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<FeedbackStore> {
        &self.store
    }

    /// How many lookups through this adapter returned a correction.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// The scan key for `FROM` position `table` under `fingerprint`
    /// (`None` for an out-of-range position or empty fingerprint).
    pub fn scan_key(&self, table: usize, fingerprint: &str) -> Option<FeedbackKey> {
        if fingerprint.is_empty() {
            return None;
        }
        Some(FeedbackKey::scan(self.tables.get(table)?.clone(), fingerprint))
    }

    /// The canonical join key for an equivalence class: every member maps
    /// to `(table name, column index)`, the pairs are sorted, and the two
    /// smallest identify the class — independent of `FROM` order and of
    /// which implied predicate asks. `None` when fewer than two members
    /// resolve.
    pub fn join_key(&self, members: &[ColumnRef]) -> Option<FeedbackKey> {
        let mut endpoints: Vec<(String, usize)> = members
            .iter()
            .filter_map(|m| Some((self.tables.get(m.table)?.clone(), m.column)))
            .collect();
        if endpoints.len() < 2 {
            return None;
        }
        endpoints.sort();
        let b = endpoints.swap_remove(1);
        let a = endpoints.swap_remove(0);
        Some(FeedbackKey::join(a, b))
    }

    /// The canonical key for the inequality join predicate `left op right`
    /// (both sides mapped to `(table name, column index)`; the constructor
    /// re-orients so `FROM` order cannot split one inequality across two
    /// keys). `None` when either position is out of range.
    pub fn range_key(&self, left: ColumnRef, op: CmpOp, right: ColumnRef) -> Option<FeedbackKey> {
        let a = (self.tables.get(left.table)?.clone(), left.column);
        let b = (self.tables.get(right.table)?.clone(), right.column);
        Some(FeedbackKey::range(a, op, b))
    }
}

impl CorrectionSource for QueryCorrections {
    fn scan_correction(&self, table: usize, fingerprint: &str) -> Option<f64> {
        let corr = self.store.correction(&self.scan_key(table, fingerprint)?)?;
        self.applied.fetch_add(1, Ordering::Relaxed);
        Some(corr)
    }

    fn join_correction(&self, members: &[ColumnRef]) -> Option<f64> {
        let corr = self.store.correction(&self.join_key(members)?)?;
        self.applied.fetch_add(1, Ordering::Relaxed);
        Some(corr)
    }

    fn range_correction(&self, left: ColumnRef, op: CmpOp, right: ColumnRef) -> Option<f64> {
        let corr = self.store.correction(&self.range_key(left, op, right)?)?;
        self.applied.fetch_add(1, Ordering::Relaxed);
        Some(corr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> FeedbackKey {
        FeedbackKey::scan("t", "c0<100")
    }

    #[test]
    fn join_keys_canonicalize_endpoint_order() {
        let ab = FeedbackKey::join(("a".into(), 1), ("b".into(), 0));
        let ba = FeedbackKey::join(("b".into(), 0), ("a".into(), 1));
        assert_eq!(ab, ba);
        // Self-join endpoints may coincide.
        let selfjoin = FeedbackKey::join(("t".into(), 0), ("t".into(), 0));
        assert!(matches!(selfjoin, FeedbackKey::Join { a, b } if a == b));
    }

    #[test]
    fn range_keys_canonicalize_by_flipping_the_operator() {
        // `A.x < B.y` and `B.y > A.x` are the same inequality.
        let lt = FeedbackKey::range(("a".into(), 0), CmpOp::Lt, ("b".into(), 1));
        let gt = FeedbackKey::range(("b".into(), 1), CmpOp::Gt, ("a".into(), 0));
        assert_eq!(lt, gt);
        assert!(matches!(&lt, FeedbackKey::Range { a, op, b }
            if a == &("a".to_owned(), 0) && op == "<" && b == &("b".to_owned(), 1)));
        // Different operators on the same pair stay distinct keys.
        let le = FeedbackKey::range(("a".into(), 0), CmpOp::Le, ("b".into(), 1));
        assert_ne!(lt, le);
        // Equal endpoints (self-join aliases) normalize to the `<` family.
        let self_lt = FeedbackKey::range(("t".into(), 0), CmpOp::Lt, ("t".into(), 0));
        let self_gt = FeedbackKey::range(("t".into(), 0), CmpOp::Gt, ("t".into(), 0));
        assert_eq!(self_lt, self_gt);
    }

    #[test]
    fn range_corrections_survive_from_order_shuffles() {
        let store = Arc::new(FeedbackStore::new());
        // Learn under FROM [a, b] with `a.c0 < b.c1`.
        let learn = QueryCorrections::new(Arc::clone(&store), vec!["a".into(), "b".into()]);
        let key = learn.range_key(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 1)).unwrap();
        store.observe(key, 100.0, 1000.0, false);
        // Apply under FROM [b, a], where the binder's positional
        // canonicalization renders the same predicate `b.c1 > a.c0`.
        let apply = QueryCorrections::new(Arc::clone(&store), vec!["b".into(), "a".into()]);
        let c = apply
            .range_correction(ColumnRef::new(0, 1), CmpOp::Gt, ColumnRef::new(1, 0))
            .expect("same key from the flipped rendering");
        assert!((c - 10.0).abs() < 1e-9);
        assert_eq!(apply.applied(), 1);
        // A different operator on the same pair has learned nothing.
        assert_eq!(
            apply.range_correction(ColumnRef::new(0, 1), CmpOp::Ge, ColumnRef::new(1, 0)),
            None
        );
        // Out-of-range positions produce no key.
        assert_eq!(apply.range_key(ColumnRef::new(9, 0), CmpOp::Lt, ColumnRef::new(0, 0)), None);
    }

    #[test]
    fn unknown_or_unpublished_keys_yield_no_correction() {
        let store = FeedbackStore::new();
        assert_eq!(store.correction(&k()), None, "unknown key");
        // One mild observation (q-error 1.5 < threshold 2.0): learned but
        // not published.
        assert!(!store.observe(k(), 100.0, 150.0, false));
        assert_eq!(store.correction(&k()), None, "below drift threshold");
        let c = store.counters();
        assert_eq!((c.learned, c.applied, c.epoch_bumps, c.keys, c.published), (1, 0, 0, 1, 0));
    }

    #[test]
    fn drift_past_threshold_publishes_once_then_settles() {
        let store = FeedbackStore::new();
        // 10x underestimate: first observation initializes with full
        // weight, drifts past 2.0, publishes.
        assert!(store.observe(k(), 100.0, 1000.0, false));
        let c = store.correction(&k()).expect("published");
        assert!((c - 10.0).abs() < 1e-9, "correction {c}");
        // The same residual again (now fed back as corrected estimates
        // that match actuals) keeps the live value put: no republish.
        assert!(!store.observe(k(), 1000.0, 1000.0, true));
        assert_eq!(store.counters().epoch_bumps, 1);
        assert!((store.correction(&k()).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn corrected_observations_reconstruct_the_raw_residual() {
        let store = FeedbackStore::new();
        assert!(store.observe(k(), 100.0, 1000.0, false)); // publish 10x
                                                           // Apply-mode estimate 1000 vs actual 1000: residual 0, but the
                                                           // estimate had the 10x correction in it, so the raw target stays
                                                           // ln(10) — log_live must not collapse toward 0.
        store.observe(k(), 1000.0, 1000.0, true);
        store.observe(k(), 1000.0, 1000.0, true);
        assert!((store.correction(&k()).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_blends_observations_with_decay() {
        let store = FeedbackStore::new().with_drift_threshold(f64::INFINITY);
        store.observe(k(), 1.0, std::f64::consts::E, false); // log_live = 1
        store.observe(k(), 1.0, 1.0, false); // target 0
        let rows = store.snapshot();
        assert_eq!(rows.len(), 1);
        // Never published (infinite threshold) → factor 1.0 reported.
        assert_eq!(rows[0].1, 1.0);
        assert_eq!(rows[0].2, 2);
        // log_live = 0.4*0 + 0.6*1 = 0.6; verify through a tiny threshold.
        let store2 = FeedbackStore::new();
        store2.observe(k(), 1.0, std::f64::consts::E, false);
        store2.observe(k(), 1.0, 1.0, false);
        let c = store2.correction(&k()).unwrap();
        assert!((c.ln() - 1.0).abs() < 1e-9, "first publication froze ln 1, got ln {}", c.ln());
    }

    #[test]
    fn bump_cap_bounds_epoch_churn() {
        let store = FeedbackStore::new().with_max_bumps_per_key(2).with_decay(1.0);
        // Alternate 100x over/underestimates: every observation drifts.
        let mut bumps = 0;
        for i in 0..10 {
            let (est, act) = if i % 2 == 0 { (1.0, 100.0) } else { (100.0, 1.0) };
            if store.observe(k(), est, act, false) {
                bumps += 1;
            }
        }
        assert_eq!(bumps, 2, "cap honoured");
        assert_eq!(store.counters().epoch_bumps, 2);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let store = FeedbackStore::new();
        assert!(!store.observe(k(), f64::NAN, 10.0, false));
        assert!(!store.observe(k(), 10.0, f64::INFINITY, false));
        assert!(!store.observe(k(), -1.0, 10.0, false));
        assert_eq!(store.counters().learned, 0);
        assert!(store.is_empty());
        // Zero estimate/actual clamp to 1 rather than exploding.
        assert!(!store.observe(k(), 0.0, 0.0, false));
        assert_eq!(store.correction(&k()), None);
    }

    #[test]
    fn corrections_are_bounded() {
        let store = FeedbackStore::new();
        store.observe(k(), 1.0, 1.0e12, false);
        let c = store.correction(&k()).unwrap();
        assert!(c <= FeedbackStore::CORRECTION_BOUND * (1.0 + 1e-9), "clamped, got {c}");
    }

    #[test]
    fn query_corrections_translate_positions_to_names() {
        let store = Arc::new(FeedbackStore::new());
        // Learn under FROM [a, b]; apply under FROM [b, a].
        let learn = QueryCorrections::new(Arc::clone(&store), vec!["a".into(), "b".into()]);
        let key = learn.join_key(&[ColumnRef::new(0, 0), ColumnRef::new(1, 0)]).unwrap();
        store.observe(key, 100.0, 1000.0, false);
        store.observe(learn.scan_key(0, "c0<5").unwrap(), 10.0, 100.0, false);

        let apply = QueryCorrections::new(Arc::clone(&store), vec!["b".into(), "a".into()]);
        // The join class members arrive in the *new* FROM positions.
        let c = apply.join_correction(&[ColumnRef::new(0, 0), ColumnRef::new(1, 0)]).unwrap();
        assert!((c - 10.0).abs() < 1e-9);
        // Table `a` is now position 1.
        let s = apply.scan_correction(1, "c0<5").unwrap();
        assert!((s - 10.0).abs() < 1e-9);
        assert_eq!(apply.scan_correction(0, "c0<5"), None, "b never observed");
        assert_eq!(apply.applied(), 2);
        // Empty fingerprints and out-of-range positions produce no key.
        assert_eq!(apply.scan_key(0, ""), None);
        assert_eq!(apply.scan_key(9, "c0<5"), None);
        assert_eq!(apply.join_key(&[ColumnRef::new(0, 0)]), None);
    }

    #[test]
    fn join_key_is_canonical_over_three_way_classes() {
        let q1 = QueryCorrections::new(
            Arc::new(FeedbackStore::new()),
            vec!["s".into(), "m".into(), "b".into()],
        );
        let q2 = QueryCorrections::new(
            Arc::new(FeedbackStore::new()),
            vec!["b".into(), "s".into(), "m".into()],
        );
        // Same class {s.c0, m.c0, b.c0} seen from two FROM orders.
        let k1 = q1
            .join_key(&[ColumnRef::new(0, 0), ColumnRef::new(1, 0), ColumnRef::new(2, 0)])
            .unwrap();
        let k2 = q2
            .join_key(&[ColumnRef::new(0, 0), ColumnRef::new(1, 0), ColumnRef::new(2, 0)])
            .unwrap();
        assert_eq!(k1, k2);
        assert_eq!(k1, FeedbackKey::join(("b".into(), 0), ("m".into(), 0)));
    }

    #[test]
    fn concurrent_observation_is_safe_and_lossless() {
        let store = FeedbackStore::new().with_drift_threshold(f64::INFINITY);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let key = FeedbackKey::scan(format!("t{}", (t + i) % 3), "c0<1");
                        store.observe(key, 10.0, 20.0, false);
                    }
                });
            }
        });
        let c = store.counters();
        assert_eq!(c.learned, 400, "no lost updates");
        assert_eq!(c.keys, 3);
        assert_eq!(c.epoch_bumps, 0);
    }
}
