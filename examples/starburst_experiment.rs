//! The paper's Section 8 experiment, end to end.
//!
//! Generates the S / M / B / G tables, optimizes the query
//!
//! ```sql
//! SELECT COUNT(*) FROM S, M, B, G
//! WHERE s = m AND m = b AND b = g AND s < 100
//! ```
//!
//! under the paper's four configurations (Algorithm SM without and with
//! predicate transitive closure, Algorithm SSS, and Algorithm ELS),
//! executes each chosen plan, and prints the experiment table: join order,
//! estimated intermediate sizes, and measured execution effort.
//!
//! Run with: `cargo run --release --example starburst_experiment`

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::exec::execute_plan;
use els::optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els::sql::{bind, parse};
use els::storage::datagen::starburst_experiment_tables;

const SQL: &str = "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    for t in starburst_experiment_tables(42) {
        catalog.register(t, &CollectOptions::default())?;
    }
    let bound = bind(&parse(SQL)?, &catalog)?;
    let tables = bound_query_tables(&bound, &catalog)?;
    let names = ["S", "M", "B", "G"];

    println!("Query: {SQL}");
    println!("True result size after any subset of joins: 100\n");
    println!(
        "{:<14} {:<18} {:<34} {:>10} {:>10} {:>9}",
        "algorithm", "join order", "estimated sizes", "pages", "tuples", "time(ms)"
    );
    println!("{}", "-".repeat(100));

    for preset in EstimatorPreset::all() {
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset))?;
        let order: Vec<&str> = optimized.join_order.iter().map(|&t| names[t]).collect();
        let sizes: Vec<String> =
            optimized.estimated_sizes.iter().map(|s| format!("{s:.3e}")).collect();
        let out = execute_plan(&optimized.plan, &tables)?;
        assert_eq!(out.count, 100, "every plan must compute the true answer");
        println!(
            "{:<14} {:<18} {:<34} {:>10} {:>10} {:>9.2}",
            preset.label(),
            order.join("⋈"),
            format!("({})", sizes.join(", ")),
            out.metrics.pages_read,
            out.metrics.tuples_scanned,
            out.metrics.elapsed.as_secs_f64() * 1e3,
        );
    }

    println!("\nPlans:");
    for preset in EstimatorPreset::all() {
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset))?;
        println!("--- {} ---\n{}", preset.label(), optimized.plan.root.explain());
    }
    Ok(())
}
