//! A sorted secondary index and the indexed nested-loops join.
//!
//! System R's nested loops becomes viable on large inners when the inner
//! has an index on the join key: each outer tuple costs an index descent
//! plus the matching tuples, instead of a full rescan. The paper's
//! experiment ran without such indexes (which is what makes the misled
//! plans catastrophic); this module provides the indexed path so the
//! access-method ablation (experiment F6) can quantify how much of the
//! damage an index would absorb.
//!
//! [`SortedIndex`] is a binary-searchable `(key, row)` array — the moral
//! equivalent of a read-only B⁺-tree for an in-memory store.

use els_core::ColumnRef;
use els_storage::{Table, Value};

use crate::chunk::Chunk;
use crate::error::{ExecError, ExecResult};
use crate::filter::CompiledFilter;
use crate::metrics::ExecMetrics;

/// A sorted `(key, row id)` index over one column of a stored table.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    /// Entries sorted by key (NULL keys are excluded — they never join).
    entries: Vec<(Value, u32)>,
}

impl SortedIndex {
    /// Build an index over `column` of `table`. Cost: one scan plus a sort;
    /// callers that model cost should charge [`SortedIndex::build_cost_rows`]
    /// tuples.
    pub fn build(table: &Table, column: usize) -> ExecResult<SortedIndex> {
        let col = table.column(column)?;
        // Index entries address rows with u32 ids, exactly like selection
        // vectors; refuse oversized tables instead of aliasing row ids.
        crate::error::check_rowid_range(col.len())?;
        let mut entries: Vec<(Value, u32)> = Vec::with_capacity(col.len());
        for row in 0..col.len() {
            let v = col.get(row)?;
            if !v.is_null() {
                entries.push((v, crate::error::rowid(row)));
            }
        }
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(SortedIndex { entries })
    }

    /// Number of indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rows whose key equals `key`, in row order. Binary search; O(log n +
    /// matches).
    pub fn lookup<'a>(&'a self, key: &'a Value) -> impl Iterator<Item = usize> + 'a {
        let lo =
            self.entries.partition_point(|(k, _)| k.total_cmp(key) == std::cmp::Ordering::Less);
        self.entries[lo..].iter().take_while(move |(k, _)| k.sql_eq(key)).map(|(_, r)| *r as usize)
    }
}

/// Indexed nested loops: probe `index` (over `key_column` of the stored
/// `inner`) once per outer tuple; each hit is verified against the inner's
/// local `filters` and any residual `keys` beyond the indexed one.
///
/// `keys[0].1` must be the indexed column.
#[allow(clippy::too_many_arguments)]
pub fn index_nested_loop_join(
    left: &Chunk,
    inner_table_id: usize,
    inner: &Table,
    index: &SortedIndex,
    inner_filters: &[CompiledFilter],
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
    io: &mut crate::buffer::PageIo,
) -> ExecResult<Chunk> {
    let Some(&(first_left, _)) = keys.first() else {
        return Err(ExecError::InvalidPlan(
            "index nested loops requires at least one join key".into(),
        ));
    };
    let inner_chunk = Chunk::from_base_table(inner_table_id, inner.clone());
    let probe_pos = left.require(first_left)?;
    // Residual keys beyond the indexed first.
    let residual: Vec<(usize, usize)> = keys[1..]
        .iter()
        .map(|&(l, r)| Ok((left.require(l)?, inner_chunk.require(r)?)))
        .collect::<ExecResult<Vec<_>>>()?;

    let tuples_per_page = inner.tuples_per_page() as u64;
    let mut rows: Vec<(usize, usize)> = Vec::new();
    for l in 0..left.num_rows() {
        let key = left.data.column(probe_pos)?.get(l)?;
        if key.is_null() {
            continue;
        }
        // One index descent per outer tuple.
        metrics.comparisons += (index.len().max(2) as f64).log2() as u64;
        'hit: for r in index.lookup(&key) {
            // Fetch the data page holding the matched tuple.
            io.read_page(inner_table_id, r as u64 / tuples_per_page.max(1), metrics);
            for f in inner_filters {
                metrics.comparisons += 1;
                if !f.matches(&inner_chunk, r)? {
                    continue 'hit;
                }
            }
            for &(lp, rp) in &residual {
                metrics.comparisons += 1;
                let lv = left.data.column(lp)?.get(l)?;
                let rv = inner_chunk.data.column(rp)?.get(r)?;
                if !lv.sql_eq(&rv) {
                    continue 'hit;
                }
            }
            rows.push((l, r));
        }
    }
    metrics.tuples_emitted += rows.len() as u64;
    Chunk::join_rows(left, &inner_chunk, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_core::predicate::CmpOp;
    use els_storage::DataType;

    fn table(values: &[i64]) -> Table {
        let mut t = Table::empty("t", &[("k", DataType::Int)]);
        for &v in values {
            t.push_row(vec![Value::Int(v)]).unwrap();
        }
        t
    }

    #[test]
    fn build_and_lookup() {
        let t = table(&[5, 3, 5, 1, 5]);
        let idx = SortedIndex::build(&t, 0).unwrap();
        assert_eq!(idx.len(), 5);
        let hits: Vec<usize> = idx.lookup(&Value::Int(5)).collect();
        assert_eq!(hits, vec![0, 2, 4]);
        assert_eq!(idx.lookup(&Value::Int(9)).count(), 0);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let mut t = table(&[1, 2]);
        t.push_row(vec![Value::Null]).unwrap();
        let idx = SortedIndex::build(&t, 0).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.lookup(&Value::Null).count(), 0);
    }

    #[test]
    fn index_join_matches_rescan_join() {
        let outer_t = table(&[0, 1, 2, 2, 9]);
        let outer = Chunk::from_base_table(0, outer_t);
        let inner = table(&[2, 2, 3, 0]);
        let idx = SortedIndex::build(&inner, 0).unwrap();
        let keys = vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
        let mut m = ExecMetrics::default();
        let mut io = crate::buffer::PageIo::unbuffered();
        let via_index =
            index_nested_loop_join(&outer, 1, &inner, &idx, &[], &keys, &mut m, &mut io).unwrap();
        let via_rescan =
            crate::join::nested_loop_rescan_join(&outer, 1, &inner, &[], &keys, &mut m, &mut io)
                .unwrap();
        let pairs = |c: &Chunk| {
            let mut v: Vec<Vec<Value>> =
                (0..c.num_rows()).map(|r| c.data.row(r).unwrap()).collect();
            v.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
            v
        };
        assert_eq!(pairs(&via_index), pairs(&via_rescan));
        assert_eq!(via_index.num_rows(), 5); // 0->1, 1->0, 2x2 for key 2
    }

    #[test]
    fn index_join_applies_inner_filters() {
        let outer = Chunk::from_base_table(0, table(&[2]));
        let inner = table(&[2, 2, 2]);
        let idx = SortedIndex::build(&inner, 0).unwrap();
        let keys = vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
        // Filter keeps no inner rows (k < 0): no matches survive.
        let filters = vec![CompiledFilter::Cmp {
            column: ColumnRef::new(1, 0),
            op: CmpOp::Lt,
            value: Value::Int(0),
        }];
        let mut m = ExecMetrics::default();
        let mut io = crate::buffer::PageIo::unbuffered();
        let out = index_nested_loop_join(&outer, 1, &inner, &idx, &filters, &keys, &mut m, &mut io)
            .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn index_join_requires_a_key() {
        let outer = Chunk::from_base_table(0, table(&[1]));
        let inner = table(&[1]);
        let idx = SortedIndex::build(&inner, 0).unwrap();
        let mut m = ExecMetrics::default();
        let mut io = crate::buffer::PageIo::unbuffered();
        assert!(matches!(
            index_nested_loop_join(&outer, 1, &inner, &idx, &[], &[], &mut m, &mut io),
            Err(ExecError::InvalidPlan(_))
        ));
    }

    #[test]
    fn probe_cost_is_logarithmic_not_linear() {
        // 10k-entry index, 10 probes: far fewer comparisons than 100k.
        let inner = table(&(0..10_000).collect::<Vec<i64>>());
        let idx = SortedIndex::build(&inner, 0).unwrap();
        let outer = Chunk::from_base_table(0, table(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]));
        let keys = vec![(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
        let mut m = ExecMetrics::default();
        let mut io = crate::buffer::PageIo::unbuffered();
        index_nested_loop_join(&outer, 1, &inner, &idx, &[], &keys, &mut m, &mut io).unwrap();
        assert!(m.comparisons < 1000, "comparisons {}", m.comparisons);
    }
}
