//! Property tests for the call-graph builder: for generated workspaces of
//! free functions and methods with a known set of calls, the graph must
//! contain **exactly** the generated edges — nothing missing, and no
//! false edges from decoy call syntax buried in raw strings, comments, or
//! `cfg(test)` code. The no-false-edge half is the load-bearing one: the
//! lock-order pass turns edges into deadlock verdicts, so an invented
//! edge is an invented bug report.

use std::collections::BTreeSet;

use proptest::collection;
use proptest::prelude::*;

use els_lint::callgraph::CallGraph;
use els_lint::source::SourceFile;
use els_lint::symbols::{ParsedFile, SymbolTable};

/// A callable in the generated workspace: free fn `f{i}` or method
/// `T{i}::m{i}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Callable {
    idx: usize,
    method: bool,
}

impl Callable {
    fn qualified(self) -> String {
        if self.method {
            format!("T{}::m{}", self.idx, self.idx)
        } else {
            format!("f{}", self.idx)
        }
    }

    /// The call expression a body uses to invoke this callable.
    fn call_expr(self) -> String {
        if self.method {
            format!("T{}::m{}();", self.idx, self.idx)
        } else {
            format!("f{}();", self.idx)
        }
    }
}

/// Every call spelling, hidden where the lexer must not see code: if any
/// of these produced an edge, the graph would be inventing calls.
fn decoy_lines(n: usize) -> String {
    let all_calls: String = (0..n).map(|i| format!("f{i}(); T{i}::m{i}(); ")).collect();
    format!(
        "        let _raw = r#\"{all_calls}\"#;\n\
         \x20       /* {all_calls} */\n\
         \x20       // {all_calls}\n\
         \x20       let _s = \"{all_calls}\";\n"
    )
}

/// Render the generated workspace into one or two files of one crate.
fn render(n: usize, calls: &BTreeSet<(Callable, Callable)>, split: bool) -> Vec<ParsedFile> {
    let body = |caller: Callable| -> String {
        let mut b = String::new();
        for (_, callee) in calls.iter().filter(|(c, _)| *c == caller) {
            b.push_str(&format!("        {}\n", callee.call_expr()));
        }
        b.push_str(&decoy_lines(n));
        b
    };
    let mut texts = vec![String::new(), String::new()];
    for i in 0..n {
        let file = if split { i % 2 } else { 0 };
        texts[file].push_str(&format!(
            "pub fn f{i}() {{\n{}}}\n",
            body(Callable { idx: i, method: false })
        ));
        texts[file].push_str(&format!(
            "impl T{i} {{\n    pub fn m{i}() {{\n{}    }}\n}}\n",
            body(Callable { idx: i, method: true })
        ));
    }
    // A cfg(test) module calling everything: masked code, so no edges.
    let test_mod: String = format!(
        "#[cfg(test)]\nmod tests {{\n    fn t() {{\n{}    }}\n}}\n",
        (0..n).map(|i| format!("        f{i}(); T{i}::m{i}();\n")).collect::<String>()
    );
    texts[0].push_str(&test_mod);
    texts
        .into_iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(i, t)| {
            ParsedFile::new("els-core", SourceFile::parse(&format!("crates/core/src/g{i}.rs"), &t))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn the_graph_holds_exactly_the_generated_edges(
        n in 1usize..6,
        call_seed in collection::vec((0usize..12, proptest::bool::ANY, 0usize..12, proptest::bool::ANY), 0..24),
        split in proptest::bool::ANY,
    ) {
        let calls: BTreeSet<(Callable, Callable)> = call_seed
            .iter()
            .map(|&(a, am, b, bm)| {
                (Callable { idx: a % n, method: am }, Callable { idx: b % n, method: bm })
            })
            .collect();

        let files = render(n, &calls, split);
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);

        let got: BTreeSet<(String, String)> = graph
            .calls
            .iter()
            .map(|c| (table.fns[c.caller].qualified(), table.fns[c.callee].qualified()))
            .collect();
        let expected: BTreeSet<(String, String)> =
            calls.iter().map(|(a, b)| (a.qualified(), b.qualified())).collect();

        prop_assert_eq!(
            &got, &expected,
            "false edges: {:?}; missed edges: {:?}",
            got.difference(&expected).collect::<Vec<_>>(),
            expected.difference(&got).collect::<Vec<_>>()
        );
    }

    #[test]
    fn decoy_only_files_produce_no_symbols_and_no_edges(
        n in 1usize..6,
    ) {
        // A file that is nothing but decoys: no fn defs outside strings,
        // comments, and cfg(test) — so no symbols and no edges at all.
        let text = format!(
            "const DOC: &str = r#\"fn ghost() {{ f0(); }}\"#;\n\
             /* fn phantom() {{ T0::m0(); }} */\n\
             #[cfg(test)]\nmod tests {{\n    fn t() {{\n{}    }}\n}}\n",
            (0..n).map(|i| format!("        f{i}();\n")).collect::<String>()
        );
        let files = vec![ParsedFile::new(
            "els-core",
            SourceFile::parse("crates/core/src/decoy.rs", &text),
        )];
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);
        prop_assert_eq!(table.fns.len(), 0, "no fn may be seen: {:?}", table.fns);
        prop_assert_eq!(graph.calls.len(), 0);
    }
}
