//! The front door proper: configuration, shared state, and the
//! per-connection protocol loop.
//!
//! Thread *creation* lives in [`crate::pool`] (the workspace's second
//! allowlisted parallelism seam); this module is the pure logic those
//! threads run, so every admission/shed/error path here is testable
//! without sockets or against a loopback listener.
//!
//! ## Load shedding
//!
//! Two pressure valves, engaged in order:
//!
//! 1. **Backpressure / rejection** — an accepted connection must win a
//!    slot in the bounded [`AdmissionQueue`] before any worker reads a
//!    byte from it. A full queue means the client gets one clean
//!    `ERR overloaded` line and a close: never an unbounded buffer,
//!    never a hang.
//! 2. **Degraded service** — while the queue depth is at or above the
//!    shed watermark, connection handlers serve **cached plans only**
//!    ([`els::engine::Engine::execute_if_cached`]): a hit costs no
//!    binding/estimation/enumeration work, a miss is refused with
//!    `ERR shed`. Optimizer CPU is the first thing sacrificed under
//!    load, matching the graceful-degradation shape the estimation
//!    literature argues for under drift.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use els::engine::QueryResult;
use els_exec::{MetricsRegistry, ServerCounters, ServerCountersSnapshot};

use crate::admission::AdmissionQueue;
use crate::error::{ServerError, ServerResult};
use crate::protocol::{err_line, ok_header, parse_hello, row_line, MAX_LINE_BYTES};
use crate::tenant::Tenants;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed worker-pool size; each worker owns one connection at a time.
    pub workers: usize,
    /// Capacity of the admission queue (waiting connections beyond the
    /// ones workers are serving). The hard backpressure bound.
    pub queue_depth: usize,
    /// Queue depth at which handlers flip to cached-plan-only mode.
    pub shed_watermark: usize,
    /// Poll cadence for blocking reads and queue pops; bounds how long a
    /// shutdown can take and how often idle workers re-check the flag.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            shed_watermark: 8,
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl ServerConfig {
    /// Clamp degenerate settings instead of failing: at least one worker,
    /// one queue slot, and a watermark no higher than the queue depth
    /// (otherwise shed mode could never engage).
    pub fn normalized(mut self) -> ServerConfig {
        self.workers = self.workers.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self.shed_watermark = self.shed_watermark.clamp(1, self.queue_depth);
        if self.poll_interval.is_zero() {
            self.poll_interval = Duration::from_millis(25);
        }
        self
    }
}

/// State shared by the acceptor, the workers, and the handle.
pub(crate) struct Shared {
    pub(crate) tenants: Tenants,
    pub(crate) queue: AdmissionQueue<TcpStream>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) counters: ServerCounters,
    pub(crate) config: ServerConfig,
}

impl Shared {
    pub(crate) fn new(tenants: Tenants, config: ServerConfig) -> Shared {
        let config = config.normalized();
        Shared {
            tenants,
            queue: AdmissionQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            counters: ServerCounters::default(),
            config,
        }
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Bump a counter on this server *and* its mirror in the process-wide
    /// [`MetricsRegistry`] JSON (same double-entry pattern as the plan
    /// cache's `EngineCounters`).
    pub(crate) fn bump(&self, which: impl Fn(&ServerCounters) -> &AtomicU64) {
        which(&self.counters).fetch_add(1, Ordering::SeqCst);
        which(MetricsRegistry::global().server_counters()).fetch_add(1, Ordering::SeqCst);
    }

    /// Point-in-time counters for this server instance.
    pub(crate) fn snapshot(&self) -> ServerCountersSnapshot {
        self.counters.snapshot()
    }
}

/// Reject an admission-refused connection with one typed line. Best
/// effort: the write gets a short timeout so a dead client cannot stall
/// the acceptor, and a failed write changes nothing — the connection was
/// being dropped anyway.
pub(crate) fn reject_overloaded(stream: TcpStream, shared: &Shared) {
    shared.bump(|c| &c.rejected);
    let _ = stream.set_write_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut stream = stream;
    let _ = writeln!(stream, "{}", err_line(&ServerError::Overloaded));
    let _ = stream.flush();
    // Drain whatever the client already sent (typically its HELLO) before
    // closing: dropping a socket with unread input turns the close into a
    // TCP reset, which can discard the rejection line before the client
    // reads it. One bounded read keeps the close graceful.
    let mut sink = [0u8; 512];
    let _ = std::io::Read::read(&mut stream, &mut sink);
}

/// Read one `\n`-terminated line, polling so shutdown is honored.
///
/// `Ok(None)` is a clean EOF (client closed). Partial data consumed
/// before a poll timeout survives in `buf` across retries — `read_until`
/// appends what it consumed before returning the timeout error — so slow
/// writers are reassembled, not corrupted.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
    buf: &mut Vec<u8>,
) -> ServerResult<Option<String>> {
    buf.clear();
    loop {
        if shared.shutting_down() {
            return Ok(None);
        }
        match reader.read_until(b'\n', buf) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => {
                // EOF mid-line: treat the remainder as the final line.
                return Ok(Some(String::from_utf8_lossy(buf).trim_end().to_string()));
            }
            Ok(_) if buf.last() == Some(&b'\n') => {
                return Ok(Some(String::from_utf8_lossy(buf).trim_end().to_string()));
            }
            Ok(_) => {} // consumed bytes but no delimiter yet; keep reading
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServerError::Io(e.to_string())),
        }
        if buf.len() > MAX_LINE_BYTES {
            return Err(ServerError::Protocol(format!("line exceeds {MAX_LINE_BYTES} bytes")));
        }
    }
}

/// Write a full query result; any error here means the client went away
/// mid-result, which the caller treats as a disconnect (not a server
/// failure).
fn write_result(writer: &mut TcpStream, result: &QueryResult) -> std::io::Result<()> {
    writeln!(
        writer,
        "{}",
        ok_header(result.rows.num_rows() as u64, result.count, result.cache_hit)
    )?;
    for i in 0..result.rows.num_rows() {
        match result.rows.row(i) {
            Ok(values) => writeln!(writer, "{}", row_line(&values))?,
            // Structurally impossible (i < num_rows), but never panic a
            // serving thread over it: end the result cleanly.
            Err(_) => break,
        }
    }
    writeln!(writer, ".")?;
    writer.flush()
}

/// Serve one admitted connection to completion: handshake, then a
/// query-per-line loop until QUIT, EOF, shutdown, or a transport error.
pub(crate) fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = Vec::new();

    // Handshake: first line must be `HELLO <tenant>` for a hosted tenant.
    let engine = match read_line(&mut reader, shared, &mut buf) {
        Ok(Some(line)) => match parse_hello(&line) {
            Some(name) => match shared.tenants.resolve(name) {
                Some(engine) => engine,
                None => {
                    let e = ServerError::UnknownTenant(name.to_string());
                    let _ = writeln!(writer, "{}", err_line(&e));
                    let _ = writer.flush();
                    return;
                }
            },
            None => {
                let e = ServerError::Protocol(format!("expected HELLO <tenant>, got `{line}`"));
                let _ = writeln!(writer, "{}", err_line(&e));
                let _ = writer.flush();
                return;
            }
        },
        Ok(None) => return,
        Err(e) => {
            let _ = writeln!(writer, "{}", err_line(&e));
            let _ = writer.flush();
            return;
        }
    };
    shared.bump(|c| &c.connections);
    if writeln!(writer, "READY").and_then(|()| writer.flush()).is_err() {
        return;
    }

    // Query loop. Engine/shed errors answer on the open connection;
    // transport errors end it.
    loop {
        let sql = match read_line(&mut reader, shared, &mut buf) {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(e) => {
                let _ = writeln!(writer, "{}", err_line(&e));
                let _ = writer.flush();
                return;
            }
        };
        if sql.is_empty() {
            continue;
        }
        if sql == "QUIT" {
            let _ = writeln!(writer, "BYE");
            let _ = writer.flush();
            return;
        }
        let shed_mode = shared.queue.depth() >= shared.config.shed_watermark;
        let outcome: ServerResult<QueryResult> = if shed_mode {
            match engine.execute_if_cached(&sql) {
                Ok(Some(result)) => Ok(result),
                Ok(None) => Err(ServerError::Shed),
                Err(e) => Err(ServerError::Engine(e)),
            }
        } else {
            engine.execute(&sql).map_err(ServerError::Engine)
        };
        match outcome {
            Ok(result) => {
                shared.bump(|c| &c.queries_ok);
                if write_result(&mut writer, &result).is_err() {
                    return; // client went away mid-result
                }
            }
            Err(e) => {
                match e {
                    ServerError::Shed => shared.bump(|c| &c.shed),
                    _ => shared.bump(|c| &c.queries_err),
                }
                if writeln!(writer, "{}", err_line(&e)).and_then(|()| writer.flush()).is_err() {
                    return;
                }
            }
        }
    }
}
