//! Per-tenant namespaces over one process.
//!
//! A tenant is a name bound at `HELLO` time to its own [`Engine`]: its own
//! [`els_catalog::SharedCatalog`] (tenant A literally has no handle to
//! B's tables) and its own plan-cache *lane*. The engines share one
//! [`PlanCache`] budget — eviction pressure is global, as in a real
//! multi-tenant box — but every cache key is salted with the tenant's
//! lane through [`els::optimizer::OptimizerOptions::config_fingerprint`],
//! so byte-identical SQL from two tenants can never replay each other's
//! plans. Isolation is therefore structural (separate catalogs) plus
//! cryptographic-by-keying (lanes), not filtering.

use std::collections::BTreeMap;
use std::sync::Arc;

use els::engine::Engine;
use els_optimizer::PlanCache;

use crate::error::{ServerError, ServerResult};

/// A tenant name: non-empty ASCII alphanumerics plus `-`/`_`. Rejecting
/// everything else keeps names unambiguous on the line protocol.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// The immutable tenant registry a server is constructed with.
pub struct Tenants {
    engines: BTreeMap<String, Arc<Engine>>,
}

impl Tenants {
    /// An empty registry.
    pub fn new() -> Tenants {
        Tenants { engines: BTreeMap::new() }
    }

    /// Register `name` with an engine the caller configured. Returns a
    /// typed error on invalid or duplicate names.
    pub fn add(mut self, name: &str, engine: Arc<Engine>) -> ServerResult<Tenants> {
        if !valid_tenant_name(name) {
            return Err(ServerError::Protocol(format!("invalid tenant name `{name}`")));
        }
        if self.engines.contains_key(name) {
            return Err(ServerError::Protocol(format!("duplicate tenant `{name}`")));
        }
        self.engines.insert(name.to_string(), engine);
        Ok(self)
    }

    /// Build a lane-isolated registry: one shared plan cache of
    /// `cache_capacity` entries, one engine per name, each in its own
    /// lane (1-based, in name order). This is the standard multi-tenant
    /// shape; callers register tables per tenant via [`Tenants::resolve`].
    pub fn isolated(names: &[&str], cache_capacity: usize) -> ServerResult<Tenants> {
        let cache = Arc::new(PlanCache::new(cache_capacity));
        let mut tenants = Tenants::new();
        for (i, name) in names.iter().enumerate() {
            let engine = Engine::new().shared_cache(Arc::clone(&cache)).plan_lane(i as u64 + 1);
            tenants = tenants.add(name, Arc::new(engine))?;
        }
        Ok(tenants)
    }

    /// The engine serving `name`, if hosted here.
    pub fn resolve(&self, name: &str) -> Option<Arc<Engine>> {
        self.engines.get(name).map(Arc::clone)
    }

    /// Hosted tenant names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.engines.keys().map(String::as_str).collect()
    }

    /// Number of hosted tenants.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl Default for Tenants {
    fn default() -> Self {
        Tenants::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

    #[test]
    fn names_are_validated_and_deduplicated() {
        assert!(valid_tenant_name("acme-1_x"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("has space"));
        assert!(!valid_tenant_name("evil\ttenant"));
        let t = Tenants::new().add("a", Arc::new(Engine::new())).expect("first");
        assert!(t.add("a", Arc::new(Engine::new())).is_err(), "duplicate must fail");
    }

    #[test]
    fn isolated_tenants_have_disjoint_catalogs_and_lanes() {
        let tenants = Tenants::isolated(&["alpha", "beta"], 32).expect("build");
        assert_eq!(tenants.names(), vec!["alpha", "beta"]);
        let alpha = tenants.resolve("alpha").expect("alpha");
        let beta = tenants.resolve("beta").expect("beta");
        assert!(tenants.resolve("gamma").is_none());
        // Distinct lanes -> distinct fingerprints for identical options.
        assert_ne!(
            alpha.options().config_fingerprint(),
            beta.options().config_fingerprint(),
            "tenant lanes must salt the plan-cache key"
        );
        // Disjoint catalogs: alpha's table does not exist for beta.
        alpha
            .generate(
                TableSpec::new("private", 10)
                    .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
                1,
            )
            .expect("register");
        assert_eq!(alpha.execute("SELECT COUNT(*) FROM private").expect("alpha sees it").count, 10);
        assert!(beta.execute("SELECT COUNT(*) FROM private").is_err(), "beta must not");
    }
}
