//! **F9** — q-error distributions across random workload families.
//!
//! The modern yardstick for cardinality estimation: the q-error
//! `max(est/true, true/est)` of the final join size, measured over random
//! chain and star workloads (truth by execution), per estimation
//! algorithm. This places the paper's 1994 contribution on the axis used
//! by today's learned-estimator literature.
//!
//! Expected shape: on uniform (model-exact) workloads ELS sits at q ≈ 1 up
//! to small rounding, SS is biased low with q growing in the join count,
//! and M is catastrophic; under Zipf skew every model-based estimator
//! degrades (the paper's stated future work), but their *ordering* is
//! preserved.

use els_bench::workload::{generate, q_error, quantile, Shape, WorkloadSpec};
use els_exec::execute_plan;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};

fn family(label: &str, spec: &WorkloadSpec, trials: u64) {
    let presets = [EstimatorPreset::Sm, EstimatorPreset::Sss, EstimatorPreset::Els];
    let mut qs: Vec<Vec<f64>> = vec![Vec::new(); presets.len()];
    for seed in 0..trials {
        let inst = generate(spec, seed);
        let tables = bound_query_tables(&inst.bound, &inst.catalog).unwrap();
        // Ground truth: execute once (any plan computes the same count).
        let reference =
            optimize_bound(&inst.bound, &inst.catalog, &OptimizerOptions::default()).unwrap();
        let truth = execute_plan(&reference.plan, &tables).unwrap().count as f64;
        for (slot, preset) in presets.iter().enumerate() {
            let optimized =
                optimize_bound(&inst.bound, &inst.catalog, &OptimizerOptions::preset(*preset))
                    .unwrap();
            let estimate = optimized.estimated_sizes.last().copied().unwrap_or(truth);
            qs[slot].push(q_error(estimate, truth));
        }
    }
    for (slot, preset) in presets.iter().enumerate() {
        qs[slot].sort_by(f64::total_cmp);
        println!(
            "| {:<22} | {:<13} | {:>9.2} | {:>9.2} | {:>11.2e} | {:>11.2e} |",
            label,
            preset.label(),
            quantile(&qs[slot], 0.5),
            quantile(&qs[slot], 0.9),
            quantile(&qs[slot], 0.99),
            quantile(&qs[slot], 1.0),
        );
    }
}

fn main() {
    const TRIALS: u64 = 60;
    println!("# F9 — q-error of the final join-size estimate ({TRIALS} random instances/family)");
    println!("(q = max(est/true, true/est); 1.0 is perfect)\n");
    println!(
        "| {:<22} | {:<13} | {:>9} | {:>9} | {:>11} | {:>11} |",
        "family", "estimator", "median", "p90", "p99", "max"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(24),
        "-".repeat(15),
        "-".repeat(11),
        "-".repeat(11),
        "-".repeat(13),
        "-".repeat(13)
    );
    family("chain-3 uniform", &WorkloadSpec::default(), TRIALS);
    family("chain-5 uniform", &WorkloadSpec { tables: 5, ..Default::default() }, TRIALS);
    family(
        "star-4 uniform",
        &WorkloadSpec { tables: 4, shape: Shape::Star, ..Default::default() },
        TRIALS,
    );
    family("chain-3 zipf(1.0)", &WorkloadSpec { theta: 1.0, ..Default::default() }, TRIALS);
    family(
        "star-4 zipf(1.0)",
        &WorkloadSpec { tables: 4, shape: Shape::Star, theta: 1.0, ..Default::default() },
        TRIALS,
    );
}
