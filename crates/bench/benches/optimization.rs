//! **B3** — optimizer cost: full dynamic-programming enumeration (join
//! order + method selection) over chain queries of growing size, under the
//! ELS and SM estimators. Measures what the paper's "modified Starburst
//! optimizer" pays per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use els_bench::{chain_predicates, chain_statistics};
use els_exec::plan::PlanOutput;
use els_optimizer::{optimize, EstimatorPreset, OptimizerOptions, TableProfile};
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp_enumeration");
    for n in [4usize, 6, 8, 10] {
        let dims: Vec<(f64, f64)> =
            (0..n).map(|i| (((i + 2) * 1000) as f64, ((i + 1) * 100) as f64)).collect();
        let stats = chain_statistics(&dims);
        let preds = chain_predicates(n);
        let profiles: Vec<TableProfile> =
            dims.iter().map(|&(rows, _)| TableProfile::synthetic(rows, 16)).collect();
        for preset in [EstimatorPreset::Els, EstimatorPreset::Sm] {
            g.bench_with_input(
                BenchmarkId::new(preset.label().replace(' ', "_"), n),
                &n,
                |b, _| {
                    let options = OptimizerOptions::preset(preset);
                    b.iter(|| {
                        optimize(
                            black_box(&preds),
                            black_box(&stats),
                            black_box(&profiles),
                            PlanOutput::CountStar,
                            &options,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    use els_core::{Els, ElsOptions};
    use els_exec::JoinMethod;
    use els_optimizer::heuristic::{greedy_order, iterative_improvement};
    use els_optimizer::CostParams;

    let mut g = c.benchmark_group("heuristic_ordering");
    for n in [8usize, 16, 24] {
        let dims: Vec<(f64, f64)> =
            (0..n).map(|i| (((i + 2) * 1000) as f64, ((i + 1) * 100) as f64)).collect();
        let stats = chain_statistics(&dims);
        let preds = chain_predicates(n);
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        let profiles: Vec<TableProfile> =
            dims.iter().map(|&(rows, _)| TableProfile::synthetic(rows, 16)).collect();
        let methods = [JoinMethod::NestedLoop, JoinMethod::SortMerge];
        g.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| greedy_order(&els, &profiles, &methods, &CostParams::default()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("iterative_improvement", n), &n, |b, _| {
            b.iter(|| {
                iterative_improvement(&els, &profiles, &methods, &CostParams::default(), 2, 7)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_enumeration, bench_heuristics
}
criterion_main!(benches);
