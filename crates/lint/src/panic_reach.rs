//! Panic-reachability: which panic sites can a public entry point reach?
//!
//! The per-file `panic-freedom` lint bans the loud aborts (`unwrap`,
//! `panic!`) outright, but deliberately leaves `assert!` and slice
//! indexing legal outside els-core — kernels index tight loops by design.
//! This pass closes the gap *inter-procedurally*: it collects every
//! remaining panic site in the workspace, walks the call graph forward
//! from the engine's public entry points, and reports each site a query
//! can actually reach, together with the shortest call path that reaches
//! it. Findings are ratcheted per file in `lint-baseline.json`, so the
//! reachable-panic surface can only shrink.
//!
//! Known blind spots, shared with the call graph it rides on: closures and
//! function values passed as arguments (`scheduler::run_tasks(task)`),
//! trait-object dispatch, and turbofish calls produce no edges, so sites
//! behind them are missed, not misattributed. Integer overflow and
//! division are out of scope — they are compiled to wrapping/trapping code
//! the token stream cannot distinguish.

use std::collections::VecDeque;

use crate::callgraph::CallGraph;
use crate::lexer::TokenKind;
use crate::passes::{Lint, Violation, NON_INDEX_KEYWORDS};
use crate::symbols::{ParsedFile, SymbolTable};
use crate::HardError;

/// The engine's public entry points: `(file, owner, fn name)`. Everything
/// a client can invoke funnels through these. Renaming or moving one must
/// update this list — the pass hard-fails if an entry fails to resolve,
/// so the list cannot silently rot.
pub const ENTRY_POINTS: &[(&str, Option<&str>, &str)] = &[
    ("src/engine.rs", Some("Database"), "execute"),
    ("src/engine.rs", Some("Database"), "explain_analyze"),
    ("src/engine.rs", Some("Engine"), "execute"),
    ("src/engine.rs", Some("Engine"), "execute_if_cached"),
    ("src/engine.rs", Some("Engine"), "explain_analyze"),
    ("crates/server/src/server.rs", None, "serve_connection"),
];

/// Macros that abort when they fire (`debug_assert*` excluded: it is
/// compiled out of release builds, the configuration the engine ships).
const PANIC_MACROS: &[&str] =
    &["panic", "todo", "unimplemented", "unreachable", "assert", "assert_eq", "assert_ne"];

/// One reachable panic site with its shortest witness path, for the JSON
/// report.
#[derive(Debug, Clone)]
pub struct PanicPath {
    /// File holding the panic site.
    pub file: String,
    /// 1-based line / column of the site.
    pub line: u32,
    /// Column.
    pub col: u32,
    /// What panics there (`` `assert!` ``, `` slice index ``, ...).
    pub what: String,
    /// Qualified fn names from the entry point to the enclosing function.
    pub path: Vec<String>,
}

struct Site {
    fn_id: usize,
    file: String,
    line: u32,
    col: u32,
    what: String,
}

/// Run the pass: collect sites, BFS from the entry points, report every
/// reachable site. Returns the witness paths for the JSON report.
pub fn run(
    files: &[ParsedFile],
    table: &SymbolTable,
    graph: &CallGraph,
    violations: &mut Vec<Violation>,
    hard_errors: &mut Vec<HardError>,
) -> Vec<PanicPath> {
    let sites = collect_sites(files, table);

    // Resolve entry points; a miss is a hard error so refactors keep the
    // list honest.
    let mut entries = Vec::new();
    for &(file, owner, name) in ENTRY_POINTS {
        let found = table
            .defs_named(name)
            .iter()
            .copied()
            .find(|&i| table.fns[i].file == file && table.fns[i].owner.as_deref() == owner);
        match found {
            Some(i) => entries.push(i),
            None => hard_errors.push(HardError {
                file: file.to_string(),
                line: 0,
                message: format!(
                    "panic-reachability entry point `{}{name}` not found in {file}; \
                     update ENTRY_POINTS in crates/lint/src/panic_reach.rs",
                    owner.map(|o| format!("{o}::")).unwrap_or_default()
                ),
            }),
        }
    }

    // Multi-source BFS with parent pointers: parent[f] is the fn we first
    // reached f from, giving the shortest entry-to-f call path.
    let mut parent: Vec<Option<usize>> = vec![None; table.fns.len()];
    let mut visited: Vec<bool> = vec![false; table.fns.len()];
    let mut queue = VecDeque::new();
    for &e in &entries {
        if !visited[e] {
            visited[e] = true;
            queue.push_back(e);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &g in &graph.callees[f] {
            if !visited[g] {
                visited[g] = true;
                parent[g] = Some(f);
                queue.push_back(g);
            }
        }
    }

    let mut paths = Vec::new();
    for site in sites {
        if !visited[site.fn_id] {
            continue;
        }
        let mut path = vec![table.fns[site.fn_id].qualified()];
        let mut at = site.fn_id;
        while let Some(p) = parent[at] {
            path.push(table.fns[p].qualified());
            at = p;
        }
        path.reverse();
        violations.push(Violation {
            lint: Lint::PanicReachability,
            file: site.file.clone(),
            line: site.line,
            col: site.col,
            message: format!(
                "{} reachable from public entry `{}` via {}",
                site.what,
                path.first().map(String::as_str).unwrap_or("?"),
                path.join(" -> ")
            ),
            suppressed: false,
        });
        paths.push(PanicPath {
            file: site.file,
            line: site.line,
            col: site.col,
            what: site.what,
            path,
        });
    }
    paths
}

/// Every panic site inside a function body, workspace-wide.
fn collect_sites(files: &[ParsedFile], table: &SymbolTable) -> Vec<Site> {
    let mut sites = Vec::new();
    for (file_idx, pf) in files.iter().enumerate() {
        for ci in 0..pf.code.len() {
            let Some(fn_id) = table.fn_at[file_idx][ci] else { continue };
            let Some(tok) = pf.tok(ci) else { continue };
            let mut push = |what: String| {
                sites.push(Site {
                    fn_id,
                    file: pf.source.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    what,
                });
            };
            match tok.kind {
                TokenKind::Ident => {
                    let prev_dot = ci > 0 && pf.is_punct(ci - 1, '.');
                    if prev_dot
                        && matches!(tok.text.as_str(), "unwrap" | "expect")
                        && pf.is_punct(ci + 1, '(')
                    {
                        push(format!("`.{}()`", tok.text));
                    }
                    if !prev_dot
                        && PANIC_MACROS.contains(&tok.text.as_str())
                        && pf.is_punct(ci + 1, '!')
                    {
                        push(format!("`{}!`", tok.text));
                    }
                }
                TokenKind::Punct('[') if ci > 0 => {
                    let indexable = match pf.tok(ci - 1) {
                        Some(p) if p.kind == TokenKind::Ident => {
                            !NON_INDEX_KEYWORDS.contains(&p.text.as_str())
                        }
                        Some(p) => matches!(p.kind, TokenKind::Punct(')') | TokenKind::Punct(']')),
                        None => false,
                    };
                    if indexable {
                        push("slice index".to_string());
                    }
                }
                _ => {}
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run_on(srcs: &[(&str, &str, &str)]) -> (Vec<Violation>, Vec<PanicPath>, Vec<HardError>) {
        let files: Vec<ParsedFile> =
            srcs.iter().map(|(k, p, s)| ParsedFile::new(k, SourceFile::parse(p, s))).collect();
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);
        let (mut violations, mut hard) = (Vec::new(), Vec::new());
        let paths = run(&files, &table, &graph, &mut violations, &mut hard);
        (violations, paths, hard)
    }

    // A minimal workspace whose entry points exist so the pass can run.
    fn with_entries(extra: &str) -> Vec<(String, String, String)> {
        let engine = "impl Database { pub fn execute(&self) { step1(); } \
                      pub fn explain_analyze(&self) {} }\n\
                      impl Engine { pub fn execute(&self) {} \
                      pub fn execute_if_cached(&self) {} pub fn explain_analyze(&self) {} }"
            .to_string();
        let server = "pub(crate) fn serve_connection() {}".to_string();
        vec![
            ("els".to_string(), "src/engine.rs".to_string(), engine),
            ("els-server".to_string(), "crates/server/src/server.rs".to_string(), server),
            ("els-core".to_string(), "crates/core/src/x.rs".to_string(), extra.to_string()),
        ]
    }

    fn run_with_entries(extra: &str) -> (Vec<Violation>, Vec<PanicPath>, Vec<HardError>) {
        let owned = with_entries(extra);
        let srcs: Vec<(&str, &str, &str)> =
            owned.iter().map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str())).collect();
        run_on(&srcs)
    }

    #[test]
    fn reachable_assert_is_reported_with_its_shortest_path() {
        let (violations, paths, hard) =
            run_with_entries("pub fn step1() { step2(); }\npub fn step2() { assert!(true); }");
        assert_eq!(hard, vec![]);
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.lint, Lint::PanicReachability);
        assert_eq!(v.file, "crates/core/src/x.rs");
        assert!(v.message.contains("Database::execute -> step1 -> step2"), "{}", v.message);
        assert_eq!(paths[0].path, vec!["Database::execute", "step1", "step2"]);
    }

    #[test]
    fn unreachable_sites_are_silent() {
        let (violations, _, hard) =
            run_with_entries("pub fn orphan() { x.unwrap(); v[i]; panic!(\"boom\"); }");
        assert_eq!(hard, vec![]);
        assert_eq!(violations, vec![]);
    }

    #[test]
    fn debug_assert_is_not_a_panic_source() {
        let (violations, _, _) =
            run_with_entries("pub fn step1() { debug_assert!(true); debug_assert_eq!(1, 1); }");
        assert_eq!(violations, vec![]);
    }

    #[test]
    fn slice_index_counts_as_a_source_workspace_wide() {
        let (violations, _, _) =
            run_with_entries("pub fn step1(v: &[u32], i: usize) -> u32 { v[i] }");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("slice index"));
    }

    #[test]
    fn missing_entry_point_is_a_hard_error() {
        let (_, _, hard) = run_on(&[("els", "src/engine.rs", "fn nothing_here() {}")]);
        assert!(!hard.is_empty());
        assert!(hard[0].message.contains("entry point"));
    }
}
