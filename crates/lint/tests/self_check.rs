//! The linter must hold on the workspace that ships it: zero hard errors,
//! zero violations beyond the committed ratchet baseline. This is the same
//! gate `scripts/check.sh` runs, kept here so `cargo test` alone catches a
//! regression (a new unwrap, a stray println!, an unjustified suppression)
//! without the shell harness.

use std::path::Path;

use els_lint::{per_lint_summary, run};

fn workspace_root() -> &'static Path {
    // crates/lint/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_passes_its_own_lints() {
    let outcome = run(workspace_root()).expect("lint run must not fail to read the tree");
    assert!(
        outcome.hard_errors.is_empty(),
        "hard errors (malformed or unused suppressions): {:#?}",
        outcome.hard_errors
    );
    assert!(
        outcome.new_violations.is_empty(),
        "violations beyond lint-baseline.json: {:#?}",
        outcome.new_violations
    );
    assert!(outcome.is_ok());
    // Sanity: the scan actually saw the engine, not an empty directory.
    assert!(outcome.files_scanned > 30, "only {} files scanned", outcome.files_scanned);
}

#[test]
fn ratchet_only_tightens() {
    // The committed baseline may only ever shrink: if a file got cleaner
    // than its baselined count, the baseline must be re-ratcheted down
    // (ELS_LINT_BASELINE_UPDATE=1 cargo run -p els-lint -- --baseline-update)
    // so the slack cannot be spent on new violations elsewhere in the file.
    let outcome = run(workspace_root()).expect("lint run must not fail to read the tree");
    let current = els_lint::count_unsuppressed(&outcome.violations);
    for (lint, files) in &outcome.baseline {
        for (file, &allowed) in files {
            let now = current.get(lint).and_then(|m| m.get(file)).copied().unwrap_or(0);
            assert!(
                now >= allowed,
                "{file} is below its `{lint}` baseline ({now} < {allowed}); \
                 re-ratchet the baseline down"
            );
        }
    }
    // And the per-lint totals the report prints agree with the raw data.
    for (lint, (cur, baselined, _suppressed)) in per_lint_summary(&outcome) {
        let raw: u64 = current.get(&lint).map(|m| m.values().sum()).unwrap_or(0);
        assert_eq!(cur, raw, "summary total for {lint} disagrees with violations");
        assert!(cur <= baselined, "{lint}: {cur} unsuppressed but only {baselined} baselined");
    }
}
