//! The page-based cost model.
//!
//! Costs are in abstract "page units": one sequential page read costs 1,
//! CPU work is charged in small fractions of a page. The formulas mirror
//! the executor's actual behaviour (`els-exec`):
//!
//! * **Filtered scan** — read all stored pages, evaluate filters per tuple.
//! * **Nested loops** (base inner) — the stored inner is rescanned, filters
//!   and all, once per *estimated* outer tuple. This is where cardinality
//!   estimates bite: an outer estimated at 4·10⁻⁸ tuples makes any inner
//!   look free.
//! * **Sort-merge** — scan the inner once, sort both (filtered) inputs at
//!   `n·log₂ n` comparisons, merge linearly.
//! * **Hash** — scan the inner once, build on the left, probe with the
//!   right.

use crate::profile::TableProfile;

/// Tunable cost constants. The defaults put one tuple of CPU work at 1% of
/// a page read and one comparison at 0.2% — the classic System-R flavour of
/// "I/O dominates, CPU tie-breaks".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of reading one page.
    pub page_cost: f64,
    /// CPU cost of processing one tuple (filter evaluation, emission).
    pub cpu_tuple_cost: f64,
    /// CPU cost of one key comparison (sorts, merges, NL key checks).
    pub cpu_cmp_cost: f64,
    /// CPU cost of one hash-table insert or probe.
    pub cpu_hash_cost: f64,
    /// Effective parallelism of the hash-join probe phase (≥ 1). The
    /// vectorized executor probes in morsels across worker threads, so the
    /// probe-side CPU term is divided by this factor; build, scan, and
    /// output costs stay serial. 1.0 (the default) models the serial
    /// executor exactly.
    pub probe_parallelism: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            page_cost: 1.0,
            cpu_tuple_cost: 0.01,
            cpu_cmp_cost: 0.002,
            cpu_hash_cost: 0.015,
            probe_parallelism: 1.0,
        }
    }
}

impl CostParams {
    /// Defaults with the hash-probe term divided by `workers` (clamped to
    /// ≥ 1) — the cost-model hook for the morsel-parallel executor.
    pub fn with_probe_parallelism(workers: usize) -> CostParams {
        CostParams { probe_parallelism: (workers.max(1)) as f64, ..CostParams::default() }
    }

    /// The probe divisor, defensively clamped (a zero or negative setting
    /// would flip cost comparisons).
    fn probe_div(&self) -> f64 {
        self.probe_parallelism.max(1.0)
    }

    /// Extra cost of the radix-partitioning passes when the parallel
    /// executor would partition this hash join. Consults
    /// [`els_exec::radix_partitions`] — the *same* decision function the
    /// executor runs — with `probe_parallelism` as the worker count, so
    /// plan costs track what execution will actually do. Both sides are
    /// rewritten once into partition buffers; the probe-side pass runs
    /// morsel-parallel, hence the probe divisor. Zero when the join would
    /// run unpartitioned.
    fn radix_overhead(&self, build_rows: f64, probe_rows: f64) -> f64 {
        let clamp = |v: f64| v.clamp(0.0, 1e12) as usize;
        let parts = els_exec::radix_partitions(
            clamp(build_rows),
            clamp(probe_rows),
            self.probe_div() as usize,
        );
        if parts > 1 {
            (build_rows.max(0.0) + probe_rows.max(0.0)) * self.cpu_tuple_cost / self.probe_div()
        } else {
            0.0
        }
    }
    /// Cost of a filtered scan of a stored table.
    pub fn scan(&self, profile: &TableProfile) -> f64 {
        profile.pages * self.page_cost + profile.rows * self.cpu_tuple_cost
    }

    /// Cost of a nested-loops join whose inner is the stored table
    /// `inner_profile`, rescanned (with filters) once per estimated outer
    /// tuple. The outer's own cost is not included.
    pub fn nested_loop(&self, outer_rows_est: f64, inner_profile: &TableProfile) -> f64 {
        let rescans = outer_rows_est.max(0.0);
        rescans * (inner_profile.pages * self.page_cost + inner_profile.rows * self.cpu_cmp_cost)
    }

    /// Cost of a sort-merge join: scan the stored inner, sort both filtered
    /// inputs, merge. `outer_rows_est` and `inner_rows_eff` are the
    /// estimated tuple counts that actually reach the sort.
    pub fn sort_merge(
        &self,
        outer_rows_est: f64,
        inner_profile: &TableProfile,
        inner_rows_eff: f64,
        output_rows_est: f64,
    ) -> f64 {
        let nlogn = |n: f64| if n > 1.0 { n * n.log2() } else { 0.0 };
        self.scan(inner_profile)
            + (nlogn(outer_rows_est) + nlogn(inner_rows_eff)) * self.cpu_cmp_cost
            + (outer_rows_est + inner_rows_eff) * self.cpu_tuple_cost
            + output_rows_est.max(0.0) * self.cpu_tuple_cost
    }

    /// Cost of a hash join: scan the stored inner, build on the outer,
    /// probe with the inner.
    pub fn hash(
        &self,
        outer_rows_est: f64,
        inner_profile: &TableProfile,
        inner_rows_eff: f64,
        output_rows_est: f64,
    ) -> f64 {
        self.scan(inner_profile)
            + outer_rows_est * self.cpu_hash_cost
            + inner_rows_eff * self.cpu_hash_cost / self.probe_div()
            + self.radix_overhead(outer_rows_est, inner_rows_eff)
            + output_rows_est.max(0.0) * self.cpu_tuple_cost
    }

    /// Cost of indexed nested loops over a stored inner: build the sorted
    /// index (scan + sort), then one logarithmic descent per estimated
    /// outer tuple plus the matching tuples.
    pub fn index_nested_loop(
        &self,
        outer_rows_est: f64,
        inner_profile: &TableProfile,
        output_rows_est: f64,
    ) -> f64 {
        let n = inner_profile.rows.max(2.0);
        let build = self.scan(inner_profile) + n * n.log2() * self.cpu_cmp_cost;
        let probes = outer_rows_est.max(0.0) * (n.log2() * self.cpu_cmp_cost + self.page_cost);
        build + probes + output_rows_est.max(0.0) * self.cpu_tuple_cost
    }

    /// Cost of a sort-based band join over a stored inner: scan the inner,
    /// sort both filtered inputs, then one logarithmic boundary search per
    /// outer tuple. Unlike sort-merge there is no linear co-walk — every
    /// outer tuple pays a binary search — and the (often enormous) band
    /// output is charged per emitted tuple.
    pub fn range_join(
        &self,
        outer_rows_est: f64,
        inner_profile: &TableProfile,
        inner_rows_eff: f64,
        output_rows_est: f64,
    ) -> f64 {
        self.scan(inner_profile)
            + self.range_join_cpu(outer_rows_est, inner_rows_eff, output_rows_est)
    }

    /// Band join over two intermediates: sorts + probes + emission, no
    /// inner scan (its production cost is charged by its subplan).
    pub fn range_join_intermediate(
        &self,
        outer_rows_est: f64,
        inner_rows: f64,
        output_rows_est: f64,
    ) -> f64 {
        self.range_join_cpu(outer_rows_est, inner_rows, output_rows_est)
    }

    /// Shared CPU term of the band join: two sorts, one `log₂ inner`
    /// boundary search per outer tuple, per-tuple emission.
    fn range_join_cpu(&self, outer_rows_est: f64, inner_rows: f64, output_rows_est: f64) -> f64 {
        let nlogn = |n: f64| if n > 1.0 { n * n.log2() } else { 0.0 };
        let probe_depth = if inner_rows > 2.0 { inner_rows.log2() } else { 1.0 };
        (nlogn(outer_rows_est) + nlogn(inner_rows)) * self.cpu_cmp_cost
            + outer_rows_est.max(0.0) * probe_depth * self.cpu_cmp_cost
            + (outer_rows_est.max(0.0) + inner_rows.max(0.0)) * self.cpu_tuple_cost
            + output_rows_est.max(0.0) * self.cpu_tuple_cost
    }

    /// Bushy variants: the inner is a *materialized intermediate* of
    /// `inner_rows` tuples and `inner_width` bytes per tuple (its own
    /// production cost is charged by its subplan). Nested loops rescans the
    /// materialization; sort-merge and hash only pay CPU.
    pub fn nested_loop_intermediate(
        &self,
        outer_rows_est: f64,
        inner_rows: f64,
        inner_width: usize,
    ) -> f64 {
        let pages = TableProfile::pages_for(inner_rows, inner_width);
        outer_rows_est.max(0.0) * (pages * self.page_cost + inner_rows * self.cpu_cmp_cost)
    }

    /// Sort-merge over two intermediates: sort both, merge, emit.
    pub fn sort_merge_intermediate(
        &self,
        outer_rows_est: f64,
        inner_rows: f64,
        output_rows_est: f64,
    ) -> f64 {
        let nlogn = |n: f64| if n > 1.0 { n * n.log2() } else { 0.0 };
        (nlogn(outer_rows_est) + nlogn(inner_rows)) * self.cpu_cmp_cost
            + (outer_rows_est + inner_rows) * self.cpu_tuple_cost
            + output_rows_est.max(0.0) * self.cpu_tuple_cost
    }

    /// Hash join over two intermediates: build + probe + emit.
    pub fn hash_intermediate(
        &self,
        outer_rows_est: f64,
        inner_rows: f64,
        output_rows_est: f64,
    ) -> f64 {
        outer_rows_est * self.cpu_hash_cost
            + inner_rows * self.cpu_hash_cost / self.probe_div()
            + self.radix_overhead(outer_rows_est, inner_rows)
            + output_rows_est.max(0.0) * self.cpu_tuple_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn giant() -> TableProfile {
        TableProfile::synthetic(100_000.0, 16)
    }

    #[test]
    fn scan_charges_pages_plus_cpu() {
        let p = CostParams::default();
        let t = TableProfile::synthetic(1000.0, 8);
        assert!((p.scan(&t) - (2.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn nested_loop_is_free_for_empty_outer_estimates() {
        // The underestimation failure mode: outer ~ 0 makes NL over a giant
        // inner look free.
        let p = CostParams::default();
        let tiny = p.nested_loop(4e-8, &giant());
        assert!(tiny < 1.0, "cost {tiny}");
        let honest = p.nested_loop(100.0, &giant());
        assert!(honest > 10_000.0, "cost {honest}");
    }

    #[test]
    fn sort_merge_beats_nl_for_honest_outer_over_giant_inner() {
        let p = CostParams::default();
        let sm = p.sort_merge(100.0, &giant(), 100.0, 100.0);
        let nl = p.nested_loop(100.0, &giant());
        assert!(sm < nl, "sm {sm} should beat nl {nl}");
    }

    #[test]
    fn nl_beats_sort_merge_for_tiny_honest_outer_and_tiny_inner() {
        // One outer tuple vs a small inner: rescanning once is cheaper than
        // scan + two sorts.
        let p = CostParams::default();
        let small = TableProfile::synthetic(100.0, 8);
        let nl = p.nested_loop(1.0, &small);
        let sm = p.sort_merge(1.0, &small, 100.0, 1.0);
        assert!(nl < sm, "nl {nl} should beat sm {sm}");
    }

    #[test]
    fn hash_is_cheap_on_big_equijoins() {
        let p = CostParams::default();
        let h = p.hash(10_000.0, &giant(), 100_000.0, 10_000.0);
        let sm = p.sort_merge(10_000.0, &giant(), 100_000.0, 10_000.0);
        assert!(h < sm, "hash {h} should beat sm {sm} at scale");
    }

    #[test]
    fn probe_parallelism_discounts_only_the_probe_side() {
        let serial = CostParams::default();
        let par = CostParams::with_probe_parallelism(4);
        assert_eq!(par.probe_parallelism, 4.0);
        // Probe side (inner) shrinks; a probe-free plan costs the same.
        let h_serial = serial.hash(1000.0, &giant(), 100_000.0, 10.0);
        let h_par = par.hash(1000.0, &giant(), 100_000.0, 10.0);
        assert!(h_par < h_serial, "parallel probe must be cheaper: {h_par} vs {h_serial}");
        let probe_cpu = 100_000.0 * serial.cpu_hash_cost;
        assert!((h_serial - h_par - probe_cpu * 0.75).abs() < 1e-9);
        assert_eq!(serial.nested_loop(10.0, &giant()), par.nested_loop(10.0, &giant()));
        // Degenerate settings clamp instead of flipping comparisons.
        let broken = CostParams { probe_parallelism: 0.0, ..CostParams::default() };
        assert_eq!(
            broken.hash_intermediate(10.0, 10.0, 1.0),
            serial.hash_intermediate(10.0, 10.0, 1.0)
        );
    }

    #[test]
    fn radix_partitioning_cost_engages_for_big_builds() {
        let serial = CostParams::default();
        let par = CostParams::with_probe_parallelism(4);
        // Build side big enough that the executor would radix-partition:
        // the parallel model keeps the probe discount but charges the
        // repartitioning pass on top.
        let h_serial = serial.hash(10_000.0, &giant(), 100_000.0, 10.0);
        let h_par = par.hash(10_000.0, &giant(), 100_000.0, 10.0);
        let probe_discount = 100_000.0 * serial.cpu_hash_cost * 0.75;
        let repartition = (10_000.0 + 100_000.0) * serial.cpu_tuple_cost / 4.0;
        assert!((h_serial - h_par - (probe_discount - repartition)).abs() < 1e-9);
        // Same shape for the intermediate variant.
        let i_serial = serial.hash_intermediate(10_000.0, 100_000.0, 10.0);
        let i_par = par.hash_intermediate(10_000.0, 100_000.0, 10.0);
        assert!((i_serial - i_par - (probe_discount - repartition)).abs() < 1e-9);
        // A tiny build never partitions, so no overhead is charged even in
        // parallel mode (pinned exactly by the probe-parallelism test too).
        let small_serial = serial.hash(100.0, &giant(), 100_000.0, 10.0);
        let small_par = par.hash(100.0, &giant(), 100_000.0, 10.0);
        assert!((small_serial - small_par - probe_discount).abs() < 1e-9);
    }

    #[test]
    fn range_join_beats_nested_loop_but_pays_for_its_output() {
        let p = CostParams::default();
        // An honest 1000-tuple outer over a giant inner: log-probes beat
        // full rescans by orders of magnitude.
        let band = p.range_join(1000.0, &giant(), 100_000.0, 10_000.0);
        let nl = p.nested_loop(1000.0, &giant());
        assert!(band < nl, "band {band} should beat nl {nl}");
        // The emission term matters: a band producing 10M tuples costs more
        // than one producing 10k from the same inputs.
        let wide = p.range_join(1000.0, &giant(), 100_000.0, 1e7);
        assert!(wide > band, "wide {wide} <= narrow {band}");
        // Intermediate variant drops only the inner scan.
        let inter = p.range_join_intermediate(1000.0, 100_000.0, 10_000.0);
        assert!((band - inter - p.scan(&giant())).abs() < 1e-9);
    }

    #[test]
    fn costs_are_monotone_in_outer_estimate() {
        let p = CostParams::default();
        let t = TableProfile::synthetic(1000.0, 8);
        let mut prev = -1.0;
        for outer in [0.0, 1.0, 10.0, 1e3, 1e6] {
            let c = p.nested_loop(outer, &t);
            assert!(c >= prev);
            prev = c;
        }
    }
}
