//! Randomized end-to-end consistency: generate random conjunctive queries
//! over a small catalog, run them through every estimator preset and every
//! enumeration strategy, and check all plans agree with brute force.
//!
//! This is the repository's failure-injection net: whatever predicate
//! combination the generator produces (duplicates, contradictions, chains,
//! stars, self-equivalences through closure), every configuration must
//! produce the same — correct — answer.

use std::sync::Arc;

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::core::Predicate;
use els::exec::execute_plan;
use els::optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els::sql::{bind, parse};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els::storage::Table;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    // Three small tables, two columns each, with overlapping domains so
    // joins sometimes match and sometimes don't.
    for (name, rows, seed) in [("t0", 24usize, 1u64), ("t1", 30, 2), ("t2", 18, 3)] {
        let t = TableSpec::new(name, rows)
            .column(ColumnSpec::new("a", Distribution::CycleInt { modulus: 8, start: 0 }))
            .column(ColumnSpec::new(
                "b",
                Distribution::WithNulls {
                    inner: Box::new(Distribution::UniformInt { lo: 0, hi: 11 }),
                    null_fraction: 0.1,
                },
            ))
            .generate(seed);
        c.register(t, &CollectOptions::default()).unwrap();
    }
    c
}

/// Brute-force evaluation of the bound conjunctive query.
fn brute_force(tables: &[Arc<Table>], predicates: &[Predicate]) -> u64 {
    fn matches(tables: &[Arc<Table>], row: &[usize], p: &Predicate) -> bool {
        let get = |c: &els::core::ColumnRef| {
            tables[c.table].column(c.column).unwrap().get(row[c.table]).unwrap()
        };
        match p {
            Predicate::LocalCmp { column, op, value } => {
                get(column).sql_cmp(value).map(|o| op.eval(o)).unwrap_or(false)
            }
            Predicate::IsNull { column, negated } => get(column).is_null() != *negated,
            Predicate::LocalColEq { left, right } | Predicate::JoinEq { left, right } => {
                get(left).sql_eq(&get(right))
            }
            Predicate::JoinRange { left, op, right } => {
                get(left).sql_cmp(&get(right)).map(|o| op.eval(o)).unwrap_or(false)
            }
        }
    }
    fn rec(tables: &[Arc<Table>], preds: &[Predicate], row: &mut Vec<usize>, d: usize) -> u64 {
        if d == tables.len() {
            return preds.iter().all(|p| matches(tables, row, p)) as u64;
        }
        let mut total = 0;
        for r in 0..tables[d].num_rows() {
            row[d] = r;
            total += rec(tables, preds, row, d + 1);
        }
        total
    }
    rec(tables, predicates, &mut vec![0; tables.len()], 0)
}

/// Generate a random conjunctive WHERE clause as SQL text.
fn random_query(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = ["t0", "t1", "t2"];
    let ntables = rng.gen_range(1..=3usize);
    let from: Vec<&str> = names[..ntables].to_vec();
    let cols = ["a", "b"];
    let mut conjuncts: Vec<String> = Vec::new();
    for _ in 0..rng.gen_range(0..5usize) {
        let t1 = rng.gen_range(0..ntables);
        let c1 = cols[rng.gen_range(0..2usize)];
        match rng.gen_range(0..5) {
            // Join / column equality.
            0 if ntables > 1 => {
                let t2 = rng.gen_range(0..ntables);
                let c2 = cols[rng.gen_range(0..2usize)];
                if t1 != t2 || c1 != c2 {
                    conjuncts.push(format!("{}.{c1} = {}.{c2}", from[t1], from[t2]));
                }
            }
            // Cross-table inequality (a band-join edge).
            4 if ntables > 1 => {
                let t2 = rng.gen_range(0..ntables);
                if t1 != t2 {
                    let c2 = cols[rng.gen_range(0..2usize)];
                    let op = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
                    conjuncts.push(format!("{}.{c1} {op} {}.{c2}", from[t1], from[t2]));
                }
            }
            // Constant comparison.
            1 => {
                let op = ["=", "<", "<=", ">", ">=", "<>"][rng.gen_range(0..6usize)];
                let v = rng.gen_range(-2i64..14);
                conjuncts.push(format!("{}.{c1} {op} {v}", from[t1]));
            }
            // BETWEEN.
            2 => {
                let lo = rng.gen_range(-2i64..10);
                let hi = lo + rng.gen_range(0i64..8);
                conjuncts.push(format!("{}.{c1} BETWEEN {lo} AND {hi}", from[t1]));
            }
            // Nullness.
            _ => {
                let neg = if rng.gen_bool(0.5) { " NOT" } else { "" };
                conjuncts.push(format!("{}.{c1} IS{neg} NULL", from[t1]));
            }
        }
    }
    let mut sql = format!("SELECT COUNT(*) FROM {}", from.join(", "));
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    sql
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_configuration_agrees_with_brute_force(seed in 0u64..10_000) {
        let catalog = catalog();
        let sql = random_query(seed);
        let bound = match bind(&parse(&sql).unwrap(), &catalog) {
            Ok(b) => b,
            // The generator can produce shapes the binder rejects (e.g.
            // non-equality between columns never happens here, but IS NULL
            // duplicates are fine) — rejections are not failures.
            Err(e) => return Err(TestCaseError::fail(format!("bind failed on `{sql}`: {e}"))),
        };
        let tables = bound_query_tables(&bound, &catalog).unwrap();
        let truth = brute_force(&tables, &bound.predicates);

        let mut configs: Vec<(String, OptimizerOptions)> = Vec::new();
        for preset in EstimatorPreset::all() {
            configs.push((preset.label().to_owned(), OptimizerOptions::preset(preset)));
        }
        configs.push((
            "ELS+hash+bushy".into(),
            OptimizerOptions::preset(EstimatorPreset::Els).with_hash_join().with_bushy_trees(),
        ));
        configs.push((
            "ELS+INL".into(),
            OptimizerOptions::preset(EstimatorPreset::Els).with_index_nested_loop(),
        ));

        for (label, options) in configs {
            let optimized = optimize_bound(&bound, &catalog, &options)
                .unwrap_or_else(|e| panic!("optimize failed ({label}) on `{sql}`: {e}"));
            let out = execute_plan(&optimized.plan, &tables)
                .unwrap_or_else(|e| panic!("execute failed ({label}) on `{sql}`: {e}"));
            prop_assert_eq!(out.count, truth, "{} disagrees on `{}`", label, sql);
        }
    }
}

#[test]
fn group_by_end_to_end() {
    let catalog = catalog();
    let sql = "SELECT t0.a, COUNT(*) FROM t0, t1 WHERE t0.a = t1.a GROUP BY t0.a";
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els)).unwrap();
    let out = execute_plan(&optimized.plan, &tables).unwrap();
    // Brute-force the per-group counts.
    let mut expect: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    for r0 in 0..tables[0].num_rows() {
        let a0 = tables[0].column(0).unwrap().get(r0).unwrap();
        for r1 in 0..tables[1].num_rows() {
            let a1 = tables[1].column(0).unwrap().get(r1).unwrap();
            if a0.sql_eq(&a1) {
                *expect.entry(a0.as_int().unwrap()).or_insert(0) += 1;
            }
        }
    }
    assert_eq!(out.count as usize, expect.len());
    for r in 0..out.rows.num_rows() {
        let row = out.rows.row(r).unwrap();
        let key = row[0].as_int().unwrap();
        assert_eq!(row[1].as_int().unwrap(), expect[&key], "group {key}");
    }
}

#[test]
fn group_by_through_the_engine() {
    let mut db = els::engine::Database::new();
    db.generate(
        TableSpec::new("ev", 100)
            .column(ColumnSpec::new("kind", Distribution::CycleInt { modulus: 4, start: 0 })),
        9,
    )
    .unwrap();
    let r = db.execute("SELECT kind, COUNT(*) FROM ev GROUP BY kind").unwrap();
    assert_eq!(r.count, 4);
    for g in 0..4 {
        assert_eq!(r.rows.row(g).unwrap()[1], els::storage::Value::Int(25));
    }
}
