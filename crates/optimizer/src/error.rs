//! Error type for the optimizer.

use std::fmt;

/// Errors raised during optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerError {
    /// Estimation failed (invalid statistics, malformed predicates, …).
    Estimation(els_core::ElsError),
    /// Plan construction failed.
    Exec(els_exec::ExecError),
    /// Catalog lookup failed.
    Catalog(String),
    /// The query shape is unsupported (no tables, too many tables, …).
    Unsupported(String),
    /// An internal invariant did not hold (a bug, reported instead of
    /// panicking so a serving thread degrades to an error response).
    Internal(String),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::Estimation(e) => write!(f, "estimation error: {e}"),
            OptimizerError::Exec(e) => write!(f, "plan error: {e}"),
            OptimizerError::Catalog(m) => write!(f, "catalog error: {m}"),
            OptimizerError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            OptimizerError::Internal(m) => write!(f, "internal optimizer invariant violated: {m}"),
        }
    }
}

impl std::error::Error for OptimizerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizerError::Estimation(e) => Some(e),
            OptimizerError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<els_core::ElsError> for OptimizerError {
    fn from(e: els_core::ElsError) -> Self {
        OptimizerError::Estimation(e)
    }
}

impl From<els_exec::ExecError> for OptimizerError {
    fn from(e: els_exec::ExecError) -> Self {
        OptimizerError::Exec(e)
    }
}

impl From<els_catalog::CatalogError> for OptimizerError {
    fn from(e: els_catalog::CatalogError) -> Self {
        OptimizerError::Catalog(e.to_string())
    }
}

/// Result alias for this crate.
pub type OptimizerResult<T> = Result<T, OptimizerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e: OptimizerError = els_core::ElsError::UnknownTable(1).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("estimation"));
        let e: OptimizerError = els_exec::ExecError::UnknownTable(1).into();
        assert!(e.to_string().contains("plan"));
    }
}
