//! A small Rust lexer, exact where it matters for linting.
//!
//! The passes in this crate reason about *token streams*, never raw text,
//! so the lexer must get the hard cases right: `//` inside a raw string is
//! not a comment, `'"'` is a char literal and not the start of a string,
//! `'a` is a lifetime while `'a'` is a char, and `/* /* */ */` only closes
//! at the second `*/`. Everything else — numbers, idents, punctuation —
//! only needs to be segmented consistently, not interpreted.

/// What a token is. Comments are kept in the stream (suppression comments
/// are data for the linter); whitespace is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#fn`).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct(char),
    /// Integer or float literal, including suffixes (`1_000u64`, `1.5e-3`).
    Number,
    /// `"..."` or `b"..."` with escapes.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#` — any hash depth.
    RawStr,
    /// `'x'`, `'\''`, `'\u{1F600}'`, `b'x'`.
    CharLit,
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// `// ...` (also `///` and `//!`).
    LineComment,
    /// `/* ... */`, nesting-aware.
    BlockComment,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for tokens that are code rather than commentary.
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    peeked: Vec<char>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor { chars: text.chars(), peeked: Vec::new(), line: 1, col: 1 }
    }

    fn peek(&mut self, n: usize) -> Option<char> {
        while self.peeked.len() <= n {
            self.peeked.push(self.chars.next()?);
        }
        Some(self.peeked[n])
    }

    fn bump(&mut self) -> Option<char> {
        let c = if self.peeked.is_empty() { self.chars.next()? } else { self.peeked.remove(0) };
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `text`. The lexer is total: any input produces a token stream
/// (malformed trailing literals become best-effort tokens), because the
/// linter must keep going to report everything it can.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut cur = Cursor::new(text);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let tok = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == 'r' && is_raw_string_ahead(&mut cur, 1) {
            lex_raw_string(&mut cur)
        } else if c == 'b' && cur.peek(1) == Some('r') && is_raw_string_ahead(&mut cur, 2) {
            lex_raw_string(&mut cur)
        } else if c == '"' || (c == 'b' && cur.peek(1) == Some('"')) {
            lex_string(&mut cur)
        } else if c == 'b' && cur.peek(1) == Some('\'') {
            cur.bump();
            let mut t = lex_quote(&mut cur);
            t.text.insert(0, 'b');
            t
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            let c = cur.bump().unwrap_or(' ');
            Token { kind: TokenKind::Punct(c), text: c.to_string(), line, col }
        };
        out.push(Token { line, col, ..tok });
    }
    out
}

/// At offset `start` past an `r` (or `br`), is `#*"` next — i.e. a raw
/// string rather than a raw identifier like `r#fn`?
fn is_raw_string_ahead(cur: &mut Cursor<'_>, start: usize) -> bool {
    let mut i = start;
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    cur.peek(i) == Some('"')
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::LineComment, text, line: 0, col: 0 }
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> Token {
    let mut text = String::new();
    let mut depth = 0u32;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    Token { kind: TokenKind::BlockComment, text, line: 0, col: 0 }
}

fn lex_raw_string(cur: &mut Cursor<'_>) -> Token {
    let mut text = String::new();
    // `r` or `br` prefix.
    while matches!(cur.peek(0), Some('r') | Some('b')) {
        text.push(cur.bump().unwrap_or('r'));
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
    }
    // Scan for `"` followed by `hashes` hashes.
    'outer: while let Some(c) = cur.peek(0) {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(1 + i) != Some('#') {
                    text.push('"');
                    cur.bump();
                    continue 'outer;
                }
            }
            text.push('"');
            cur.bump();
            for _ in 0..hashes {
                text.push('#');
                cur.bump();
            }
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::RawStr, text, line: 0, col: 0 }
}

fn lex_string(cur: &mut Cursor<'_>) -> Token {
    let mut text = String::new();
    if cur.peek(0) == Some('b') {
        text.push('b');
        cur.bump();
    }
    text.push('"');
    cur.bump();
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            break;
        }
    }
    Token { kind: TokenKind::Str, text, line: 0, col: 0 }
}

/// A leading `'`: either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> Token {
    let mut text = String::from('\'');
    cur.bump();
    match cur.peek(0) {
        // `'\...'` is always a char literal.
        Some('\\') => {
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '\'' {
                    break;
                }
            }
            Token { kind: TokenKind::CharLit, text, line: 0, col: 0 }
        }
        // `'x'` (x immediately followed by a closing quote) is a char
        // literal; `'x` with anything else after is a lifetime.
        Some(c) if cur.peek(1) == Some('\'') => {
            text.push(c);
            cur.bump();
            text.push('\'');
            cur.bump();
            Token { kind: TokenKind::CharLit, text, line: 0, col: 0 }
        }
        Some(c) if is_ident_start(c) => {
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Token { kind: TokenKind::Lifetime, text, line: 0, col: 0 }
        }
        // Bare `'` before something that is neither escape, char-close nor
        // ident: emit it as punctuation so the stream stays total.
        _ => Token { kind: TokenKind::Punct('\''), text, line: 0, col: 0 },
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> Token {
    let mut text = String::new();
    // Raw identifier prefix `r#`.
    if cur.peek(0) == Some('r') && cur.peek(1) == Some('#') {
        text.push('r');
        text.push('#');
        cur.bump();
        cur.bump();
    }
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokenKind::Ident, text, line: 0, col: 0 }
}

fn lex_number(cur: &mut Cursor<'_>) -> Token {
    let mut text = String::new();
    let mut prev = ' ';
    while let Some(c) = cur.peek(0) {
        let take = if c.is_ascii_alphanumeric() || c == '_' {
            true
        } else if c == '.' {
            // `1.0` continues the number; `1..n` and `1.max(2)` do not.
            matches!(cur.peek(1), Some(d) if d.is_ascii_digit())
        } else if c == '+' || c == '-' {
            // Only as an exponent sign: `1e-5`.
            prev == 'e' || prev == 'E'
        } else {
            false
        };
        if !take {
            break;
        }
        text.push(c);
        prev = c;
        cur.bump();
    }
    Token { kind: TokenKind::Number, text, line: 0, col: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_string_containing_comment_markers_and_quotes() {
        let src = "let s = r#\"// not a comment \" still \"#; x.unwrap()";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("// not a comment")));
        // The unwrap after the raw string is still seen as code.
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| matches!(k, TokenKind::LineComment)).count(), 0);
    }

    #[test]
    fn nested_block_comments_close_at_the_outermost_level() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("still comment"));
        assert_eq!(toks[1], (TokenKind::Ident, "code".to_string()));
    }

    #[test]
    fn char_literals_with_quotes_and_escapes() {
        for src in ["'\"'", "'\\''", "'\\\\'", "'\\u{1F600}'", "b'x'"] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src} should be one token, got {toks:?}");
            assert_eq!(toks[0].0, TokenKind::CharLit, "{src}");
        }
    }

    #[test]
    fn char_literal_quote_does_not_open_a_string() {
        // If `'"'` were mis-lexed, the following // comment would be
        // swallowed into a string and the suppression lost.
        let src = "let c = '\"'; // els-lint: allow(panic-freedom, \"r\")";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::CharLit));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::LineComment && t.contains("els-lint")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::CharLit));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let toks = kinds("for i in 0..10 { 1.5e-3; 2.max(3); }");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Number).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, ["0", "10", "1.5e-3", "2", "3"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#fn = r#\"raw\"#;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = tokenize("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
