//! CSV import and export.
//!
//! A small, dependency-free CSV codec sufficient for moving tables in and
//! out of the engine: comma-separated, RFC-4180 style quoting (fields
//! containing commas, quotes or newlines are wrapped in `"` with embedded
//! quotes doubled), header row with column names, empty unquoted fields as
//! NULL. Types are inferred on import (Int → Float → Str, NULLs neutral)
//! unless a schema is supplied.

use std::io::{BufRead, Write};

use crate::column::ColumnVector;
use crate::error::{StorageError, StorageResult};
use crate::table::Table;
use crate::value::{DataType, Value};

/// Write `table` as CSV (header + rows).
pub fn write_csv(table: &Table, out: &mut impl Write) -> std::io::Result<()> {
    let header: Vec<String> = table.column_names().iter().map(|n| quote_field(n)).collect();
    writeln!(out, "{}", header.join(","))?;
    for row in 0..table.num_rows() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(row).unwrap_or(Value::Null);
                match v {
                    Value::Null => String::new(),
                    Value::Int(x) => x.to_string(),
                    Value::Float(x) => format_float(x),
                    Value::Str(s) => quote_field(&s),
                }
            })
            .collect();
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Format a float so it round-trips as a float (always keeps a `.` or
/// exponent so import does not infer Int).
fn format_float(x: f64) -> String {
    let s = x.to_string();
    if s.contains('.')
        || s.contains('e')
        || s.contains('E')
        || s.contains("NaN")
        || s.contains("inf")
    {
        s
    } else {
        format!("{s}.0")
    }
}

fn quote_field(s: &str) -> String {
    if s.is_empty() || s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// One parsed field: raw text plus whether it was quoted (a quoted empty
/// field is an empty string; an unquoted empty field is NULL).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Field {
    text: String,
    quoted: bool,
}

/// Split one CSV record (no trailing newline) into fields.
fn parse_record(line: &str) -> StorageResult<Vec<Field>> {
    let bytes = line.as_bytes();
    let mut fields = Vec::new();
    let mut i = 0usize;
    loop {
        let mut text = String::new();
        let mut quoted = false;
        if bytes.get(i) == Some(&b'"') {
            quoted = true;
            i += 1;
            loop {
                match bytes.get(i) {
                    None => return Err(StorageError::Csv("unterminated quoted CSV field".into())),
                    Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                        text.push('"');
                        i += 2;
                    }
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(&b) => {
                        text.push(b as char);
                        i += 1;
                    }
                }
            }
        } else {
            while i < bytes.len() && bytes[i] != b',' {
                text.push(bytes[i] as char);
                i += 1;
            }
        }
        fields.push(Field { text, quoted });
        match bytes.get(i) {
            Some(b',') => i += 1,
            None => break,
            Some(_) => return Err(StorageError::Csv("content after closing quote".into())),
        }
    }
    Ok(fields)
}

fn infer_type(fields: &[Vec<Field>], col: usize) -> DataType {
    let mut ty = DataType::Int;
    for row in fields {
        let f = &row[col];
        if !f.quoted && f.text.is_empty() {
            continue; // NULL is neutral
        }
        if f.quoted {
            return DataType::Str;
        }
        match ty {
            DataType::Int => {
                if f.text.parse::<i64>().is_err() {
                    if f.text.parse::<f64>().is_ok() {
                        ty = DataType::Float;
                    } else {
                        return DataType::Str;
                    }
                }
            }
            DataType::Float => {
                if f.text.parse::<f64>().is_err() {
                    return DataType::Str;
                }
            }
            DataType::Str => return DataType::Str,
        }
    }
    ty
}

/// Read a CSV (with header) into a table named `name`. When `schema` is
/// `None`, column types are inferred; otherwise it must list one type per
/// CSV column.
pub fn read_csv(
    name: &str,
    input: &mut impl BufRead,
    schema: Option<&[DataType]>,
) -> StorageResult<Table> {
    let mut lines = Vec::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = input.read_line(&mut buf).map_err(|e| StorageError::Csv(e.to_string()))?;
        if n == 0 {
            break;
        }
        let line = buf.trim_end_matches(['\n', '\r']);
        lines.push(line.to_owned());
    }
    let Some(header_line) = lines.first() else {
        return Err(StorageError::Csv("empty CSV input".into()));
    };
    let header = parse_record(header_line)?;
    let ncols = header.len();

    let mut records: Vec<Vec<Field>> = Vec::with_capacity(lines.len().saturating_sub(1));
    for (idx, line) in lines[1..].iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        let rec = parse_record(line)?;
        if rec.len() != ncols {
            return Err(StorageError::Csv(format!(
                "row {} has {} fields, expected {ncols}",
                idx + 2,
                rec.len()
            )));
        }
        records.push(rec);
    }

    let types: Vec<DataType> = match schema {
        Some(s) => {
            if s.len() != ncols {
                return Err(StorageError::ArityMismatch { expected: ncols, actual: s.len() });
            }
            s.to_vec()
        }
        None => (0..ncols).map(|c| infer_type(&records, c)).collect(),
    };

    let mut columns: Vec<ColumnVector> =
        types.iter().map(|&t| ColumnVector::with_capacity(t, records.len())).collect();
    for rec in &records {
        for (c, field) in rec.iter().enumerate() {
            let value = if !field.quoted && field.text.is_empty() {
                Value::Null
            } else {
                match types[c] {
                    DataType::Int => Value::Int(field.text.parse::<i64>().map_err(|_| {
                        StorageError::Csv(format!(
                            "`{}` is not an integer (column {c})",
                            field.text
                        ))
                    })?),
                    DataType::Float => Value::Float(field.text.parse::<f64>().map_err(|_| {
                        StorageError::Csv(format!("`{}` is not a float (column {c})", field.text))
                    })?),
                    DataType::Str => Value::Str(field.text.clone()),
                }
            };
            columns[c].push(value)?;
        }
    }

    Table::new(name, header.into_iter().map(|h| h.text).zip(columns).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Table {
        let mut t = Table::empty(
            "t",
            &[("id", DataType::Int), ("score", DataType::Float), ("tag", DataType::Str)],
        );
        t.push_row(vec![Value::Int(1), Value::Float(1.5), Value::from("plain")]).unwrap();
        t.push_row(vec![Value::Int(-2), Value::Null, Value::from("with,comma")]).unwrap();
        t.push_row(vec![Value::Null, Value::Float(3.0), Value::from("say \"hi\"")]).unwrap();
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv("t", &mut Cursor::new(&buf), None).unwrap();
        assert_eq!(back.num_rows(), 3);
        assert_eq!(back.column_names(), t.column_names());
        for r in 0..3 {
            assert_eq!(back.row(r).unwrap(), t.row(r).unwrap(), "row {r}");
        }
        // Types survived: the float column did not collapse to Int.
        assert_eq!(back.column_by_name("score").unwrap().data_type(), DataType::Float);
    }

    #[test]
    fn type_inference_promotes_int_to_float_to_str() {
        let csv = "a,b,c\n1,1,1\n2,2.5,x\n";
        let t = read_csv("t", &mut Cursor::new(csv), None).unwrap();
        assert_eq!(t.column_by_name("a").unwrap().data_type(), DataType::Int);
        assert_eq!(t.column_by_name("b").unwrap().data_type(), DataType::Float);
        assert_eq!(t.column_by_name("c").unwrap().data_type(), DataType::Str);
        // The Int 1 in the Float column widened.
        assert_eq!(t.column_by_name("b").unwrap().get(0).unwrap(), Value::Float(1.0));
    }

    #[test]
    fn unquoted_empty_is_null_quoted_empty_is_string() {
        let csv = "a,b\n,\"\"\n5,x\n";
        let t = read_csv("t", &mut Cursor::new(csv), None).unwrap();
        assert_eq!(t.column_by_name("a").unwrap().get(0).unwrap(), Value::Null);
        assert_eq!(t.column_by_name("b").unwrap().get(0).unwrap(), Value::from(""));
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        let csv = "a\n1\n2\n";
        let t = read_csv("t", &mut Cursor::new(csv), Some(&[DataType::Float])).unwrap();
        assert_eq!(t.column_by_name("a").unwrap().data_type(), DataType::Float);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(read_csv("t", &mut Cursor::new(""), None).is_err());
        // Ragged row.
        assert!(read_csv("t", &mut Cursor::new("a,b\n1\n"), None).is_err());
        // Unterminated quote.
        assert!(read_csv("t", &mut Cursor::new("a\n\"open\n"), None).is_err());
        // Schema arity mismatch.
        assert!(read_csv("t", &mut Cursor::new("a,b\n1,2\n"), Some(&[DataType::Int])).is_err());
        // Unparseable under explicit schema.
        assert!(read_csv("t", &mut Cursor::new("a\nxyz\n"), Some(&[DataType::Int])).is_err());
    }

    #[test]
    fn quoting_handles_quotes_and_commas() {
        assert_eq!(quote_field("plain"), "plain");
        assert_eq!(quote_field("a,b"), "\"a,b\"");
        assert_eq!(quote_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        let rec = parse_record("\"a,b\",\"say \"\"hi\"\"\",plain").unwrap();
        assert_eq!(rec[0].text, "a,b");
        assert_eq!(rec[1].text, "say \"hi\"");
        assert_eq!(rec[2].text, "plain");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "a\n1\n\n2\n";
        let t = read_csv("t", &mut Cursor::new(csv), None).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
