//! The linter must hold on the workspace that ships it: zero hard errors,
//! zero violations beyond the committed ratchet baseline. This is the same
//! gate `scripts/check.sh` runs, kept here so `cargo test` alone catches a
//! regression (a new unwrap, a stray println!, an unjustified suppression)
//! without the shell harness.

use std::path::Path;

use els_lint::{per_lint_summary, run};

fn workspace_root() -> &'static Path {
    // crates/lint/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_passes_its_own_lints() {
    let outcome = run(workspace_root()).expect("lint run must not fail to read the tree");
    assert!(
        outcome.hard_errors.is_empty(),
        "hard errors (malformed or unused suppressions): {:#?}",
        outcome.hard_errors
    );
    assert!(
        outcome.new_violations.is_empty(),
        "violations beyond lint-baseline.json: {:#?}",
        outcome.new_violations
    );
    assert!(outcome.is_ok());
    // Sanity: the scan actually saw the engine, not an empty directory.
    assert!(outcome.files_scanned > 30, "only {} files scanned", outcome.files_scanned);
}

#[test]
fn ratchet_only_tightens() {
    // The committed baseline may only ever shrink: if a file got cleaner
    // than its baselined count, the baseline must be re-ratcheted down
    // (ELS_LINT_BASELINE_UPDATE=1 cargo run -p els-lint -- --baseline-update)
    // so the slack cannot be spent on new violations elsewhere in the file.
    let outcome = run(workspace_root()).expect("lint run must not fail to read the tree");
    let current = els_lint::count_unsuppressed(&outcome.violations);
    for (lint, files) in &outcome.baseline {
        for (file, &allowed) in files {
            let now = current.get(lint).and_then(|m| m.get(file)).copied().unwrap_or(0);
            assert!(
                now >= allowed,
                "{file} is below its `{lint}` baseline ({now} < {allowed}); \
                 re-ratchet the baseline down"
            );
        }
    }
    // And the per-lint totals the report prints agree with the raw data.
    for (lint, (cur, baselined, _suppressed)) in per_lint_summary(&outcome) {
        let raw: u64 = current.get(&lint).map(|m| m.values().sum()).unwrap_or(0);
        assert_eq!(cur, raw, "summary total for {lint} disagrees with violations");
        assert!(cur <= baselined, "{lint}: {cur} unsuppressed but only {baselined} baselined");
    }
}

#[test]
fn the_original_lints_stay_at_zero_baseline() {
    // The five token passes and the layering pass reached zero
    // grandfathered violations; only the inter-procedural
    // panic-reachability pass may carry baseline entries. Keeping the
    // others pinned at zero means a regression in them can never be
    // ratcheted in by a careless --baseline-update.
    let outcome = run(workspace_root()).expect("lint run must not fail to read the tree");
    for lint in [
        "panic-freedom",
        "determinism",
        "metrics-only-io",
        "atomics-discipline",
        "parallelism-seam",
        "layering",
        "lock-order",
        "numeric-discipline",
    ] {
        let total: u64 = outcome.baseline.get(lint).map(|m| m.values().sum()).unwrap_or(0);
        assert_eq!(total, 0, "`{lint}` grew a baseline entry; fix or suppress instead");
    }
}

#[test]
fn the_lock_order_graph_is_derived_and_acyclic() {
    // The pass parsed the order out of els_core::sync (not a stale copy).
    // Today the engine holds no lock while acquiring another, so the edge
    // set is empty; if nesting ever appears, every edge must run forward.
    // Acyclicity is enforced inside run() as a hard error, which
    // workspace_passes_its_own_lints already asserts empty.
    let outcome = run(workspace_root()).expect("lint run must not fail to read the tree");
    assert_eq!(
        outcome.lock_order,
        [
            "shared.state",
            "plan_cache.state",
            "admission.state",
            "metrics.qerr",
            "feedback.entries",
            "scheduler.deques"
        ],
        "lock order no longer matches els_core::sync::LOCK_ORDER"
    );
    for e in &outcome.lock_edges {
        let from = outcome.lock_order.iter().position(|c| *c == e.from);
        let to = outcome.lock_order.iter().position(|c| *c == e.to);
        assert!(from < to, "backward edge survived the run: {e:?}");
    }
}

#[test]
fn baseline_update_detects_a_file_changed_underfoot() {
    // --baseline-update must refuse to write over a baseline that changed
    // after the run loaded it (hand edit, concurrent run): simulate with a
    // scratch workspace whose baseline mutates between run() and the check.
    let dir = std::env::temp_dir().join(format!("els-lint-dirty-{}", std::process::id()));
    for (_, root) in els_lint::LIBRARY_SRC_ROOTS {
        std::fs::create_dir_all(dir.join(root)).expect("scratch src root");
    }
    for (_, manifest) in els_lint::LIBRARY_MANIFESTS {
        let path = dir.join(manifest);
        std::fs::create_dir_all(path.parent().unwrap()).expect("scratch manifest dir");
        std::fs::write(&path, "[package]\nname = \"x\"\n").expect("scratch manifest");
    }
    let baseline_path = dir.join(els_lint::BASELINE_FILE);
    std::fs::write(&baseline_path, "{\"version\": 1, \"baseline\": {}}").expect("seed baseline");

    let outcome = run(&dir).expect("scratch run");
    assert!(!els_lint::baseline_dirty(&dir, &outcome), "nothing changed yet");

    std::fs::write(&baseline_path, "{\"version\": 1, \"baseline\": { }}").expect("mutate");
    assert!(els_lint::baseline_dirty(&dir, &outcome), "byte change must be detected");

    std::fs::remove_file(&baseline_path).expect("remove");
    assert!(els_lint::baseline_dirty(&dir, &outcome), "deletion must be detected");

    let _ = std::fs::remove_dir_all(&dir);
}
