//! Late-materializing vectorized plan evaluation.
//!
//! The tentpole of the vectorization PR. Instead of materializing a full
//! [`Chunk`] at every operator (the row-at-a-time path clones whole tables
//! at scans and gathers every column at every join), this evaluator carries
//! **row-id selections over shared sources**:
//!
//! * a scan produces a selection vector over the stored table (built by the
//!   typed filter kernels in [`crate::filter::filter_selection`]) — no data
//!   is copied;
//! * hash and sort-merge joins work on **typed key columns** and produce a
//!   pair list of logical row ids, which is *composed* with the inputs'
//!   selections — still no data copied;
//! * only the plan root gathers each surviving column once
//!   ([`VChunk::materialize`]), or never, for `COUNT(*)` outputs.
//!
//! Single-column `Int` equi-joins take fast paths over raw `i64` slices
//! (exact — see `HashKey` in [`crate::join`] for the 2⁵³ story). With more
//! than one worker and a large enough probe side, the int path goes
//! parallel through the work-stealing scheduler ([`crate::scheduler`]):
//! either a **radix-partitioned** join (both sides partitioned by the high
//! bits of the key hash, then independent per-partition build+probe with no
//! shared hash table — see [`radix_partitions`]) or, when the build side is
//! too small to be worth splitting, a shared-table probe over fixed-size
//! **morsels**. Results are deterministic regardless of worker or partition
//! count: partition/morsel buffers merge in a fixed order and the pair list
//! gets the same left-major sort the serial path applies. `COUNT(*)` roots
//! additionally fuse the probe with the count ([`execute_root_count`]) so
//! no row-id pair list is ever allocated for them.
//!
//! Nested-loops shapes (rescan, indexed, and keyless joins) delegate to the
//! row-path operators on materialized inputs: their cost is dominated by
//! the simulated rescan charges, and sharing the implementation keeps the
//! two paths' metrics identical by construction. Every operator charges
//! exactly the counters the row-at-a-time oracle charges (a property the
//! differential tests assert), so plan-quality experiments are unaffected
//! by the execution mode.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use els_core::predicate::CmpOp;
use els_core::ColumnRef;
use els_storage::{ColumnVector, Table, Value};

use crate::chunk::Chunk;
use crate::error::{ExecError, ExecResult};
use crate::executor::ExecState;
use crate::filter::{bind_filters, filter_selection};
use crate::join::{
    band_probe, cmp_key_slices, hash_join, hash_key, nested_loop_join, probe_charge,
    range_pair_matches, sort_charge, sort_merge_join, HashKey,
};
use crate::metrics::ExecMetrics;
use crate::plan::{JoinMethod, PlanNode};

/// Probe rows per morsel handed to one parallel worker.
pub const MORSEL_ROWS: usize = 2048;

/// Minimum probe rows before the parallel path engages; below this the
/// thread-spawn overhead dominates any probe speedup. Public so the
/// boundary-straddling differential tests can pin sizes right at the
/// threshold.
pub const PARALLEL_MIN_ROWS: usize = 4 * MORSEL_ROWS;

/// Maximum radix fan-out. 64 partitions keeps the per-task partition
/// buffers and the final merge cheap while making every per-partition
/// build side cache-resident at the scales this engine generates.
pub const MAX_RADIX_PARTITIONS: usize = 64;

/// Build rows per radix partition the fan-out decision aims for: small
/// enough that a partition's hash table stays cache-resident, large enough
/// that per-partition fixed costs amortize.
const RADIX_BUILD_ROWS_PER_PARTITION: usize = 2048;

/// The radix fan-out the int hash join will use, as a function of the two
/// input sizes and the configured worker count. Public because the
/// optimizer's cost model (`CostParams` in `els-optimizer`) consults the
/// same decision, keeping plan costs aligned with what the executor will
/// actually do.
///
/// Returns 1 (no partitioning) when the probe is too small to parallelize
/// or only one worker is configured; otherwise a power of two, capped at
/// [`MAX_RADIX_PARTITIONS`], sized so each worker gets several independent
/// partitions to steal and each partition's build side stays around
/// [`RADIX_BUILD_ROWS_PER_PARTITION`] keys. A build side below one
/// partition's worth yields 1 — the shared-table morsel probe beats
/// partitioning a tiny build.
pub fn radix_partitions(build_rows: usize, probe_rows: usize, workers: usize) -> usize {
    if workers <= 1 || probe_rows < PARALLEL_MIN_ROWS {
        return 1;
    }
    let by_build = (build_rows / RADIX_BUILD_ROWS_PER_PARTITION).max(1);
    let by_workers = workers.saturating_mul(4);
    // Round *down* to a power of two: rounding up would let the fan-out
    // exceed the documented `workers * 4` cap for non-power-of-two worker
    // counts (workers=3 → cap 12 → next_power_of_two would return 16).
    let parts = by_build.min(by_workers).min(MAX_RADIX_PARTITIONS);
    1usize << (usize::BITS - 1 - parts.leading_zeros())
}

/// One input a selection can point into: either a stored base table
/// (shared, never copied) or a materialized intermediate produced by a
/// delegated row-path operator.
enum VSource {
    /// A base table behind its query `table_id`.
    Base { table_id: usize, data: Arc<Table> },
    /// A materialized intermediate with provenance.
    Mat(Box<Chunk>),
}

/// A late-materialized intermediate result: parallel `(source, row ids)`
/// pairs. Logical row `j` of the chunk is row `rowids[s][j]` of source `s`,
/// for every source — all rowid vectors share the same length.
pub(crate) struct VChunk {
    sources: Vec<VSource>,
    rowids: Vec<Vec<u32>>,
    len: usize,
}

impl VChunk {
    /// A filtered scan: the stored table plus its selection vector.
    fn scan(table_id: usize, data: Arc<Table>, sel: Vec<u32>) -> VChunk {
        let len = sel.len();
        VChunk { sources: vec![VSource::Base { table_id, data }], rowids: vec![sel], len }
    }

    /// Wrap a materialized chunk (identity selection). Fallible because
    /// the identity selection addresses rows with `u32` ids.
    fn from_chunk(c: Chunk) -> ExecResult<VChunk> {
        let len = c.num_rows();
        crate::error::check_rowid_range(len)?;
        Ok(VChunk {
            sources: vec![VSource::Mat(Box::new(c))],
            rowids: vec![(0..len).map(crate::error::rowid).collect()],
            len,
        })
    }

    /// Number of logical rows.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Resolve a query column to `(source index, column position)`,
    /// searching sources left to right — the same order the row path's
    /// `Chunk::position_of` searches the concatenated join schema.
    fn resolve(&self, c: ColumnRef) -> Option<(usize, usize)> {
        for (si, src) in self.sources.iter().enumerate() {
            match src {
                VSource::Base { table_id, data } => {
                    if c.table == *table_id && c.column < data.num_columns() {
                        return Some((si, c.column));
                    }
                }
                VSource::Mat(ch) => {
                    if let Some(pos) = ch.position_of(c) {
                        return Some((si, pos));
                    }
                }
            }
        }
        None
    }

    /// The physical column behind `(source index, column position)`.
    fn source_column(&self, si: usize, pos: usize) -> ExecResult<&ColumnVector> {
        match &self.sources[si] {
            VSource::Base { data, .. } => Ok(data.column(pos)?),
            VSource::Mat(ch) => Ok(ch.data.column(pos)?),
        }
    }

    /// Compose a join's pair list with both inputs' selections: source `s`
    /// of the result selects `left.rowids[s][l]` for every pair `(l, r)`.
    /// No column data moves; this is the late-materialization step.
    fn compose(left: VChunk, right: VChunk, pairs: &[(u32, u32)]) -> VChunk {
        let mut sources = Vec::with_capacity(left.sources.len() + right.sources.len());
        let mut rowids: Vec<Vec<u32>> = Vec::with_capacity(sources.capacity());
        for (src, ids) in left.sources.into_iter().zip(left.rowids) {
            rowids.push(pairs.iter().map(|&(lj, _)| ids[lj as usize]).collect());
            sources.push(src);
        }
        for (src, ids) in right.sources.into_iter().zip(right.rowids) {
            rowids.push(pairs.iter().map(|&(_, rj)| ids[rj as usize]).collect());
            sources.push(src);
        }
        VChunk { sources, rowids, len: pairs.len() }
    }

    /// Gather every column once, reproducing exactly the chunk the
    /// row-at-a-time path would have built: base-table names for a single
    /// scanned source, the source's own names for a single materialized
    /// intermediate, synthesized `t{T}_c{C}` names under table `join` for
    /// multi-source join results.
    pub(crate) fn materialize(&self) -> ExecResult<Chunk> {
        if let [VSource::Base { table_id, data }] = self.sources.as_slice() {
            let ids = &self.rowids[0];
            let columns = data
                .column_names()
                .iter()
                .zip(data.columns())
                .map(|(n, col)| Ok((n.clone(), col.gather_u32(ids)?)))
                .collect::<ExecResult<Vec<_>>>()?;
            let provenance =
                (0..data.num_columns()).map(|i| ColumnRef::new(*table_id, i)).collect();
            return Ok(Chunk { data: Table::new(data.name().to_owned(), columns)?, provenance });
        }
        if let [VSource::Mat(ch)] = self.sources.as_slice() {
            let ids = &self.rowids[0];
            if ids.len() == ch.num_rows() && ids.iter().enumerate().all(|(i, &v)| v as usize == i) {
                return Ok((**ch).clone());
            }
            let columns = ch
                .data
                .column_names()
                .iter()
                .zip(ch.data.columns())
                .map(|(n, col)| Ok((n.clone(), col.gather_u32(ids)?)))
                .collect::<ExecResult<Vec<_>>>()?;
            return Ok(Chunk {
                data: Table::new(ch.data.name().to_owned(), columns)?,
                provenance: ch.provenance.clone(),
            });
        }
        let mut columns: Vec<(String, ColumnVector)> = Vec::new();
        let mut provenance: Vec<ColumnRef> = Vec::new();
        for (src, ids) in self.sources.iter().zip(&self.rowids) {
            match src {
                VSource::Base { table_id, data } => {
                    for (ci, col) in data.columns().iter().enumerate() {
                        let p = ColumnRef::new(*table_id, ci);
                        columns.push((format!("t{}_c{}", p.table, p.column), col.gather_u32(ids)?));
                        provenance.push(p);
                    }
                }
                VSource::Mat(ch) => {
                    for (ci, col) in ch.data.columns().iter().enumerate() {
                        let p = ch.provenance[ci];
                        columns.push((format!("t{}_c{}", p.table, p.column), col.gather_u32(ids)?));
                        provenance.push(p);
                    }
                }
            }
        }
        Ok(Chunk { data: Table::new("join", columns)?, provenance })
    }
}

/// Evaluate a plan tree, returning the root's late-materialized result.
pub(crate) fn execute_root(
    node: &PlanNode,
    tables: &[Arc<Table>],
    workers: usize,
    st: &mut ExecState<'_>,
) -> ExecResult<VChunk> {
    exec_node(node, tables, workers, st)
}

/// Fused `COUNT(*)` evaluation: when the plan root is a *keyed* hash or
/// sort-merge join, count the matches in one pass over the probe instead
/// of materializing, merging, and sorting the root's row-id pair list.
/// Only the root can fuse — lower joins' parents compose selections from
/// their pair lists — and NL/INL/keyless roots fall back to the general
/// path (they delegate to row operators and never build a pair list).
/// Counters and observations are charged exactly as the unfused path
/// charges them, minus the `pair_lists` allocation the fusion removes.
pub(crate) fn execute_root_count(
    node: &PlanNode,
    tables: &[Arc<Table>],
    workers: usize,
    st: &mut ExecState<'_>,
) -> ExecResult<u64> {
    if let PlanNode::Join { method, left, right, keys, ranges } = node {
        if !keys.is_empty()
            && ranges.is_empty()
            && matches!(method, JoinMethod::Hash | JoinMethod::SortMerge)
        {
            let start = crate::timing::Stopwatch::start();
            let l = exec_node(left, tables, workers, st)?;
            let r = exec_node(right, tables, workers, st)?;
            let n = match method {
                JoinMethod::Hash => vhash_count(&l, &r, keys, workers, st.metrics)?,
                _ => vsort_merge_count(&l, &r, keys, st.metrics)?,
            };
            st.metrics.tuples_emitted += n;
            st.obs.join_outputs.push((node.tables(), n));
            st.obs.join_elapsed.push(start.elapsed());
            return Ok(n);
        }
    }
    Ok(execute_root(node, tables, workers, st)?.len() as u64)
}

/// Recursive node evaluation, recording the same per-operator observations
/// (in the same post-order) as the row path.
fn exec_node(
    node: &PlanNode,
    tables: &[Arc<Table>],
    workers: usize,
    st: &mut ExecState<'_>,
) -> ExecResult<VChunk> {
    let start = crate::timing::Stopwatch::start();
    let out = exec_inner(node, tables, workers, st)?;
    match node {
        PlanNode::Scan { table_id, .. } => {
            st.obs.scan_outputs.push((*table_id, out.len() as u64));
            st.obs.scan_elapsed.push(start.elapsed());
        }
        PlanNode::Join { .. } => {
            st.obs.join_outputs.push((node.tables(), out.len() as u64));
            st.obs.join_elapsed.push(start.elapsed());
        }
    }
    Ok(out)
}

fn exec_inner(
    node: &PlanNode,
    tables: &[Arc<Table>],
    workers: usize,
    st: &mut ExecState<'_>,
) -> ExecResult<VChunk> {
    match node {
        PlanNode::Scan { table_id, filters } => {
            let data = tables.get(*table_id).ok_or(ExecError::UnknownTable(*table_id))?;
            st.metrics.tuples_scanned += data.num_rows() as u64;
            st.io.scan_table(*table_id, data.num_pages() as u64, st.metrics);
            let ncols = data.num_columns();
            let bound = bind_filters(filters, |c| {
                (c.table == *table_id && c.column < ncols).then_some(c.column)
            })?;
            let mut sel = Vec::new();
            filter_selection(data, &bound, &mut sel, st.metrics)?;
            st.metrics.tuples_emitted += sel.len() as u64;
            Ok(VChunk::scan(*table_id, Arc::clone(data), sel))
        }
        PlanNode::Join { method, left, right, keys, ranges } => {
            let l = exec_node(left, tables, workers, st)?;
            // Rescanning and indexed nested loops share the row-path
            // operators (see module docs): their cost is the simulated
            // rescans, not the evaluation loop.
            if let (JoinMethod::NestedLoop, PlanNode::Scan { table_id, filters }) =
                (method, right.as_ref())
            {
                let lchunk = l.materialize()?;
                let out = crate::executor::rescan_nested_loop(
                    &lchunk, *table_id, filters, keys, tables, st,
                )?;
                let out = crate::join::apply_join_ranges(out, ranges, st.metrics)?;
                return VChunk::from_chunk(out);
            }
            if *method == JoinMethod::IndexNestedLoop {
                let lchunk = l.materialize()?;
                let out = crate::executor::indexed_nested_loop(&lchunk, right, keys, tables, st)?;
                let out = crate::join::apply_join_ranges(out, ranges, st.metrics)?;
                return VChunk::from_chunk(out);
            }
            let r = exec_node(right, tables, workers, st)?;
            if *method == JoinMethod::Range {
                if !keys.is_empty() {
                    return Err(ExecError::InvalidPlan("range join cannot carry equi-keys".into()));
                }
                let pairs = vrange_join(&l, &r, ranges, workers, st.metrics)?;
                st.metrics.pair_lists += 1;
                st.metrics.tuples_emitted += pairs.len() as u64;
                st.metrics.range_join_rows += pairs.len() as u64;
                return Ok(VChunk::compose(l, r, &pairs));
            }
            if keys.is_empty() || *method == JoinMethod::NestedLoop {
                // Keyless joins degenerate to cartesian nested loops in
                // every method; NL over a materialized inner is the row
                // operator by definition.
                let (lc, rc) = (l.materialize()?, r.materialize()?);
                let out = match method {
                    JoinMethod::NestedLoop => nested_loop_join(&lc, &rc, keys, st.metrics)?,
                    JoinMethod::SortMerge => sort_merge_join(&lc, &rc, keys, st.metrics)?,
                    JoinMethod::Hash => hash_join(&lc, &rc, keys, st.metrics)?,
                    JoinMethod::IndexNestedLoop | JoinMethod::Range => {
                        unreachable!("handled above")
                    }
                };
                let out = crate::join::apply_join_ranges(out, ranges, st.metrics)?;
                return VChunk::from_chunk(out);
            }
            let pairs = match method {
                JoinMethod::SortMerge => vsort_merge(&l, &r, keys, st.metrics)?,
                JoinMethod::Hash => vhash_join(&l, &r, keys, workers, st.metrics)?,
                JoinMethod::NestedLoop | JoinMethod::IndexNestedLoop | JoinMethod::Range => {
                    unreachable!("handled above")
                }
            };
            st.metrics.pair_lists += 1;
            st.metrics.tuples_emitted += pairs.len() as u64;
            let pairs = filter_pairs_by_ranges(&l, &r, pairs, ranges, st.metrics)?;
            Ok(VChunk::compose(l, r, &pairs))
        }
    }
}

/// One side's key column viewed through its selection: the physical column
/// plus the logical-row → physical-row mapping.
struct SideKey<'a> {
    col: &'a ColumnVector,
    ids: &'a [u32],
}

fn side_keys<'a>(
    v: &'a VChunk,
    refs: impl Iterator<Item = ColumnRef>,
) -> ExecResult<Vec<SideKey<'a>>> {
    refs.map(|c| {
        let (si, pos) = v.resolve(c).ok_or(ExecError::ColumnNotInSchema(c))?;
        Ok(SideKey { col: v.source_column(si, pos)?, ids: &v.rowids[si] })
    })
    .collect()
}

/// Per-row composite hash keys for the generic join path; `None` marks a
/// row with a NULL key component (never matches).
fn gather_hash_keys(side: &[SideKey<'_>], len: usize) -> ExecResult<Vec<Option<Vec<HashKey>>>> {
    (0..len)
        .map(|j| {
            let mut ks = Vec::with_capacity(side.len());
            for sk in side {
                let v = sk.col.get(sk.ids[j] as usize)?;
                match hash_key(&v) {
                    None => return Ok(None),
                    Some(k) => ks.push(k),
                }
            }
            Ok(Some(ks))
        })
        .collect()
}

/// Non-NULL composite sort keys with their logical row ids, in row order
/// (so the stable sorts below permute exactly like the row path's).
fn gather_sort_keys(side: &[SideKey<'_>], len: usize) -> ExecResult<Vec<(Vec<Value>, u32)>> {
    let mut out = Vec::with_capacity(len);
    'rows: for j in 0..len {
        let mut ks = Vec::with_capacity(side.len());
        for sk in side {
            let v = sk.col.get(sk.ids[j] as usize)?;
            if v.is_null() {
                continue 'rows;
            }
            ks.push(v);
        }
        out.push((ks, crate::error::rowid(j)));
    }
    Ok(out)
}

/// One side's non-NULL `(key, logical row)` entries for a single range
/// column, in logical-row order (so the stable sort below permutes exactly
/// like the row operator's).
fn gather_range_keys(side: &SideKey<'_>, len: usize) -> ExecResult<Vec<(Value, u32)>> {
    let mut out = Vec::with_capacity(len);
    for j in 0..len {
        let v = side.col.get(side.ids[j] as usize)?;
        if !v.is_null() {
            out.push((v, crate::error::rowid(j)));
        }
    }
    Ok(out)
}

/// Vectorized band join on logical row ids — the late-materializing twin
/// of [`crate::join::range_join`]. Sorts both sides' keys once, binary
/// searches each outer key's band boundary ([`band_probe`]), and filters
/// candidates through residual ranges. The outer side splits into morsels
/// dispatched through the work-stealing scheduler when `workers > 1` and
/// the outer is at least [`PARALLEL_MIN_ROWS`]; morsel results concatenate
/// in morsel order, and the final left-major sort makes the pair list
/// independent of the schedule. Every logical-work counter is charged
/// exactly as the row operator charges it (`morsels` is reported
/// identically by the serial and parallel paths, like the hash probe).
fn vrange_join(
    left: &VChunk,
    right: &VChunk,
    ranges: &[(ColumnRef, CmpOp, ColumnRef)],
    workers: usize,
    metrics: &mut ExecMetrics,
) -> ExecResult<Vec<(u32, u32)>> {
    let Some(&(lc, op, rc)) = ranges.first() else {
        return Err(ExecError::InvalidPlan("range join requires at least one range".into()));
    };
    if !op.is_range() {
        return Err(ExecError::InvalidPlan(format!("`{op}` cannot drive a range join")));
    }
    let lside = side_keys(left, std::iter::once(lc))?;
    let rside = side_keys(right, std::iter::once(rc))?;
    let mut lrows = gather_range_keys(&lside[0], left.len())?;
    let mut rrows = gather_range_keys(&rside[0], right.len())?;
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_by(|a, b| a.0.total_cmp(&b.0));
    rrows.sort_by(|a, b| a.0.total_cmp(&b.0));
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    metrics.comparisons += lrows.len() as u64 * probe_charge(rrows.len());
    let n_morsels = lrows.len().div_ceil(MORSEL_ROWS);
    metrics.morsels += n_morsels as u64;
    let mut pairs: Vec<(u32, u32)> = if workers > 1 && lrows.len() >= PARALLEL_MIN_ROWS {
        let (morsel_pairs, stats) = crate::scheduler::run_tasks(workers, n_morsels, |m| {
            let lo = m * MORSEL_ROWS;
            let hi = (lo + MORSEL_ROWS).min(lrows.len());
            band_probe(&lrows[lo..hi], &rrows, op)
        });
        metrics.steals += stats.steals;
        morsel_pairs.into_iter().flatten().collect()
    } else {
        band_probe(&lrows, &rrows, op)
    };
    if ranges.len() > 1 {
        metrics.comparisons += pairs.len() as u64 * (ranges.len() - 1) as u64;
        pairs = retain_matching_pairs(left, right, pairs, &ranges[1..])?;
    }
    pairs.sort_unstable();
    Ok(pairs)
}

/// Residual inequality filter over a keyed join's pair list — the
/// late-materializing twin of [`crate::join::apply_join_ranges`], charging
/// the same one comparison per candidate pair per range.
fn filter_pairs_by_ranges(
    left: &VChunk,
    right: &VChunk,
    pairs: Vec<(u32, u32)>,
    ranges: &[(ColumnRef, CmpOp, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Vec<(u32, u32)>> {
    if ranges.is_empty() {
        return Ok(pairs);
    }
    metrics.comparisons += pairs.len() as u64 * ranges.len() as u64;
    retain_matching_pairs(left, right, pairs, ranges)
}

/// Keep the pairs whose row values satisfy every range (NULLs never
/// match). Pure filtering — the caller charges the comparisons.
fn retain_matching_pairs(
    left: &VChunk,
    right: &VChunk,
    pairs: Vec<(u32, u32)>,
    ranges: &[(ColumnRef, CmpOp, ColumnRef)],
) -> ExecResult<Vec<(u32, u32)>> {
    let lsides = side_keys(left, ranges.iter().map(|&(l, _, _)| l))?;
    let rsides = side_keys(right, ranges.iter().map(|&(_, _, r)| r))?;
    let ops: Vec<CmpOp> = ranges.iter().map(|&(_, o, _)| o).collect();
    let mut kept = Vec::with_capacity(pairs.len());
    'pairs: for (lj, rj) in pairs {
        for ((ls, rs), &o) in lsides.iter().zip(&rsides).zip(&ops) {
            let lv = ls.col.get(ls.ids[lj as usize] as usize)?;
            let rv = rs.col.get(rs.ids[rj as usize] as usize)?;
            if !range_pair_matches(&lv, &rv, o) {
                continue 'pairs;
            }
        }
        kept.push((lj, rj));
    }
    Ok(kept)
}

/// A minimal deterministic multiply-mix hasher for `i64` join keys; the
/// default SipHash is the dominant cost of an integer hash join.
#[derive(Default, Clone, Copy)]
struct IntHasher(u64);

impl Hasher for IntHasher {
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

type IntMap = HashMap<i64, Vec<u32>, BuildHasherDefault<IntHasher>>;

/// One side's single `Int` key column as raw slices.
struct IntKeys<'a> {
    data: &'a [i64],
    valid: &'a [bool],
    ids: &'a [u32],
}

/// Vectorized hash join on logical row ids. Charges one `hash_probes` per
/// probe-side row (NULLs included), like the row path, and returns pairs in
/// left-major order (the row path's `rows.sort_unstable()`).
fn vhash_join(
    left: &VChunk,
    right: &VChunk,
    keys: &[(ColumnRef, ColumnRef)],
    workers: usize,
    metrics: &mut ExecMetrics,
) -> ExecResult<Vec<(u32, u32)>> {
    let lsides = side_keys(left, keys.iter().map(|&(l, _)| l))?;
    let rsides = side_keys(right, keys.iter().map(|&(_, r)| r))?;
    if let ([lk], [rk]) = (lsides.as_slice(), rsides.as_slice()) {
        if let (Some(ld), Some(rd)) = (lk.col.as_int_slice(), rk.col.as_int_slice()) {
            let build = IntKeys { data: ld, valid: lk.col.validity(), ids: lk.ids };
            let probe = IntKeys { data: rd, valid: rk.col.validity(), ids: rk.ids };
            return Ok(int_hash_join(&build, &probe, workers, metrics));
        }
        if let (Some(ld), Some(rd)) = (lk.col.as_str_slice(), rk.col.as_str_slice()) {
            let (lv, rv) = (lk.col.validity(), rk.col.validity());
            let mut table: HashMap<&str, Vec<u32>> = HashMap::new();
            for (j, &rid) in lk.ids.iter().enumerate() {
                if lv[rid as usize] {
                    table
                        .entry(ld[rid as usize].as_str())
                        .or_default()
                        .push(crate::error::rowid(j));
                }
            }
            metrics.hash_probes += rk.ids.len() as u64;
            let mut pairs = Vec::new();
            for (j, &rid) in rk.ids.iter().enumerate() {
                if rv[rid as usize] {
                    if let Some(ls) = table.get(rd[rid as usize].as_str()) {
                        for &lj in ls {
                            pairs.push((lj, crate::error::rowid(j)));
                        }
                    }
                }
            }
            pairs.sort_unstable();
            return Ok(pairs);
        }
    }
    // Generic path: composite and/or mixed-type keys through the same
    // normalized `HashKey` the row path uses.
    let mut table: HashMap<Vec<HashKey>, Vec<u32>> = HashMap::new();
    for (j, k) in gather_hash_keys(&lsides, left.len())?.into_iter().enumerate() {
        if let Some(k) = k {
            table.entry(k).or_default().push(crate::error::rowid(j));
        }
    }
    metrics.hash_probes += right.len() as u64;
    let mut pairs = Vec::new();
    for (j, k) in gather_hash_keys(&rsides, right.len())?.into_iter().enumerate() {
        if let Some(k) = k {
            if let Some(ls) = table.get(&k) {
                for &lj in ls {
                    pairs.push((lj, crate::error::rowid(j)));
                }
            }
        }
    }
    pairs.sort_unstable();
    Ok(pairs)
}

/// Fused counting twin of [`vhash_join`]: the same three key paths with
/// the same `hash_probes` charge, but only a running count crosses the
/// probe loop — no `(u32, u32)` pair list is ever allocated (so the
/// `pair_lists` counter stays untouched) and the build tables hold bucket
/// *sizes*, not row-id lists, where possible.
fn vhash_count(
    left: &VChunk,
    right: &VChunk,
    keys: &[(ColumnRef, ColumnRef)],
    workers: usize,
    metrics: &mut ExecMetrics,
) -> ExecResult<u64> {
    let lsides = side_keys(left, keys.iter().map(|&(l, _)| l))?;
    let rsides = side_keys(right, keys.iter().map(|&(_, r)| r))?;
    if let ([lk], [rk]) = (lsides.as_slice(), rsides.as_slice()) {
        if let (Some(ld), Some(rd)) = (lk.col.as_int_slice(), rk.col.as_int_slice()) {
            let build = IntKeys { data: ld, valid: lk.col.validity(), ids: lk.ids };
            let probe = IntKeys { data: rd, valid: rk.col.validity(), ids: rk.ids };
            return Ok(int_hash_count(&build, &probe, workers, metrics));
        }
        if let (Some(ld), Some(rd)) = (lk.col.as_str_slice(), rk.col.as_str_slice()) {
            let (lv, rv) = (lk.col.validity(), rk.col.validity());
            let mut table: HashMap<&str, u64> = HashMap::new();
            for &rid in lk.ids {
                if lv[rid as usize] {
                    *table.entry(ld[rid as usize].as_str()).or_default() += 1;
                }
            }
            metrics.hash_probes += rk.ids.len() as u64;
            let mut n = 0u64;
            for &rid in rk.ids {
                if rv[rid as usize] {
                    n += table.get(rd[rid as usize].as_str()).copied().unwrap_or(0);
                }
            }
            return Ok(n);
        }
    }
    let mut table: HashMap<Vec<HashKey>, u64> = HashMap::new();
    for k in gather_hash_keys(&lsides, left.len())?.into_iter().flatten() {
        *table.entry(k).or_default() += 1;
    }
    metrics.hash_probes += right.len() as u64;
    let mut n = 0u64;
    for k in gather_hash_keys(&rsides, right.len())?.into_iter().flatten() {
        n += table.get(&k).copied().unwrap_or(0);
    }
    Ok(n)
}

/// The full multiply-mix of one `i64` key — the same bits [`IntHasher`]
/// feeds the hash table. Radix partitioning takes the *high* bits of this
/// mix while the table's bucket choice uses the low bits, so partition and
/// bucket assignment stay decorrelated.
#[inline]
fn int_key_mix(key: i64) -> u64 {
    let mut h = IntHasher::default();
    h.write_i64(key);
    h.finish()
}

/// Build an [`IntMap`] from `(key, logical row)` entries, preserving entry
/// order within each bucket (build-side row order, like the unpartitioned
/// build loop).
fn build_int_map(entries: &[(i64, u32)]) -> IntMap {
    let mut table = IntMap::default();
    for &(k, j) in entries {
        table.entry(k).or_default().push(j);
    }
    table
}

/// `i64` fast path: pick a radix fan-out via [`radix_partitions`], then
/// build+probe. Charges one `hash_probes` per probe-side row (NULLs
/// included) and one `morsels` per probe morsel, identically on the
/// serial, stealing, and radix paths.
fn int_hash_join(
    build: &IntKeys<'_>,
    probe: &IntKeys<'_>,
    workers: usize,
    metrics: &mut ExecMetrics,
) -> Vec<(u32, u32)> {
    let parts = radix_partitions(build.ids.len(), probe.ids.len(), workers);
    int_hash_join_with(build, probe, workers, parts, metrics)
}

/// [`int_hash_join`] with an explicit radix fan-out, so tests can pin
/// partition counts the decision function would not pick. `parts` is
/// normalized to a power of two within `1..=MAX_RADIX_PARTITIONS`.
fn int_hash_join_with(
    build: &IntKeys<'_>,
    probe: &IntKeys<'_>,
    workers: usize,
    parts: usize,
    metrics: &mut ExecMetrics,
) -> Vec<(u32, u32)> {
    let parts = parts.clamp(1, MAX_RADIX_PARTITIONS).next_power_of_two();
    charge_probe(probe, metrics);
    let mut pairs = if parts > 1 {
        radix_join(build, probe, workers, parts, metrics, probe_partition_pairs)
            .into_iter()
            .flatten()
            .collect()
    } else if workers > 1 && probe.ids.len() >= PARALLEL_MIN_ROWS {
        let table = build_int_map(&gather_int_entries(build));
        let n_morsels = probe.ids.len().div_ceil(MORSEL_ROWS);
        let (morsel_pairs, stats) = crate::scheduler::run_tasks(workers, n_morsels, |m| {
            let lo = m * MORSEL_ROWS;
            let hi = (lo + MORSEL_ROWS).min(probe.ids.len());
            probe_morsel(&table, probe, lo, hi)
        });
        metrics.steals += stats.steals;
        morsel_pairs.into_iter().flatten().collect()
    } else {
        let table = build_int_map(&gather_int_entries(build));
        probe_morsel(&table, probe, 0, probe.ids.len())
    };
    pairs.sort_unstable();
    pairs
}

/// Fused counting twin of [`int_hash_join`]: identical partitioning,
/// hashing, and counter charges, but sums matching-bucket sizes instead of
/// allocating a pair list. A count is additive, so no merge order or final
/// sort is needed for determinism.
fn int_hash_count(
    build: &IntKeys<'_>,
    probe: &IntKeys<'_>,
    workers: usize,
    metrics: &mut ExecMetrics,
) -> u64 {
    let parts = radix_partitions(build.ids.len(), probe.ids.len(), workers);
    int_hash_count_with(build, probe, workers, parts, metrics)
}

/// [`int_hash_count`] with an explicit radix fan-out (see
/// [`int_hash_join_with`]).
fn int_hash_count_with(
    build: &IntKeys<'_>,
    probe: &IntKeys<'_>,
    workers: usize,
    parts: usize,
    metrics: &mut ExecMetrics,
) -> u64 {
    let parts = parts.clamp(1, MAX_RADIX_PARTITIONS).next_power_of_two();
    charge_probe(probe, metrics);
    if parts > 1 {
        return radix_join(build, probe, workers, parts, metrics, probe_partition_count)
            .into_iter()
            .sum();
    }
    let table = build_int_map(&gather_int_entries(build));
    if workers > 1 && probe.ids.len() >= PARALLEL_MIN_ROWS {
        let n_morsels = probe.ids.len().div_ceil(MORSEL_ROWS);
        let (counts, stats) = crate::scheduler::run_tasks(workers, n_morsels, |m| {
            let lo = m * MORSEL_ROWS;
            let hi = (lo + MORSEL_ROWS).min(probe.ids.len());
            count_morsel(&table, probe, lo, hi)
        });
        metrics.steals += stats.steals;
        counts.into_iter().sum()
    } else {
        count_morsel(&table, probe, 0, probe.ids.len())
    }
}

/// Charge the probe-side counters every int-path variant shares: one
/// `hash_probes` per probe row (NULLs included, like the row path) and one
/// `morsels` per probe morsel — the serial path reports the same morsel
/// count the parallel paths dispatch, so accounting is mode-independent.
fn charge_probe(probe: &IntKeys<'_>, metrics: &mut ExecMetrics) {
    metrics.hash_probes += probe.ids.len() as u64;
    metrics.morsels += probe.ids.len().div_ceil(MORSEL_ROWS) as u64;
}

/// All valid `(key, logical row)` entries of one side, in row order.
fn gather_int_entries(keys: &IntKeys<'_>) -> Vec<(i64, u32)> {
    keys.ids
        .iter()
        .enumerate()
        .filter(|&(_, &rid)| keys.valid[rid as usize])
        .map(|(j, &rid)| (keys.data[rid as usize], crate::error::rowid(j)))
        .collect()
}

/// The radix-partitioned parallel join core, generic over what a partition
/// probe produces (a pair list or a count). Three phases:
///
/// 1. the (small) build side is partitioned serially by the high bits of
///    [`int_key_mix`];
/// 2. the probe side is partitioned in parallel, one task per morsel, each
///    task filling its own per-partition buffers (no shared state to
///    contend on); buffers concatenate in morsel order, so every partition
///    sees its probe rows in ascending logical-row order;
/// 3. one task per partition builds that partition's private hash table
///    and probes it — no shared table, no cross-partition traffic.
///
/// Returns the per-partition probe results in partition order.
fn radix_join<T: Send>(
    build: &IntKeys<'_>,
    probe: &IntKeys<'_>,
    workers: usize,
    parts: usize,
    metrics: &mut ExecMetrics,
    probe_partition: fn(&IntMap, &[(i64, u32)]) -> T,
) -> Vec<T> {
    debug_assert!(parts.is_power_of_two() && parts > 1);
    let shift = 64 - parts.trailing_zeros();
    let mut bparts: Vec<Vec<(i64, u32)>> = vec![Vec::new(); parts];
    for (k, j) in gather_int_entries(build) {
        bparts[(int_key_mix(k) >> shift) as usize].push((k, j));
    }
    let n_morsels = probe.ids.len().div_ceil(MORSEL_ROWS);
    let (morsel_buffers, pstats) = crate::scheduler::run_tasks(workers, n_morsels, |m| {
        let lo = m * MORSEL_ROWS;
        let hi = (lo + MORSEL_ROWS).min(probe.ids.len());
        let mut buf: Vec<Vec<(i64, u32)>> = vec![Vec::new(); parts];
        for (off, &rid) in probe.ids[lo..hi].iter().enumerate() {
            if probe.valid[rid as usize] {
                let k = probe.data[rid as usize];
                buf[(int_key_mix(k) >> shift) as usize].push((k, crate::error::rowid(lo + off)));
            }
        }
        buf
    });
    let mut pparts: Vec<Vec<(i64, u32)>> = vec![Vec::new(); parts];
    for buf in morsel_buffers {
        for (p, mut rows) in buf.into_iter().enumerate() {
            pparts[p].append(&mut rows);
        }
    }
    let (results, jstats) = crate::scheduler::run_tasks(workers, parts, |p| {
        probe_partition(&build_int_map(&bparts[p]), &pparts[p])
    });
    metrics.partitions += parts as u64;
    metrics.steals += pstats.steals + jstats.steals;
    results
}

/// Per-partition probe producing `(build row, probe row)` pairs.
fn probe_partition_pairs(table: &IntMap, entries: &[(i64, u32)]) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for &(k, j) in entries {
        if let Some(ls) = table.get(&k) {
            for &lj in ls {
                pairs.push((lj, j));
            }
        }
    }
    pairs
}

/// Per-partition probe producing only the match count.
fn probe_partition_count(table: &IntMap, entries: &[(i64, u32)]) -> u64 {
    entries.iter().map(|(k, _)| table.get(k).map_or(0, |ls| ls.len() as u64)).sum()
}

/// Probe rows `lo..hi`, emitting `(build row, probe row)` logical pairs.
fn probe_morsel(table: &IntMap, probe: &IntKeys<'_>, lo: usize, hi: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for (off, &rid) in probe.ids[lo..hi].iter().enumerate() {
        if probe.valid[rid as usize] {
            if let Some(ls) = table.get(&probe.data[rid as usize]) {
                for &lj in ls {
                    pairs.push((lj, crate::error::rowid(lo + off)));
                }
            }
        }
    }
    pairs
}

/// Counting twin of [`probe_morsel`].
fn count_morsel(table: &IntMap, probe: &IntKeys<'_>, lo: usize, hi: usize) -> u64 {
    let mut n = 0u64;
    for &rid in &probe.ids[lo..hi] {
        if probe.valid[rid as usize] {
            if let Some(ls) = table.get(&probe.data[rid as usize]) {
                n += ls.len() as u64;
            }
        }
    }
    n
}

/// Vectorized sort-merge join on logical row ids; replicates the row
/// algorithm (stable key sorts, `n log n` sort charge, one comparison per
/// merge iteration, equal-run cross products) so counters and output order
/// match exactly.
fn vsort_merge(
    left: &VChunk,
    right: &VChunk,
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Vec<(u32, u32)>> {
    let lsides = side_keys(left, keys.iter().map(|&(l, _)| l))?;
    let rsides = side_keys(right, keys.iter().map(|&(_, r)| r))?;
    if let ([lk], [rk]) = (lsides.as_slice(), rsides.as_slice()) {
        if let (Some(ld), Some(rd)) = (lk.col.as_int_slice(), rk.col.as_int_slice()) {
            let l = IntKeys { data: ld, valid: lk.col.validity(), ids: lk.ids };
            let r = IntKeys { data: rd, valid: rk.col.validity(), ids: rk.ids };
            return Ok(int_sort_merge(&l, &r, metrics));
        }
    }
    let mut lrows = gather_sort_keys(&lsides, left.len())?;
    let mut rrows = gather_sort_keys(&rsides, right.len())?;
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_by(|a, b| cmp_key_slices(&a.0, &b.0));
    rrows.sort_by(|a, b| cmp_key_slices(&a.0, &b.0));
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() && j < rrows.len() {
        metrics.comparisons += 1;
        match cmp_key_slices(&lrows[i].0, &rrows[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut ie = i + 1;
                while ie < lrows.len() && cmp_key_slices(&lrows[ie].0, &lrows[i].0).is_eq() {
                    ie += 1;
                }
                let mut je = j + 1;
                while je < rrows.len() && cmp_key_slices(&rrows[je].0, &rrows[j].0).is_eq() {
                    je += 1;
                }
                for lrow in &lrows[i..ie] {
                    for rrow in &rrows[j..je] {
                        pairs.push((lrow.1, rrow.1));
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    Ok(pairs)
}

/// `i64` fast path of [`vsort_merge`]: sorts `(key, row)` pairs instead of
/// allocating `Vec<Value>` per row. `i64::cmp` orders identically to
/// `Value::total_cmp` on `Int`s, so the permutation (and every counter)
/// matches the generic algorithm.
fn int_sort_merge(l: &IntKeys<'_>, r: &IntKeys<'_>, metrics: &mut ExecMetrics) -> Vec<(u32, u32)> {
    let collect = |k: &IntKeys<'_>| -> Vec<(i64, u32)> {
        k.ids
            .iter()
            .enumerate()
            .filter(|&(_, &rid)| k.valid[rid as usize])
            .map(|(j, &rid)| (k.data[rid as usize], crate::error::rowid(j)))
            .collect()
    };
    let mut lrows = collect(l);
    let mut rrows = collect(r);
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_by_key(|e| e.0);
    rrows.sort_by_key(|e| e.0);
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() && j < rrows.len() {
        metrics.comparisons += 1;
        match lrows[i].0.cmp(&rrows[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut ie = i + 1;
                while ie < lrows.len() && lrows[ie].0 == lrows[i].0 {
                    ie += 1;
                }
                let mut je = j + 1;
                while je < rrows.len() && rrows[je].0 == rrows[j].0 {
                    je += 1;
                }
                for &(_, lj) in &lrows[i..ie] {
                    for &(_, rj) in &rrows[j..je] {
                        pairs.push((lj, rj));
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    pairs
}

/// Fused counting twin of [`vsort_merge`]: identical sorts, sort charges,
/// and merge loop, but an equal run contributes `|left run| * |right run|`
/// to a running count instead of materializing its cross product.
fn vsort_merge_count(
    left: &VChunk,
    right: &VChunk,
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<u64> {
    let lsides = side_keys(left, keys.iter().map(|&(l, _)| l))?;
    let rsides = side_keys(right, keys.iter().map(|&(_, r)| r))?;
    if let ([lk], [rk]) = (lsides.as_slice(), rsides.as_slice()) {
        if let (Some(ld), Some(rd)) = (lk.col.as_int_slice(), rk.col.as_int_slice()) {
            let l = IntKeys { data: ld, valid: lk.col.validity(), ids: lk.ids };
            let r = IntKeys { data: rd, valid: rk.col.validity(), ids: rk.ids };
            return Ok(int_sort_merge_count(&l, &r, metrics));
        }
    }
    let mut lrows = gather_sort_keys(&lsides, left.len())?;
    let mut rrows = gather_sort_keys(&rsides, right.len())?;
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_by(|a, b| cmp_key_slices(&a.0, &b.0));
    rrows.sort_by(|a, b| cmp_key_slices(&a.0, &b.0));
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    let mut n = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() && j < rrows.len() {
        metrics.comparisons += 1;
        match cmp_key_slices(&lrows[i].0, &rrows[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut ie = i + 1;
                while ie < lrows.len() && cmp_key_slices(&lrows[ie].0, &lrows[i].0).is_eq() {
                    ie += 1;
                }
                let mut je = j + 1;
                while je < rrows.len() && cmp_key_slices(&rrows[je].0, &rrows[j].0).is_eq() {
                    je += 1;
                }
                n += ((ie - i) * (je - j)) as u64;
                i = ie;
                j = je;
            }
        }
    }
    Ok(n)
}

/// `i64` fast path of [`vsort_merge_count`] (see [`int_sort_merge`]).
fn int_sort_merge_count(l: &IntKeys<'_>, r: &IntKeys<'_>, metrics: &mut ExecMetrics) -> u64 {
    let collect = |k: &IntKeys<'_>| -> Vec<i64> {
        k.ids
            .iter()
            .filter(|&&rid| k.valid[rid as usize])
            .map(|&rid| k.data[rid as usize])
            .collect()
    };
    let mut lrows = collect(l);
    let mut rrows = collect(r);
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_unstable();
    rrows.sort_unstable();
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    let mut n = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() && j < rrows.len() {
        metrics.comparisons += 1;
        match lrows[i].cmp(&rrows[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut ie = i + 1;
                while ie < lrows.len() && lrows[ie] == lrows[i] {
                    ie += 1;
                }
                let mut je = j + 1;
                while je < rrows.len() && rrows[je] == rrows[j] {
                    je += 1;
                }
                n += ((ie - i) * (je - j)) as u64;
                i = ie;
                j = je;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

    fn int_keys_table(name: &str, rows: usize, modulo: i64) -> Arc<Table> {
        let t = TableSpec::new(name, rows)
            .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi: modulo }))
            .generate(rows as u64);
        Arc::new(t)
    }

    #[test]
    fn parallel_probe_matches_serial_and_counts_morsels() {
        let build = int_keys_table("b", 500, 400);
        let probe = int_keys_table("p", 3 * PARALLEL_MIN_ROWS, 400);
        let bids: Vec<u32> = (0..build.num_rows() as u32).collect();
        let pids: Vec<u32> = (0..probe.num_rows() as u32).collect();
        let bcol = build.column(0).unwrap();
        let pcol = probe.column(0).unwrap();
        let bk = IntKeys { data: bcol.as_int_slice().unwrap(), valid: bcol.validity(), ids: &bids };
        let pk = IntKeys { data: pcol.as_int_slice().unwrap(), valid: pcol.validity(), ids: &pids };
        let mut serial_m = ExecMetrics::default();
        let serial = int_hash_join(&bk, &pk, 1, &mut serial_m);
        for workers in [2, 3, 8] {
            let mut par_m = ExecMetrics::default();
            let parallel = int_hash_join(&bk, &pk, workers, &mut par_m);
            assert_eq!(parallel, serial, "workers={workers}");
            assert_eq!(par_m.morsels, (pids.len().div_ceil(MORSEL_ROWS)) as u64);
            assert_eq!(par_m.hash_probes, serial_m.hash_probes);
        }
        assert_eq!(
            serial_m.morsels,
            (pids.len().div_ceil(MORSEL_ROWS)) as u64,
            "serial probe reports the same morsel count the parallel paths dispatch"
        );
    }

    #[test]
    fn parallel_band_probe_matches_serial_and_counts_morsels() {
        // Outer side large enough to trip the morsel-parallel path; keys
        // drawn from a narrow domain so bands overlap heavily.
        let louter = int_keys_table("l", 2 * PARALLEL_MIN_ROWS, 300);
        let rinner = int_keys_table("r", 700, 300);
        let lv = VChunk::scan(0, Arc::clone(&louter), (0..louter.num_rows() as u32).collect());
        let rv = VChunk::scan(1, Arc::clone(&rinner), (0..rinner.num_rows() as u32).collect());
        let ranges = vec![(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0))];
        let mut serial_m = ExecMetrics::default();
        let serial = vrange_join(&lv, &rv, &ranges, 1, &mut serial_m).unwrap();
        assert!(!serial.is_empty());
        assert_eq!(serial_m.morsels, (louter.num_rows().div_ceil(MORSEL_ROWS)) as u64);
        for workers in [2, 3, 8] {
            let mut par_m = ExecMetrics::default();
            let parallel = vrange_join(&lv, &rv, &ranges, workers, &mut par_m).unwrap();
            assert_eq!(parallel, serial, "workers={workers}");
            assert_eq!(par_m.morsels, serial_m.morsels, "workers={workers}");
            assert_eq!(par_m.comparisons, serial_m.comparisons, "workers={workers}");
            assert_eq!(par_m.rows_sorted, serial_m.rows_sorted, "workers={workers}");
        }
    }

    #[test]
    fn radix_fanout_decision_respects_floors_and_caps() {
        assert_eq!(radix_partitions(100_000, 100_000, 1), 1, "one worker never partitions");
        assert_eq!(radix_partitions(100_000, PARALLEL_MIN_ROWS - 1, 8), 1, "small probe");
        assert_eq!(radix_partitions(1000, 100_000, 8), 1, "tiny build: shared-table probe wins");
        assert_eq!(radix_partitions(8 * 2048, 100_000, 2), 8);
        assert_eq!(radix_partitions(1 << 20, 1 << 20, 64), MAX_RADIX_PARTITIONS);
    }

    #[test]
    fn radix_fanout_never_exceeds_workers_times_four() {
        // Regression: next_power_of_two applied after min(workers*4) used
        // to round past the cap (workers=3 → cap 12 → returned 16).
        for workers in [2usize, 3, 5, 6, 7, 9, 11, 13] {
            for build in [2048usize, 6 * 2048, 12 * 2048, 1 << 20] {
                let parts = radix_partitions(build, 1 << 20, workers);
                assert!(
                    parts <= workers * 4,
                    "workers={workers} build={build}: {parts} > {} (cap)",
                    workers * 4
                );
                assert!(parts.is_power_of_two(), "workers={workers} build={build}: {parts}");
                assert!(parts <= MAX_RADIX_PARTITIONS);
            }
        }
        // The specific case from the report.
        assert_eq!(radix_partitions(1 << 20, 1 << 20, 3), 8, "workers=3 caps at 12, rounds to 8");
    }

    #[test]
    fn radix_join_and_count_match_single_partition_for_any_fanout() {
        // Handmade keys with interleaved NULLs so validity filtering is
        // exercised on both sides and in the partitioning pass.
        let bdata: Vec<i64> = (0..600).map(|i| i % 97).collect();
        let bvalid: Vec<bool> = (0..600).map(|i| i % 13 != 0).collect();
        let pdata: Vec<i64> = (0..3 * PARALLEL_MIN_ROWS as i64).map(|i| i % 97).collect();
        let pvalid: Vec<bool> = (0..pdata.len()).map(|i| i % 7 != 0).collect();
        let bids: Vec<u32> = (0..bdata.len() as u32).collect();
        let pids: Vec<u32> = (0..pdata.len() as u32).collect();
        let bk = IntKeys { data: &bdata, valid: &bvalid, ids: &bids };
        let pk = IntKeys { data: &pdata, valid: &pvalid, ids: &pids };
        let mut base_m = ExecMetrics::default();
        let base = int_hash_join_with(&bk, &pk, 1, 1, &mut base_m);
        assert!(!base.is_empty());
        for workers in [1, 2, 3, 8] {
            for parts in [1, 4, 64] {
                let ctx = format!("workers={workers} parts={parts}");
                let mut m = ExecMetrics::default();
                let pairs = int_hash_join_with(&bk, &pk, workers, parts, &mut m);
                assert_eq!(pairs, base, "{ctx}");
                let mut cm = ExecMetrics::default();
                let n = int_hash_count_with(&bk, &pk, workers, parts, &mut cm);
                assert_eq!(n, base.len() as u64, "{ctx}");
                for metrics in [&m, &cm] {
                    assert_eq!(metrics.hash_probes, base_m.hash_probes, "{ctx}");
                    assert_eq!(metrics.morsels, base_m.morsels, "{ctx}");
                    let want_parts = if parts > 1 { parts as u64 } else { 0 };
                    assert_eq!(metrics.partitions, want_parts, "{ctx}");
                }
            }
        }
    }

    #[test]
    fn radix_join_handles_empty_and_all_null_sides() {
        let pdata: Vec<i64> = (0..2 * PARALLEL_MIN_ROWS as i64).collect();
        let pvalid = vec![true; pdata.len()];
        let pids: Vec<u32> = (0..pdata.len() as u32).collect();
        let pk = IntKeys { data: &pdata, valid: &pvalid, ids: &pids };
        let empty = IntKeys { data: &[], valid: &[], ids: &[] };
        let nulls_data = vec![7i64; 100];
        let nulls_valid = vec![false; 100];
        let nulls_ids: Vec<u32> = (0..100).collect();
        let nulls = IntKeys { data: &nulls_data, valid: &nulls_valid, ids: &nulls_ids };
        for workers in [1, 2, 8] {
            for parts in [1, 4, 64] {
                let mut m = ExecMetrics::default();
                assert!(int_hash_join_with(&empty, &pk, workers, parts, &mut m).is_empty());
                assert_eq!(int_hash_count_with(&empty, &pk, workers, parts, &mut m), 0);
                assert!(int_hash_join_with(&nulls, &pk, workers, parts, &mut m).is_empty());
                assert_eq!(int_hash_count_with(&nulls, &pk, workers, parts, &mut m), 0);
                assert!(int_hash_join_with(&pk, &empty, workers, parts, &mut m).is_empty());
                assert_eq!(int_hash_count_with(&pk, &nulls, workers, parts, &mut m), 0);
            }
        }
    }

    #[test]
    fn int_hasher_spreads_sequential_keys() {
        let mut buckets = std::collections::HashSet::new();
        for k in 0..1000i64 {
            let mut h = IntHasher::default();
            h.write_i64(k);
            buckets.insert(h.finish() % 64);
        }
        assert_eq!(buckets.len(), 64, "sequential keys must not cluster");
    }
}
