//! Lock-order deadlock detection over the `els_core::sync` lock classes.
//!
//! The committed total order lives in one place — the `LOCK_ORDER` const
//! in `crates/core/src/sync.rs` — and this pass parses it *from the token
//! stream*, so the lint and the runtime `els_lock_audit` shim can never
//! disagree about the order they enforce.
//!
//! The analysis: every `lock_recovering`/`read_recovering`/
//! `write_recovering` call site is an acquisition of the lock class named
//! by its file stem (classes are `<file stem>.<field>`; a site in a file
//! with no class is a violation, keeping acquisitions confined to their
//! defining modules). For each site the pass computes a *held range* from
//! Rust 2021 temporary-scope rules:
//!
//! * `let g = lock_recovering(&x);` — held to `drop(g)` or the end of the
//!   enclosing block;
//! * `lock_recovering(&x).f().g();` as a plain statement — the guard is a
//!   temporary, dropped at the `;` (or the end of a tail expression);
//! * an acquisition in an `if let`/`while let`/`match` scrutinee — held
//!   through the construct's final `}` (including `else` chains), the
//!   pre-2024 temporary-lifetime rule this workspace compiles under.
//!
//! Another acquisition inside a held range — directly, or transitively
//! through any call-graph path — is an edge `held class -> acquired
//! class`. Every edge must run strictly forward in `LOCK_ORDER`
//! (self-edges are re-entrant acquisition, a deadlock with `std` locks);
//! a cycle among classes is a **hard error** that no baseline can absorb.
//! Closures and trait objects the call graph cannot see are covered by
//! the runtime audit shim during `cargo test`.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::lexer::TokenKind;
use crate::passes::{Lint, Violation};
use crate::symbols::{ParsedFile, SymbolTable};
use crate::HardError;

/// Where the order is declared.
pub const SYNC_FILE: &str = "crates/core/src/sync.rs";

/// The acquisition helpers, the only legal way to take an engine lock
/// (the `panic-freedom` lint already bans raw `.lock().unwrap()`).
const ACQUIRE_FNS: &[&str] = &["lock_recovering", "read_recovering", "write_recovering"];

/// One held-while-acquiring edge, for the JSON report.
#[derive(Debug, Clone, PartialEq)]
pub struct LockEdge {
    /// Class held at the time.
    pub from: String,
    /// Class being acquired.
    pub to: String,
    /// Witness file / line of the inner acquisition or call.
    pub file: String,
    /// Witness line.
    pub line: u32,
    /// How the inner acquisition happens: `direct` or `call to <fn>`.
    pub via: String,
}

struct Site {
    file_idx: usize,
    ci: usize,
    fn_id: usize,
    rank: usize,
    line: u32,
}

/// Run the pass. Returns `(declared order, edges)` for the JSON report.
pub fn run(
    files: &[ParsedFile],
    table: &SymbolTable,
    graph: &CallGraph,
    violations: &mut Vec<Violation>,
    hard_errors: &mut Vec<HardError>,
) -> (Vec<String>, Vec<LockEdge>) {
    let Some(order) = parse_lock_order(files) else {
        hard_errors.push(HardError {
            file: SYNC_FILE.to_string(),
            line: 0,
            message: "could not parse the LOCK_ORDER const from els_core::sync; the lock-order \
                      pass has no order to check against"
                .to_string(),
        });
        return (Vec::new(), Vec::new());
    };

    // Collect acquisition sites, classifying each by its file stem.
    let mut sites: Vec<Site> = Vec::new();
    for (file_idx, pf) in files.iter().enumerate() {
        if pf.source.rel_path == SYNC_FILE {
            continue; // the definitions themselves
        }
        for ci in 0..pf.code.len() {
            let Some(tok) = pf.tok(ci) else { continue };
            if tok.kind != TokenKind::Ident
                || !ACQUIRE_FNS.contains(&tok.text.as_str())
                || !pf.is_punct(ci + 1, '(')
                || (ci > 0 && pf.text(ci - 1) == "fn")
            {
                continue;
            }
            let Some(fn_id) = table.fn_at[file_idx][ci] else { continue };
            let stem = pf.source.rel_path.rsplit('/').next().and_then(|f| f.strip_suffix(".rs"));
            let rank = stem.and_then(|s| {
                order.iter().position(|c| c.split_once('.').is_some_and(|(cs, _)| cs == s))
            });
            match rank {
                Some(rank) => sites.push(Site { file_idx, ci, fn_id, rank, line: tok.line }),
                None => violations.push(Violation {
                    lint: Lint::LockOrder,
                    file: pf.source.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{}` in a file with no LOCK_ORDER class: engine locks are acquired \
                         only from their defining module (add a `<file stem>.<field>` class \
                         to els_core::sync::LOCK_ORDER if this is a new lock)",
                        tok.text
                    ),
                    suppressed: false,
                }),
            }
        }
    }

    // Transitive may-acquire set per function (fixpoint over the graph,
    // which may contain recursion).
    let mut acquires: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); table.fns.len()];
    for s in &sites {
        acquires[s.fn_id].insert(s.rank);
    }
    loop {
        let mut changed = false;
        for f in 0..table.fns.len() {
            for &g in &graph.callees[f] {
                let add: Vec<usize> =
                    acquires[g].iter().copied().filter(|r| !acquires[f].contains(r)).collect();
                if !add.is_empty() {
                    acquires[f].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Held ranges: direct inner acquisitions and calls inside them.
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut add_edge = |from: usize, to: usize, file: &str, line: u32, via: String| {
        let e = LockEdge {
            from: order[from].clone(),
            to: order[to].clone(),
            file: file.to_string(),
            line,
            via,
        };
        if !edges.iter().any(|x| x.from == e.from && x.to == e.to) {
            edges.push(e);
        }
    };
    for s in &sites {
        let pf = &files[s.file_idx];
        let Some(body) = table.fns[s.fn_id].body else { continue };
        let end = held_range_end(pf, body, s.ci);
        for other in sites.iter().filter(|o| o.file_idx == s.file_idx) {
            if other.ci > s.ci && other.ci <= end {
                add_edge(s.rank, other.rank, &pf.source.rel_path, other.line, "direct".to_string());
            }
        }
        for call in graph.calls.iter().filter(|c| c.file_idx == s.file_idx) {
            if call.ci > s.ci && call.ci <= end {
                for &r in &acquires[call.callee] {
                    add_edge(
                        s.rank,
                        r,
                        &pf.source.rel_path,
                        call.line,
                        format!("call to {}", table.fns[call.callee].qualified()),
                    );
                }
            }
        }
    }
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));

    // Every edge must run strictly forward in the declared order.
    for e in &edges {
        let (from, to) = (rank_of(&order, &e.from), rank_of(&order, &e.to));
        if from >= to {
            violations.push(Violation {
                lint: Lint::LockOrder,
                file: e.file.clone(),
                line: e.line,
                col: 1,
                message: if from == to {
                    format!(
                        "re-entrant acquisition of lock class `{}` ({}): std locks are not \
                         re-entrant, this deadlocks",
                        e.from, e.via
                    )
                } else {
                    format!(
                        "lock-order edge `{}` -> `{}` ({}) runs backwards in \
                         els_core::sync::LOCK_ORDER",
                        e.from, e.to, e.via
                    )
                },
                suppressed: false,
            });
        }
    }

    // Cycles can never be baselined away: hard error.
    if let Some(cycle) = find_cycle(&order, &edges) {
        hard_errors.push(HardError {
            file: SYNC_FILE.to_string(),
            line: 0,
            message: format!(
                "lock acquisition cycle: {} — no total order can serialize this; break the \
                 cycle before shipping",
                cycle.join(" -> ")
            ),
        });
    }

    (order, edges)
}

fn rank_of(order: &[String], class: &str) -> usize {
    order.iter().position(|c| c == class).unwrap_or(usize::MAX)
}

/// Parse `pub const LOCK_ORDER: &[&str] = &["a.b", ...];` from the sync
/// module's tokens.
fn parse_lock_order(files: &[ParsedFile]) -> Option<Vec<String>> {
    let pf = files.iter().find(|f| f.source.rel_path == SYNC_FILE)?;
    let name = (0..pf.code.len()).find(|&ci| pf.text(ci) == "LOCK_ORDER")?;
    // Skip past the `&[&str] =` type annotation: its `]` would otherwise
    // end the scan before the initializer starts.
    let start = (name..pf.code.len()).find(|&ci| pf.is_punct(ci, '='))?;
    let mut order = Vec::new();
    for ci in start..pf.code.len() {
        match pf.tok(ci)?.kind {
            TokenKind::Str => {
                order.push(pf.text(ci).trim_matches('"').to_string());
            }
            TokenKind::Punct(']') => break,
            TokenKind::Punct(';') => break,
            _ => {}
        }
    }
    (!order.is_empty()).then_some(order)
}

/// End (inclusive, code-index) of the range over which the guard acquired
/// at `site_ci` is held. Bounded by the enclosing fn body.
fn held_range_end(pf: &ParsedFile, body: (usize, usize), site_ci: usize) -> usize {
    let (_, body_end) = body;
    let close = match matching_paren(pf, site_ci + 1, body_end) {
        Some(c) => c,
        None => return site_ci,
    };
    let stmt = statement_start(pf, body, site_ci);
    let first = pf.text(stmt);
    let second = pf.text(stmt + 1);

    // `match x { ... }`, `if let`/`while let` — the scrutinee temporary
    // lives through the whole construct (Rust 2021), `else` chain included.
    if first == "match" || ((first == "if" || first == "while") && second == "let") {
        return construct_end(pf, stmt, body_end);
    }
    // Plain `if cond { }` / `while cond { }` — condition temporaries drop
    // before the block: held only to the body `{`.
    if first == "if" || first == "while" {
        let mut j = close + 1;
        while j <= body_end && !pf.is_punct(j, '{') {
            j += 1;
        }
        return j.min(body_end);
    }
    // `let g = lock_recovering(&x);` — the guard itself is bound.
    if first == "let" && pf.is_punct(close + 1, ';') {
        // The bound name: `let [mut] g = ...`. Destructuring patterns fall
        // back to block scope (no drop() tracking).
        let mut k = stmt + 1;
        if pf.text(k) == "mut" {
            k += 1;
        }
        let bound = pf.tok(k).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.clone());
        let block_end = enclosing_block_end(pf, close, body_end);
        if let Some(name) = bound {
            let mut j = close + 1;
            while j < block_end {
                if pf.text(j) == "drop"
                    && pf.is_punct(j + 1, '(')
                    && pf.text(j + 2) == name
                    && pf.is_punct(j + 3, ')')
                {
                    return j + 3;
                }
                j += 1;
            }
        }
        return block_end;
    }
    // Everything else — the guard is a temporary in some larger
    // expression/statement: dropped at the statement's `;` (or the end of
    // the enclosing block for a tail expression).
    let mut j = close + 1;
    let mut depth = 0i32;
    while j <= body_end {
        match pf.tok(j).map(|t| t.kind) {
            Some(TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[')) => {
                depth += 1
            }
            Some(TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']')) => {
                if depth == 0 {
                    return j; // tail expression: ends with the block
                }
                depth -= 1;
            }
            Some(TokenKind::Punct(';')) if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    body_end
}

/// Code-index of the matching `)` for the `(` at `open`, bounded.
fn matching_paren(pf: &ParsedFile, open: usize, limit: usize) -> Option<usize> {
    if !pf.is_punct(open, '(') {
        return None;
    }
    let mut depth = 0i32;
    for j in open..=limit {
        match pf.tok(j)?.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// First code-index of the statement containing `ci`: scan back to the
/// previous `;`, `{` or `}` at the statement's own nesting level.
fn statement_start(pf: &ParsedFile, body: (usize, usize), ci: usize) -> usize {
    let (body_start, _) = body;
    let (mut pdepth, mut bdepth, mut brdepth) = (0i32, 0i32, 0i32);
    let mut j = ci;
    while j > body_start {
        j -= 1;
        match pf.tok(j).map(|t| t.kind) {
            Some(TokenKind::Punct(')')) => pdepth += 1,
            Some(TokenKind::Punct('(')) => pdepth -= 1,
            Some(TokenKind::Punct(']')) => bdepth += 1,
            Some(TokenKind::Punct('[')) => bdepth -= 1,
            Some(TokenKind::Punct('}')) => brdepth += 1,
            Some(TokenKind::Punct('{')) => {
                if brdepth == 0 {
                    return j + 1;
                }
                brdepth -= 1;
            }
            Some(TokenKind::Punct(';')) if pdepth <= 0 && bdepth <= 0 && brdepth == 0 => {
                return j + 1;
            }
            _ => {}
        }
    }
    body_start + 1
}

/// End of the `if`/`while`/`match` construct starting at `stmt`: the `}`
/// closing its (last) block, following `else` chains.
fn construct_end(pf: &ParsedFile, stmt: usize, body_end: usize) -> usize {
    let mut j = stmt;
    loop {
        // Find the block opener of this arm.
        while j <= body_end && !pf.is_punct(j, '{') {
            j += 1;
        }
        let mut depth = 0i32;
        while j <= body_end {
            match pf.tok(j).map(|t| t.kind) {
                Some(TokenKind::Punct('{')) => depth += 1,
                Some(TokenKind::Punct('}')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if pf.text(j + 1) == "else" {
            j += 2; // scan on through the else / else-if arm
            continue;
        }
        return j.min(body_end);
    }
}

/// The innermost block's closing `}` after `from` (depth-aware), bounded.
fn enclosing_block_end(pf: &ParsedFile, from: usize, body_end: usize) -> usize {
    let mut depth = 0i32;
    for j in from..=body_end {
        match pf.tok(j).map(|t| t.kind) {
            Some(TokenKind::Punct('{')) => depth += 1,
            Some(TokenKind::Punct('}')) => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    body_end
}

/// DFS cycle search over the class graph; returns the cycle's class names.
fn find_cycle(order: &[String], edges: &[LockEdge]) -> Option<Vec<String>> {
    let n = order.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        let (a, b) = (rank_of(order, &e.from), rank_of(order, &e.to));
        if a < n && b < n {
            adj[a].push(b);
        }
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    let mut stack: Vec<usize> = Vec::new();
    fn dfs(
        v: usize,
        adj: &[Vec<usize>],
        state: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state[v] = 1;
        stack.push(v);
        for &w in &adj[v] {
            match state[w] {
                0 => {
                    if let Some(c) = dfs(w, adj, state, stack) {
                        return Some(c);
                    }
                }
                1 => {
                    let from = stack.iter().position(|&x| x == w).unwrap_or(0);
                    let mut cycle: Vec<usize> = stack[from..].to_vec();
                    cycle.push(w);
                    return Some(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        state[v] = 2;
        None
    }
    for v in 0..n {
        if state[v] == 0 {
            if let Some(cycle) = dfs(v, &adj, &mut state, &mut stack) {
                return Some(cycle.into_iter().map(|i| order[i].clone()).collect());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    const SYNC_SRC: &str = "pub const LOCK_ORDER: &[&str] = &[\n\
        \"alpha.state\",\n    \"beta.items\",\n    \"gamma.map\",\n];\n\
        pub fn lock_recovering() {}\npub fn read_recovering() {}\npub fn write_recovering() {}";

    fn run_on(srcs: &[(&str, &str)]) -> (Vec<Violation>, Vec<HardError>, Vec<LockEdge>) {
        let mut all = vec![("els-core".to_string(), SYNC_FILE.to_string(), SYNC_SRC.to_string())];
        all.extend(
            srcs.iter().map(|(p, s)| ("els-core".to_string(), p.to_string(), s.to_string())),
        );
        let files: Vec<ParsedFile> =
            all.iter().map(|(k, p, s)| ParsedFile::new(k, SourceFile::parse(p, s))).collect();
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);
        let (mut violations, mut hard) = (Vec::new(), Vec::new());
        let (_, edges) = run(&files, &table, &graph, &mut violations, &mut hard);
        (violations, hard, edges)
    }

    #[test]
    fn forward_direct_edge_is_legal() {
        let (v, h, e) = run_on(&[
            (
                "crates/core/src/alpha.rs",
                "fn f(a: &M, b: &M) { let g = lock_recovering(a); beta_helper(b); }",
            ),
            (
                "crates/core/src/beta.rs",
                "pub fn beta_helper(b: &M) { let g = lock_recovering(b); }",
            ),
        ]);
        assert_eq!(v, vec![]);
        assert_eq!(h, vec![]);
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].from.as_str(), e[0].to.as_str()), ("alpha.state", "beta.items"));
        assert!(e[0].via.contains("beta_helper"));
    }

    #[test]
    fn backward_edge_is_a_violation_and_cycle_is_a_hard_error() {
        let (v, h, _) = run_on(&[
            (
                "crates/core/src/beta.rs",
                "pub fn b_then_a(b: &M, a: &M) { let g = lock_recovering(b); alpha_helper(a); }",
            ),
            (
                "crates/core/src/alpha.rs",
                "pub fn alpha_helper(a: &M) { let g = lock_recovering(a); }\n\
                 pub fn a_then_b(a: &M, b: &M) { let g = lock_recovering(a); b_then_a(b, a); }",
            ),
        ]);
        assert!(v.iter().any(|v| v.message.contains("runs backwards")), "{v:?}");
        assert!(h.iter().any(|e| e.message.contains("cycle")), "{h:?}");
    }

    #[test]
    fn temporary_guard_releases_at_the_semicolon() {
        // The guard is a temporary (`.pop()` chained): dropped at `;`, so
        // the following call is NOT under the lock.
        let (v, _, e) = run_on(&[
            (
                "crates/core/src/beta.rs",
                "fn f(b: &M, a: &M) { let x = lock_recovering(b).pop(); alpha_helper(a); }",
            ),
            (
                "crates/core/src/alpha.rs",
                "pub fn alpha_helper(a: &M) { let g = lock_recovering(a); }",
            ),
        ]);
        assert_eq!(e, vec![]);
        assert_eq!(v, vec![]);
    }

    #[test]
    fn if_let_scrutinee_holds_through_the_construct() {
        // Rust 2021: the scrutinee temporary lives through the whole
        // if-let, so a call inside the body IS under the lock.
        let (v, _, e) = run_on(&[
            (
                "crates/core/src/beta.rs",
                "fn f(b: &M, a: &M) { if let Some(t) = lock_recovering(b).pop() { alpha_helper(a); } tail(a); }",
            ),
            ("crates/core/src/alpha.rs", "pub fn alpha_helper(a: &M) { let g = lock_recovering(a); }"),
        ]);
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!((e[0].from.as_str(), e[0].to.as_str()), ("beta.items", "alpha.state"));
        // Forward in the order? beta(1) -> alpha(0) runs backwards.
        assert!(v.iter().any(|v| v.message.contains("runs backwards")));
    }

    #[test]
    fn drop_releases_a_let_bound_guard() {
        let (_, _, e) = run_on(&[
            (
                "crates/core/src/beta.rs",
                "fn f(b: &M, a: &M) { let g = lock_recovering(b); use_it(&g); drop(g); alpha_helper(a); }",
            ),
            ("crates/core/src/alpha.rs", "pub fn alpha_helper(a: &M) { let g = lock_recovering(a); }"),
        ]);
        assert_eq!(e, vec![]);
    }

    #[test]
    fn reentrant_acquisition_is_flagged() {
        let (v, _, e) = run_on(&[(
            "crates/core/src/alpha.rs",
            "fn f(a: &M, b: &M) { let g = lock_recovering(a); let h = lock_recovering(b); }",
        )]);
        assert_eq!(e.len(), 1);
        assert!(v.iter().any(|v| v.message.contains("re-entrant")), "{v:?}");
    }

    #[test]
    fn unclassified_file_is_a_violation() {
        let (v, _, _) = run_on(&[(
            "crates/core/src/mystery.rs",
            "fn f(m: &M) { let g = lock_recovering(m); }",
        )]);
        assert!(v.iter().any(|v| v.message.contains("no LOCK_ORDER class")), "{v:?}");
    }

    #[test]
    fn lock_order_is_parsed_from_the_sync_tokens() {
        let (_, h, _) = run_on(&[]);
        assert_eq!(h, vec![]);
    }
}
