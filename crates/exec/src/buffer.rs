//! An LRU buffer pool simulation.
//!
//! The paper's experiment ran "using the same buffer size" for every plan
//! (Section 8): part of a nested-loops rescan is absorbed by the buffer
//! whenever the inner relation fits. This module simulates exactly that: a
//! fixed-capacity LRU cache of `(table, page)` identifiers. The executor
//! threads a [`PageIo`] through every *base-table* access; logical page
//! reads are always counted ([`crate::ExecMetrics::pages_read`]) while
//! *physical* reads ([`crate::ExecMetrics::physical_pages_read`]) are only
//! charged on buffer misses.
//!
//! Note the classic LRU pathology this makes visible: repeated sequential
//! scans of a relation **larger** than the buffer miss on every page
//! (sequential flooding), so an unindexed giant inner is just as
//! catastrophic as with no buffer at all — while an inner that fits is read
//! once. Experiment F8 sweeps this boundary.

use std::collections::{BTreeMap, HashMap};

/// A fixed-capacity LRU cache over `(table, page)` identifiers.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    /// page -> last-use stamp.
    stamps: HashMap<(usize, u64), u64>,
    /// last-use stamp -> page (stamps are unique).
    order: BTreeMap<u64, (usize, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// A pool holding `capacity` pages (0 caches nothing — every access
    /// misses).
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity,
            stamps: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touch one page; returns `true` on a hit.
    pub fn access(&mut self, table: usize, page: u64) -> bool {
        self.clock += 1;
        let key = (table, page);
        if let Some(old) = self.stamps.get(&key).copied() {
            self.order.remove(&old);
            self.order.insert(self.clock, key);
            self.stamps.insert(key, self.clock);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.stamps.len() >= self.capacity {
            // Evict the least recently used page.
            if let Some((&stamp, &victim)) = self.order.iter().next() {
                self.order.remove(&stamp);
                self.stamps.remove(&victim);
            }
        }
        self.order.insert(self.clock, key);
        self.stamps.insert(key, self.clock);
        false
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.stamps.len()
    }

    /// Accesses that hit the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Accesses that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The page-I/O path handed to base-table accesses: counts logical reads
/// always, physical reads only on misses (or always, with no pool).
#[derive(Debug, Default)]
pub struct PageIo {
    /// The optional buffer pool; `None` means every logical read is
    /// physical (the pre-buffer behaviour).
    pub pool: Option<BufferPool>,
}

impl PageIo {
    /// An I/O path without buffering.
    pub fn unbuffered() -> PageIo {
        PageIo { pool: None }
    }

    /// An I/O path with an LRU pool of `capacity` pages.
    pub fn with_pool(capacity: usize) -> PageIo {
        PageIo { pool: Some(BufferPool::new(capacity)) }
    }

    /// Read pages `0..pages` of `table` sequentially (a full scan or one
    /// nested-loops rescan pass).
    pub fn scan_table(
        &mut self,
        table: usize,
        pages: u64,
        metrics: &mut crate::metrics::ExecMetrics,
    ) {
        metrics.pages_read += pages;
        match &mut self.pool {
            None => metrics.physical_pages_read += pages,
            Some(pool) => {
                for p in 0..pages {
                    if !pool.access(table, p) {
                        metrics.physical_pages_read += 1;
                    }
                }
            }
        }
    }

    /// Read one specific page of `table` (an index probe landing on a data
    /// page).
    pub fn read_page(
        &mut self,
        table: usize,
        page: u64,
        metrics: &mut crate::metrics::ExecMetrics,
    ) {
        metrics.pages_read += 1;
        match &mut self.pool {
            None => metrics.physical_pages_read += 1,
            Some(pool) => {
                if !pool.access(table, page) {
                    metrics.physical_pages_read += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;

    #[test]
    fn hits_and_misses() {
        let mut p = BufferPool::new(2);
        assert!(!p.access(0, 1)); // miss
        assert!(!p.access(0, 2)); // miss
        assert!(p.access(0, 1)); // hit
        assert!(!p.access(0, 3)); // miss, evicts page 2 (LRU)
        assert!(p.access(0, 1)); // still resident
        assert!(!p.access(0, 2)); // was evicted
        assert_eq!(p.hits(), 2);
        assert_eq!(p.misses(), 4);
        assert_eq!(p.resident(), 2);
    }

    #[test]
    fn tables_do_not_collide() {
        let mut p = BufferPool::new(4);
        assert!(!p.access(0, 1));
        assert!(!p.access(1, 1));
        assert!(p.access(0, 1));
        assert!(p.access(1, 1));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut p = BufferPool::new(0);
        assert!(!p.access(0, 1));
        assert!(!p.access(0, 1));
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn fitting_relation_is_read_once_across_rescans() {
        // 10-page table, 16-page pool, 5 sequential rescans: 10 physical
        // reads total.
        let mut io = PageIo::with_pool(16);
        let mut m = ExecMetrics::default();
        for _ in 0..5 {
            io.scan_table(7, 10, &mut m);
        }
        assert_eq!(m.pages_read, 50);
        assert_eq!(m.physical_pages_read, 10);
    }

    #[test]
    fn sequential_flooding_defeats_a_small_pool() {
        // 20-page table, 10-page pool, repeated sequential scans: classic
        // LRU flooding — every access misses.
        let mut io = PageIo::with_pool(10);
        let mut m = ExecMetrics::default();
        for _ in 0..3 {
            io.scan_table(7, 20, &mut m);
        }
        assert_eq!(m.pages_read, 60);
        assert_eq!(m.physical_pages_read, 60);
    }

    #[test]
    fn unbuffered_is_all_physical() {
        let mut io = PageIo::unbuffered();
        let mut m = ExecMetrics::default();
        io.scan_table(0, 7, &mut m);
        io.read_page(0, 3, &mut m);
        assert_eq!(m.pages_read, 8);
        assert_eq!(m.physical_pages_read, 8);
    }

    #[test]
    fn point_reads_cache() {
        let mut io = PageIo::with_pool(4);
        let mut m = ExecMetrics::default();
        io.read_page(0, 3, &mut m);
        io.read_page(0, 3, &mut m);
        assert_eq!(m.pages_read, 2);
        assert_eq!(m.physical_pages_read, 1);
    }
}
