//! Skewed (Zipf) data: distribution statistics vs the uniformity model.
//!
//! The paper's Section 5 allows local-predicate selectivities to come from
//! distribution statistics; its Section 9 names Zipfian data as the
//! important case the uniformity assumption mishandles. This example
//! generates a Zipf(1.2) column, compares local-predicate selectivity
//! estimates with and without histograms/MCVs against the truth, and shows
//! the effect propagating into a join size estimate.
//!
//! Run with: `cargo run --example skewed_data`

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::core::prelude::*;
use els::core::selectivity::SelectivityOracle;
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 20_000usize;
    let mut catalog = Catalog::new();
    catalog.register(
        TableSpec::new("FACT", rows)
            .column(ColumnSpec::new("key", Distribution::ZipfInt { n: 1000, theta: 1.2, start: 0 }))
            .generate(7),
        &CollectOptions::full(), // equi-depth histogram + MCV list
    )?;
    catalog.register(
        TableSpec::new("DIM", 1000)
            .column(ColumnSpec::new("id", Distribution::SequentialInt { start: 0 }))
            .generate(8),
        &CollectOptions::default(),
    )?;

    // Ground truth for the hot-key filter `key = 0`.
    let data = catalog.table_data("FACT")?;
    let truth = data.column_by_name("key")?.iter().filter(|v| v.as_int() == Some(0)).count() as f64
        / rows as f64;

    let stats = catalog.query_statistics(&["FACT", "DIM"])?;
    let d = stats.tables[0].columns[0].distinct;
    let uniform = 1.0 / d;
    let oracle = catalog.oracle(&["FACT", "DIM"])?;
    let with_stats = oracle
        .local_selectivity(ColumnRef::new(0, 0), CmpOp::Eq, &Value::Int(0))
        .expect("MCV tracks the hot key");

    println!("Zipf(1.2) column, {rows} rows, {d:.0} distinct values");
    println!("selectivity of `key = 0` (the hot value):");
    println!("  truth                     : {truth:.4}");
    println!("  uniformity model (1/d)    : {uniform:.4}  ({:.0}x off)", truth / uniform);
    println!("  histogram + MCV           : {with_stats:.4}\n");

    // Propagate into a join estimate: FACT ⋈ DIM after the hot filter.
    let predicates = vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Eq, 0i64),
    ];
    let plain = Els::prepare(&predicates, &stats, &ElsOptions::default())?;
    let informed = Els::prepare_with_oracle(&predicates, &stats, &ElsOptions::default(), &oracle)?;
    let plain_est = plain.estimate_final(&[0, 1])?;
    let informed_est = informed.estimate_final(&[0, 1])?;
    let true_join = truth * rows as f64; // each FACT row matches exactly one DIM row.

    println!("||FACT ⋈ DIM|| with the filter applied:");
    println!("  truth                     : {true_join:.0}");
    println!("  ELS, uniformity only      : {plain_est:.1}");
    println!("  ELS + distribution stats  : {informed_est:.1}");
    Ok(())
}
