//! Quickstart: estimate a three-way join with every selectivity rule.
//!
//! Reproduces the running example of the paper (Examples 1b, 2, 3): three
//! tables R1, R2, R3 with one equivalence class {x, y, z}, joined as
//! (R2 ⋈ R3) ⋈ R1. The true size is 1000; Rule M says 1, Rule SS says 100,
//! and the paper's Rule LS gets it right.
//!
//! Run with: `cargo run --example quickstart`

use els::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Statistics straight from Example 1b:
    // ||R1|| = 100, ||R2|| = 1000, ||R3|| = 1000; d_x = 10, d_y = 100,
    // d_z = 1000.
    let stats = QueryStatistics::new(vec![
        TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(10.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(100.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(1000.0)]),
    ]);

    // WHERE R1.x = R2.y AND R2.y = R3.z  (R1.x = R3.z arrives via closure).
    let predicates = vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::join_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
    ];

    println!("Join order: (R2 ⋈ R3) ⋈ R1 — true size is 1000 at every step\n");
    println!("{:<28} {:>14} {:>14}", "rule", "||R2 ⋈ R3||", "final size");
    println!("{}", "-".repeat(60));

    for (name, rule) in [
        ("M  (multiplicative, [13])", SelectivityRule::Multiplicative),
        ("SS (smallest selectivity)", SelectivityRule::SmallestSelectivity),
        ("LS (largest — Algorithm ELS)", SelectivityRule::LargestSelectivity),
    ] {
        let els = Els::prepare(&predicates, &stats, &ElsOptions::default().with_rule(rule))?;
        let sizes = els.estimate_order(&[1, 2, 0])?;
        println!("{name:<28} {:>14.3} {:>14.3}", sizes[0], sizes[1]);
    }

    // The closed form (Equation 3) confirms the truth.
    let truth = els::core::exact::n_way(&[(100.0, 10.0), (1000.0, 100.0), (1000.0, 1000.0)]);
    println!("{}", "-".repeat(60));
    println!("{:<28} {:>14} {:>14.3}", "Equation 3 (ground truth)", "", truth);
    Ok(())
}
