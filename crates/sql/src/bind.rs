//! Name resolution: AST → positional predicates over a catalog.

use els_catalog::Catalog;
use els_core::predicate::CmpOp;
use els_core::{ColumnRef, Predicate};

use crate::ast::{ColRefAst, Operand, Projection, Query};
use crate::error::{SqlError, SqlResult};

/// A resolved projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundProjection {
    /// `COUNT(*)`.
    CountStar,
    /// Every column of every `FROM` table.
    Star,
    /// Specific columns.
    Columns(Vec<ColumnRef>),
    /// `GROUP BY` columns with a per-group `COUNT(*)`.
    GroupCount(Vec<ColumnRef>),
}

/// A fully resolved query, ready for estimation and execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// Catalog table names, in `FROM` order (positional table ids).
    pub table_names: Vec<String>,
    /// The names the query text binds each table to (alias or name).
    pub binding_names: Vec<String>,
    /// Resolved projection.
    pub projection: BoundProjection,
    /// Resolved conjuncts.
    pub predicates: Vec<Predicate>,
    /// Resolved `ORDER BY` items (`(column, descending)`); the columns must
    /// appear in the output.
    pub order_by: Vec<(ColumnRef, bool)>,
    /// `LIMIT`, when present.
    pub limit: Option<u64>,
}

/// Resolve `query` against `catalog`.
///
/// Shapes extend the paper's conjunctive-query model: between two columns
/// `=` binds to an equality predicate (what transitive closure and
/// equivalence classes consume), and the range comparisons `<`, `<=`, `>`,
/// `>=` bind to a [`Predicate::join_range`] when the columns live in
/// different `FROM` tables (`!=` and same-table ranges stay typed errors);
/// between a column and a literal any comparison works, and a
/// literal-first predicate is flipped. The tautology `R.x = R.x` is
/// dropped. Comparisons between two literals are rejected.
pub fn bind(query: &Query, catalog: &Catalog) -> SqlResult<BoundQuery> {
    // FROM list: every table must exist; binding names must be unique.
    let mut binding_names: Vec<String> = Vec::with_capacity(query.from.len());
    let mut table_names: Vec<String> = Vec::with_capacity(query.from.len());
    for t in &query.from {
        catalog.table_def(&t.name)?; // existence check
        let binding = t.binding_name().to_owned();
        if binding_names.contains(&binding) {
            return Err(SqlError::Bind(format!("duplicate table binding `{binding}`")));
        }
        binding_names.push(binding);
        table_names.push(t.name.clone());
    }

    let resolve = |c: &ColRefAst| -> SqlResult<ColumnRef> {
        match &c.table {
            Some(tname) => {
                let t = binding_names
                    .iter()
                    .position(|b| b == tname)
                    .ok_or_else(|| SqlError::Bind(format!("unknown table `{tname}` in `{c}`")))?;
                let def = catalog.table_def(&table_names[t])?;
                let col = def.column_index(&c.column).ok_or_else(|| {
                    SqlError::Bind(format!("unknown column `{}` in table `{tname}`", c.column))
                })?;
                Ok(ColumnRef::new(t, col))
            }
            None => {
                let mut hit: Option<ColumnRef> = None;
                for (t, tname) in table_names.iter().enumerate() {
                    if let Some(col) = catalog.table_def(tname)?.column_index(&c.column) {
                        if hit.is_some() {
                            return Err(SqlError::Bind(format!(
                                "ambiguous column `{}`: present in more than one FROM table",
                                c.column
                            )));
                        }
                        hit = Some(ColumnRef::new(t, col));
                    }
                }
                hit.ok_or_else(|| {
                    SqlError::Bind(format!("unknown column `{}` in any FROM table", c.column))
                })
            }
        }
    };

    let projection = match &query.projection {
        Projection::CountStar if query.group_by.is_empty() => BoundProjection::CountStar,
        Projection::Star if query.group_by.is_empty() => BoundProjection::Star,
        Projection::Columns(cols) if query.group_by.is_empty() => {
            BoundProjection::Columns(cols.iter().map(&resolve).collect::<SqlResult<Vec<_>>>()?)
        }
        Projection::ColumnsAndCount(cols) => {
            // Minimal GROUP BY semantics: the grouped columns must be
            // exactly the projected ones.
            let projected = cols.iter().map(&resolve).collect::<SqlResult<Vec<_>>>()?;
            let grouped = query.group_by.iter().map(&resolve).collect::<SqlResult<Vec<_>>>()?;
            if grouped.is_empty() {
                return Err(SqlError::Bind(
                    "`col, COUNT(*)` projections require a GROUP BY clause".into(),
                ));
            }
            let mut a = projected.clone();
            let mut b = grouped.clone();
            a.sort();
            b.sort();
            if a != b {
                return Err(SqlError::Bind(
                    "GROUP BY columns must match the projected columns".into(),
                ));
            }
            BoundProjection::GroupCount(projected)
        }
        _ => {
            return Err(SqlError::Bind(
                "GROUP BY requires a `col [, col]*, COUNT(*)` projection".into(),
            ))
        }
    };

    let mut predicates = Vec::with_capacity(query.predicates.len());
    for p in &query.predicates {
        match p {
            crate::ast::PredicateAst::IsNull { operand, negated } => {
                let Operand::Column(c) = operand else {
                    return Err(SqlError::Bind("IS NULL requires a column operand".into()));
                };
                predicates.push(Predicate::IsNull { column: resolve(c)?, negated: *negated });
            }
            crate::ast::PredicateAst::Cmp { left, op, right } => match (left, right) {
                (Operand::Column(a), Operand::Column(b)) => {
                    let (ra, rb) = (resolve(a)?, resolve(b)?);
                    match op {
                        CmpOp::Eq => {
                            if ra == rb {
                                // R.x = R.x: a tautology; drop it.
                                continue;
                            }
                            predicates.push(Predicate::col_eq(ra, rb));
                        }
                        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                            if ra.table == rb.table {
                                return Err(SqlError::Bind(format!(
                                    "range comparisons between columns of one table are not \
                                     supported, got `{a} {op} {b}`"
                                )));
                            }
                            predicates.push(Predicate::join_range(ra, *op, rb));
                        }
                        CmpOp::Ne => {
                            return Err(SqlError::Bind(format!(
                                "`!=` is not supported between columns, got `{a} {op} {b}`"
                            )));
                        }
                    }
                }
                (Operand::Column(c), Operand::Literal(v)) => {
                    predicates.push(Predicate::LocalCmp {
                        column: resolve(c)?,
                        op: *op,
                        value: v.clone(),
                    });
                }
                (Operand::Literal(v), Operand::Column(c)) => {
                    predicates.push(Predicate::LocalCmp {
                        column: resolve(c)?,
                        op: op.flip(),
                        value: v.clone(),
                    });
                }
                (Operand::Literal(_), Operand::Literal(_)) => {
                    return Err(SqlError::Bind(
                        "comparisons between two literals are not supported".into(),
                    ))
                }
            },
        }
    }

    // ORDER BY columns must be visible in the output rows.
    let mut order_by = Vec::with_capacity(query.order_by.len());
    for item in &query.order_by {
        let col = resolve(&item.column)?;
        let visible = match &projection {
            BoundProjection::Star => true,
            BoundProjection::Columns(cols) | BoundProjection::GroupCount(cols) => {
                cols.contains(&col)
            }
            BoundProjection::CountStar => false,
        };
        if !visible {
            return Err(SqlError::Bind(format!(
                "ORDER BY column `{}` is not in the projected output",
                item.column
            )));
        }
        order_by.push((col, item.descending));
    }

    Ok(BoundQuery {
        table_names,
        binding_names,
        projection,
        predicates,
        order_by,
        limit: query.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use els_catalog::collect::CollectOptions;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, col, rows) in
            [("S", "s", 1000usize), ("M", "m", 10_000), ("B", "b", 50_000), ("G", "g", 100_000)]
        {
            let t = TableSpec::new(name, rows)
                .column(ColumnSpec::new(col, Distribution::SequentialInt { start: 0 }))
                .generate(1);
            c.register(t, &CollectOptions::default()).unwrap();
        }
        c
    }

    fn bound(sql: &str) -> SqlResult<BoundQuery> {
        bind(&parse(sql).unwrap(), &catalog())
    }

    #[test]
    fn binds_the_section8_query() {
        let b =
            bound("SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100")
                .unwrap();
        assert_eq!(b.table_names, vec!["S", "M", "B", "G"]);
        assert_eq!(b.projection, BoundProjection::CountStar);
        assert_eq!(b.predicates.len(), 4);
        assert_eq!(b.predicates[0], Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)));
        assert_eq!(b.predicates[3], Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, 100i64));
    }

    #[test]
    fn unqualified_names_resolve_across_tables() {
        let b = bound("SELECT * FROM S, M WHERE s = m").unwrap();
        assert_eq!(
            b.predicates,
            vec![Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0))]
        );
    }

    #[test]
    fn aliases_bind() {
        let b = bound("SELECT COUNT(*) FROM S x, M AS y WHERE x.s = y.m").unwrap();
        assert_eq!(b.binding_names, vec!["x", "y"]);
        assert_eq!(b.predicates.len(), 1);
    }

    #[test]
    fn literal_on_left_flips() {
        let b = bound("SELECT COUNT(*) FROM S WHERE 100 > s").unwrap();
        assert_eq!(
            b.predicates,
            vec![Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, 100i64)]
        );
    }

    #[test]
    fn self_equality_is_dropped() {
        let b = bound("SELECT COUNT(*) FROM S WHERE s = s").unwrap();
        assert!(b.predicates.is_empty());
    }

    #[test]
    fn errors_unknown_table_column_ambiguity() {
        assert!(matches!(bound("SELECT * FROM Q"), Err(SqlError::Bind(_))));
        assert!(matches!(bound("SELECT * FROM S WHERE nope = 1"), Err(SqlError::Bind(_))));
        assert!(matches!(bound("SELECT * FROM S WHERE M.m = 1"), Err(SqlError::Bind(_))));
        // Same table twice without aliases: duplicate binding.
        assert!(matches!(bound("SELECT * FROM S, S"), Err(SqlError::Bind(_))));
        // With aliases a self-join binds fine.
        let b = bound("SELECT COUNT(*) FROM S a, S b WHERE a.s = b.s").unwrap();
        assert_eq!(b.predicates.len(), 1);
    }

    #[test]
    fn ambiguous_unqualified_column_errors() {
        // Column `s` exists in both aliases of a self-join.
        let err = bound("SELECT COUNT(*) FROM S a, S b WHERE s = 1").unwrap_err();
        assert!(matches!(err, SqlError::Bind(msg) if msg.contains("ambiguous")));
    }

    #[test]
    fn range_comparison_between_columns_binds_as_join_range() {
        let b = bound("SELECT COUNT(*) FROM S, M WHERE s < m").unwrap();
        assert_eq!(
            b.predicates,
            vec![Predicate::join_range(ColumnRef::new(0, 0), CmpOp::Lt, ColumnRef::new(1, 0))]
        );
        // A self-join across two aliases is two distinct positional tables.
        let b = bound("SELECT COUNT(*) FROM S a, S b WHERE a.s >= b.s").unwrap();
        assert_eq!(
            b.predicates,
            vec![Predicate::join_range(ColumnRef::new(0, 0), CmpOp::Ge, ColumnRef::new(1, 0))]
        );
    }

    #[test]
    fn non_join_inequalities_between_columns_rejected() {
        // `!=` between columns has no estimation model.
        let err = bound("SELECT * FROM S, M WHERE s != m").unwrap_err();
        assert!(matches!(err, SqlError::Bind(msg) if msg.contains("!=")));
        // A range between two columns of one table is not a join.
        let err = bound("SELECT * FROM S WHERE s < s").unwrap_err();
        assert!(matches!(err, SqlError::Bind(msg) if msg.contains("one table")));
    }

    #[test]
    fn literal_literal_rejected() {
        assert!(matches!(bound("SELECT * FROM S WHERE 1 = 1"), Err(SqlError::Bind(_))));
    }

    #[test]
    fn is_null_binds_to_core_predicate() {
        let b = bound("SELECT COUNT(*) FROM S WHERE s IS NOT NULL").unwrap();
        assert_eq!(
            b.predicates,
            vec![Predicate::IsNull { column: ColumnRef::new(0, 0), negated: true }]
        );
        // IS NULL on a literal is rejected at bind time.
        let q = crate::parser::parse("SELECT COUNT(*) FROM S WHERE 5 IS NULL").unwrap();
        assert!(matches!(bind(&q, &catalog()), Err(SqlError::Bind(_))));
    }

    #[test]
    fn between_binds_as_two_local_predicates() {
        let b = bound("SELECT COUNT(*) FROM S WHERE s BETWEEN 10 AND 20").unwrap();
        assert_eq!(
            b.predicates,
            vec![
                Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Ge, 10i64),
                Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Le, 20i64),
            ]
        );
    }

    #[test]
    fn group_by_binds_and_validates() {
        let b = bound("SELECT s, COUNT(*) FROM S GROUP BY s").unwrap();
        assert_eq!(b.projection, BoundProjection::GroupCount(vec![ColumnRef::new(0, 0)]));
        // Projected and grouped columns must match.
        let q = crate::parser::parse("SELECT s, COUNT(*) FROM S, M GROUP BY m").unwrap();
        assert!(matches!(bind(&q, &catalog()), Err(SqlError::Bind(_))));
        // ColumnsAndCount without GROUP BY is rejected.
        let q = crate::parser::parse("SELECT s, COUNT(*) FROM S").unwrap();
        assert!(matches!(bind(&q, &catalog()), Err(SqlError::Bind(_))));
        // GROUP BY with a plain column projection is rejected (no aggregate).
        let q = crate::parser::parse("SELECT s FROM S GROUP BY s").unwrap();
        assert!(matches!(bind(&q, &catalog()), Err(SqlError::Bind(_))));
    }

    #[test]
    fn order_by_must_be_in_the_output() {
        let b = bound("SELECT s FROM S ORDER BY s DESC LIMIT 3").unwrap();
        assert_eq!(b.order_by, vec![(ColumnRef::new(0, 0), true)]);
        assert_eq!(b.limit, Some(3));
        // Ordering by a column that is not projected is rejected.
        let q = crate::parser::parse("SELECT COUNT(*) FROM S ORDER BY s").unwrap();
        assert!(matches!(bind(&q, &catalog()), Err(SqlError::Bind(_))));
        // Star output allows ordering by anything in scope.
        let b = bound("SELECT * FROM S ORDER BY s").unwrap();
        assert_eq!(b.order_by.len(), 1);
    }

    #[test]
    fn projection_columns_resolve() {
        let b = bound("SELECT S.s, m FROM S, M").unwrap();
        assert_eq!(
            b.projection,
            BoundProjection::Columns(vec![ColumnRef::new(0, 0), ColumnRef::new(1, 0)])
        );
    }
}
