//! Error type for catalog operations.

use std::fmt;

/// Errors raised by catalog registration and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// No table with this name exists.
    UnknownTable(String),
    /// No column with this name exists in the given table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// Underlying storage failure (ragged columns etc.).
    Storage(String),
    /// Collection options failed validation (e.g. a sampling fraction
    /// outside `(0, 1]`).
    InvalidOptions(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateTable(n) => write!(f, "table `{n}` already registered"),
            CatalogError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            CatalogError::Storage(msg) => write!(f, "storage error: {msg}"),
            CatalogError::InvalidOptions(msg) => write!(f, "invalid collect options: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<els_storage::StorageError> for CatalogError {
    fn from(e: els_storage::StorageError) -> Self {
        CatalogError::Storage(e.to_string())
    }
}

/// Result alias for this crate.
pub type CatalogResult<T> = Result<T, CatalogError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_offenders() {
        assert!(CatalogError::UnknownTable("x".into()).to_string().contains("`x`"));
        let e = CatalogError::UnknownColumn { table: "t".into(), column: "c".into() };
        assert!(e.to_string().contains("`c`") && e.to_string().contains("`t`"));
    }

    #[test]
    fn storage_errors_convert() {
        let e: CatalogError = els_storage::StorageError::UnknownColumn("z".into()).into();
        assert!(matches!(e, CatalogError::Storage(_)));
    }
}
