//! Statistics inputs for estimation.
//!
//! The paper's estimation algorithms consume exactly two base statistics
//! (Section 2): the **table cardinality** ‖R‖ and the **column cardinality**
//! d_x of each column. Optionally, a column may carry its min/max domain
//! bounds, which sharpen range-predicate selectivities under the uniformity
//! assumption; richer distribution information (histograms) is supplied
//! separately through [`crate::selectivity::SelectivityOracle`] so that this
//! crate stays independent of any particular statistics store.
//!
//! All statistics are `f64`: cardinalities in estimation formulas are
//! expectations, not integers.

use crate::error::{ElsError, ElsResult};
use crate::ids::{ColumnRef, TableId};

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStatistics {
    /// Column cardinality d_x: the number of distinct non-NULL values.
    pub distinct: f64,
    /// Smallest value in the column, as a numeric key (None when unknown or
    /// non-numeric).
    pub min: Option<f64>,
    /// Largest value in the column, as a numeric key.
    pub max: Option<f64>,
    /// Fraction of rows that are NULL (0 when unknown). NULLs never satisfy
    /// comparison predicates and never join.
    pub null_fraction: f64,
    /// Frequency of the most common non-NULL value (None when not
    /// collected). This is the MF(x) statistic of UES-style upper-bound
    /// estimation: `|R ⋈ S on a=b| ≤ min(‖R‖·MF_S(b), ‖S‖·MF_R(a))` holds
    /// for any data, so a true per-column maximum yields guaranteed upper
    /// bounds on join sizes.
    pub max_frequency: Option<f64>,
}

impl ColumnStatistics {
    /// Statistics with a known distinct count and nothing else.
    pub fn with_distinct(distinct: f64) -> Self {
        ColumnStatistics { distinct, min: None, max: None, null_fraction: 0.0, max_frequency: None }
    }

    /// Statistics with a distinct count and numeric domain bounds.
    pub fn with_domain(distinct: f64, min: f64, max: f64) -> Self {
        ColumnStatistics {
            distinct,
            min: Some(min),
            max: Some(max),
            null_fraction: 0.0,
            max_frequency: None,
        }
    }

    /// Same statistics with the max-frequency statistic attached.
    pub fn with_max_frequency(mut self, max_frequency: f64) -> Self {
        self.max_frequency = Some(max_frequency);
        self
    }

    /// Validate ranges: distinct must be ≥ 0 and finite, null fraction in
    /// `[0, 1]`, min ≤ max when both present.
    pub fn validate(&self) -> ElsResult<()> {
        if !self.distinct.is_finite() || self.distinct < 0.0 {
            return Err(ElsError::InvalidStatistics(format!(
                "distinct count must be finite and non-negative, got {}",
                self.distinct
            )));
        }
        if !(0.0..=1.0).contains(&self.null_fraction) {
            return Err(ElsError::InvalidStatistics(format!(
                "null fraction must be in [0,1], got {}",
                self.null_fraction
            )));
        }
        if let (Some(lo), Some(hi)) = (self.min, self.max) {
            if lo > hi {
                return Err(ElsError::InvalidStatistics(format!("min {lo} exceeds max {hi}")));
            }
        }
        if let Some(mf) = self.max_frequency {
            if !mf.is_finite() || mf < 0.0 {
                return Err(ElsError::InvalidStatistics(format!(
                    "max frequency must be finite and non-negative, got {mf}"
                )));
            }
        }
        Ok(())
    }
}

/// Statistics for one table: cardinality plus per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatistics {
    /// Table cardinality ‖R‖.
    pub cardinality: f64,
    /// Per-column statistics, indexed by column position.
    pub columns: Vec<ColumnStatistics>,
}

impl TableStatistics {
    /// Create table statistics.
    pub fn new(cardinality: f64, columns: Vec<ColumnStatistics>) -> Self {
        TableStatistics { cardinality, columns }
    }

    /// Validate the table and all its columns. A non-empty table must not
    /// claim more distinct values in a column than it has rows.
    pub fn validate(&self) -> ElsResult<()> {
        if !self.cardinality.is_finite() || self.cardinality < 0.0 {
            return Err(ElsError::InvalidStatistics(format!(
                "table cardinality must be finite and non-negative, got {}",
                self.cardinality
            )));
        }
        for (i, c) in self.columns.iter().enumerate() {
            c.validate()?;
            if c.distinct > self.cardinality && self.cardinality > 0.0 {
                return Err(ElsError::InvalidStatistics(format!(
                    "column {i} claims {} distinct values but the table has only {} rows",
                    c.distinct, self.cardinality
                )));
            }
        }
        Ok(())
    }
}

/// Statistics for every table of a query, in `FROM`-list order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStatistics {
    /// Per-table statistics.
    pub tables: Vec<TableStatistics>,
}

impl QueryStatistics {
    /// Create query statistics.
    pub fn new(tables: Vec<TableStatistics>) -> Self {
        QueryStatistics { tables }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The column counts per table, used to validate predicates.
    pub fn shape(&self) -> Vec<usize> {
        self.tables.iter().map(|t| t.columns.len()).collect()
    }

    /// Statistics of a table.
    pub fn table(&self, t: TableId) -> ElsResult<&TableStatistics> {
        self.tables.get(t).ok_or(ElsError::UnknownTable(t))
    }

    /// Statistics of a column.
    pub fn column(&self, c: ColumnRef) -> ElsResult<&ColumnStatistics> {
        self.table(c.table)?.columns.get(c.column).ok_or(ElsError::UnknownColumn(c))
    }

    /// Validate every table.
    pub fn validate(&self) -> ElsResult<()> {
        for t in &self.tables {
            t.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let qs = QueryStatistics::new(vec![
            TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(10.0)]),
            TableStatistics::new(
                1000.0,
                vec![
                    ColumnStatistics::with_domain(100.0, 0.0, 99.0),
                    ColumnStatistics::with_distinct(50.0),
                ],
            ),
        ]);
        assert_eq!(qs.num_tables(), 2);
        assert_eq!(qs.shape(), vec![1, 2]);
        assert_eq!(qs.column(ColumnRef::new(1, 0)).unwrap().min, Some(0.0));
        assert!(qs.validate().is_ok());
    }

    #[test]
    fn unknown_lookups_error() {
        let qs = QueryStatistics::new(vec![TableStatistics::new(1.0, vec![])]);
        assert_eq!(qs.table(2).unwrap_err(), ElsError::UnknownTable(2));
        assert_eq!(
            qs.column(ColumnRef::new(0, 0)).unwrap_err(),
            ElsError::UnknownColumn(ColumnRef::new(0, 0))
        );
    }

    #[test]
    fn validation_rejects_negative_cardinality() {
        let t = TableStatistics::new(-1.0, vec![]);
        assert!(matches!(t.validate(), Err(ElsError::InvalidStatistics(_))));
    }

    #[test]
    fn validation_rejects_distinct_exceeding_rows() {
        let t = TableStatistics::new(10.0, vec![ColumnStatistics::with_distinct(20.0)]);
        assert!(matches!(t.validate(), Err(ElsError::InvalidStatistics(_))));
    }

    #[test]
    fn validation_rejects_inverted_domain() {
        let c = ColumnStatistics::with_domain(5.0, 10.0, 0.0);
        assert!(matches!(c.validate(), Err(ElsError::InvalidStatistics(_))));
    }

    #[test]
    fn validation_rejects_bad_null_fraction() {
        let mut c = ColumnStatistics::with_distinct(5.0);
        c.null_fraction = 1.5;
        assert!(matches!(c.validate(), Err(ElsError::InvalidStatistics(_))));
    }

    #[test]
    fn validation_rejects_bad_max_frequency() {
        let c = ColumnStatistics::with_distinct(5.0).with_max_frequency(-1.0);
        assert!(matches!(c.validate(), Err(ElsError::InvalidStatistics(_))));
        let ok = ColumnStatistics::with_distinct(5.0).with_max_frequency(3.0);
        assert!(ok.validate().is_ok());
        assert_eq!(ok.max_frequency, Some(3.0));
    }

    #[test]
    fn empty_table_with_zero_distinct_is_valid() {
        let t = TableStatistics::new(0.0, vec![ColumnStatistics::with_distinct(0.0)]);
        assert!(t.validate().is_ok());
    }
}
