//! Differential testing of the vectorized executor against the
//! row-at-a-time oracle.
//!
//! Random tables (uniform / Zipf / sequential key distributions, NULLs
//! mixed in, int / float / string join columns) × random predicates and
//! join keys × all three forceable join methods: the vectorized path —
//! serial and morsel-parallel — must reproduce the row oracle *exactly*:
//! same rows, same column names, same counters (minus the vectorized-only
//! kernel counters), same per-operator observations.

use std::sync::Arc;

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::exec::{
    execute_plan_observed_with, ExecMetrics, ExecMode, JoinMethod, Observations, PlanNode,
    QueryPlan,
};
use els::optimizer::{bound_query_tables, optimize_bound, OptimizerOptions};
use els::sql::{bind, parse};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els::storage::Table;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random 2–3 table catalog. Every table gets an integer join key with a
/// randomly chosen distribution (and sometimes NULLs), a typed secondary
/// join column (float or string), and an integer filter column.
fn random_catalog(seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
    let mut catalog = Catalog::new();
    let ntables = rng.gen_range(2..=3usize);
    for i in 0..ntables {
        let rows = rng.gen_range(30..=250usize);
        let key = match rng.gen_range(0..3) {
            0 => Distribution::SequentialInt { start: rng.gen_range(-5..5) },
            1 => Distribution::UniformInt { lo: 0, hi: rng.gen_range(4..40) },
            _ => Distribution::ZipfInt { n: rng.gen_range(4..32), theta: 1.0, start: 0 },
        };
        let key = if rng.gen_bool(0.4) {
            Distribution::WithNulls { inner: Box::new(key), null_fraction: 0.15 }
        } else {
            key
        };
        let typed = if rng.gen_bool(0.5) {
            Distribution::UniformFloat { lo: 0.0, hi: 8.0 }
        } else {
            Distribution::StrTag { prefix: "v".into(), modulus: rng.gen_range(3..9) }
        };
        let typed = if rng.gen_bool(0.3) {
            Distribution::WithNulls { inner: Box::new(typed), null_fraction: 0.2 }
        } else {
            typed
        };
        let filter = Distribution::WithNulls {
            inner: Box::new(Distribution::UniformInt { lo: 0, hi: 99 }),
            null_fraction: 0.1,
        };
        catalog
            .register(
                TableSpec::new(format!("t{i}"), rows)
                    .column(ColumnSpec::new("k", key))
                    .column(ColumnSpec::new("v", typed))
                    .column(ColumnSpec::new("f", filter))
                    .generate(seed.wrapping_mul(31).wrapping_add(i as u64)),
                &CollectOptions::default(),
            )
            .expect("fresh catalog accepts generated tables");
    }
    catalog
}

/// A random conjunctive query over the catalog: adjacent join edges on a
/// random column (ints usually, the typed column sometimes), random local
/// filters, and a random output shape.
fn random_sql(seed: u64, catalog: &Catalog) -> String {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545f4914f6cdd1d));
    let ntables = catalog.table_names().len();
    let mut conjuncts = Vec::new();
    for i in 1..ntables {
        // Sometimes the adjacency edge is an inequality: the plan gets a
        // keyless band join (or a residual-filtered cartesian method).
        if rng.gen_bool(0.3) {
            let op = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
            conjuncts.push(format!("t{}.k {op} t{i}.k", i - 1));
        } else {
            let col = if rng.gen_bool(0.25) { "v" } else { "k" };
            conjuncts.push(format!("t{}.{col} = t{i}.{col}", i - 1));
        }
        // Occasionally stack an inequality on top of the edge, exercising
        // residual filtering on keyed joins and multi-range band joins.
        if rng.gen_bool(0.2) {
            let op = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
            conjuncts.push(format!("t{}.f {op} t{i}.f", i - 1));
        }
    }
    for i in 0..ntables {
        match rng.gen_range(0..5) {
            0 => conjuncts.push(format!("t{i}.f < {}", rng.gen_range(5..95))),
            1 => conjuncts.push(format!("t{i}.f >= {}", rng.gen_range(5..95))),
            2 => conjuncts.push(format!("t{i}.k IS NOT NULL")),
            3 => {
                let lo = rng.gen_range(0..20);
                conjuncts.push(format!("t{i}.f BETWEEN {lo} AND {}", lo + rng.gen_range(0..40)));
            }
            _ => {}
        }
    }
    let from: Vec<String> = (0..ntables).map(|i| format!("t{i}")).collect();
    let select = if rng.gen_bool(0.5) { "COUNT(*)".to_owned() } else { "*".to_owned() };
    let mut sql = format!("SELECT {select} FROM {}", from.join(", "));
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    sql
}

fn force_method(node: &mut PlanNode, m: JoinMethod) {
    if let PlanNode::Join { method, keys, left, right, .. } = node {
        // Keyless joins (cartesian steps and band joins) keep whatever the
        // optimizer picked — the keyed methods are not defined for them.
        if !keys.is_empty() {
            *method = m;
        }
        force_method(left, m);
        force_method(right, m);
    }
}

/// Strip the counters only the vectorized path maintains (and wall time)
/// so the rest can be compared exactly across modes.
fn comparable(mut m: ExecMetrics) -> ExecMetrics {
    m.kernel_rows = 0;
    m.sel_reuses = 0;
    m.morsels = 0;
    m.partitions = 0;
    m.steals = 0;
    m.pair_lists = 0;
    m.elapsed = std::time::Duration::ZERO;
    m
}

fn assert_tables_equal(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.column_names(), b.column_names(), "{context}: column names");
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    for c in 0..a.num_columns() {
        assert_eq!(a.column(c).unwrap(), b.column(c).unwrap(), "{context}: column {c}");
    }
}

/// Run `plan` under the row oracle and both vectorized variants; all three
/// must agree on rows, counters, and observations.
fn check_plan(plan: &QueryPlan, tables: &[Arc<Table>], context: &str) {
    let (row_out, row_obs): (els::exec::ExecOutput, Observations) =
        execute_plan_observed_with(plan, tables, ExecMode::RowAtATime)
            .unwrap_or_else(|e| panic!("{context}: row oracle failed: {e}"));
    for workers in [1usize, 2, 3, 8] {
        let label = format!("{context} workers={workers}");
        let (vec_out, vec_obs) =
            execute_plan_observed_with(plan, tables, ExecMode::Vectorized { workers })
                .unwrap_or_else(|e| panic!("{label}: vectorized failed: {e}"));
        assert_eq!(vec_out.count, row_out.count, "{label}: count");
        assert_tables_equal(&vec_out.rows, &row_out.rows, &label);
        assert_eq!(
            comparable(vec_out.metrics),
            comparable(row_out.metrics),
            "{label}: shared counters"
        );
        assert_eq!(vec_obs, row_obs, "{label}: observations");
        // `Observations::eq` deliberately compares only the logical
        // streams; spell the per-stream equality out so a failure names
        // the diverging stream, and pin the timing vectors to their
        // streams one-to-one (the report builder indexes them in step).
        assert_eq!(vec_obs.scan_outputs, row_obs.scan_outputs, "{label}: scan outputs");
        assert_eq!(vec_obs.join_outputs, row_obs.join_outputs, "{label}: join outputs");
        for (name, obs) in [("row", &row_obs), ("vec", &vec_obs)] {
            assert_eq!(
                obs.scan_elapsed.len(),
                obs.scan_outputs.len(),
                "{label}: {name} scan timing alignment"
            );
            assert_eq!(
                obs.join_elapsed.len(),
                obs.join_outputs.len(),
                "{label}: {name} join timing alignment"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn vectorized_paths_match_the_row_oracle(seed in 0u64..100_000) {
        let catalog = random_catalog(seed);
        let sql = random_sql(seed, &catalog);
        let bound = bind(&parse(&sql).unwrap(), &catalog)
            .unwrap_or_else(|e| panic!("generator emits bindable SQL (`{sql}`): {e}"));
        let tables = bound_query_tables(&bound, &catalog).unwrap();
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::default())
            .unwrap_or_else(|e| panic!("optimize failed on `{sql}`: {e}"));

        // The optimizer's own plan (whatever methods it picked) …
        check_plan(&optimized.plan, &tables, &format!("`{sql}` [optimized]"));
        // … and the same tree pinned to each join method in turn.
        for method in [JoinMethod::NestedLoop, JoinMethod::SortMerge, JoinMethod::Hash] {
            let mut plan = optimized.plan.clone();
            force_method(&mut plan.root, method);
            check_plan(&plan, &tables, &format!("`{sql}` [{}]", method.name()));
        }
    }
}

/// A probe side big enough to cross the morsel-parallel threshold (the
/// random catalogs above stay small, so their `workers = 4` runs fall back
/// to the serial probe): skewed keys, NULLs mixed in, exact row / counter /
/// observation parity across the serial and parallel probe paths.
#[test]
fn parallel_probe_matches_on_a_large_skewed_table() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            TableSpec::new("build", 800)
                .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi: 500 }))
                .generate(7),
            &CollectOptions::default(),
        )
        .unwrap();
    catalog
        .register(
            TableSpec::new("probe", 30_000)
                .column(ColumnSpec::new(
                    "k",
                    Distribution::WithNulls {
                        inner: Box::new(Distribution::ZipfInt { n: 400, theta: 0.8, start: 0 }),
                        null_fraction: 0.05,
                    },
                ))
                .generate(8),
            &CollectOptions::default(),
        )
        .unwrap();
    let sql = "SELECT COUNT(*) FROM build, probe WHERE build.k = probe.k";
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::default()).unwrap();
    let mut plan = optimized.plan.clone();
    force_method(&mut plan.root, JoinMethod::Hash);
    check_plan(&plan, &tables, "large skewed probe [HASH]");
    // The parallel run must actually have split the probe into morsels.
    let (out, _) =
        execute_plan_observed_with(&plan, &tables, ExecMode::Vectorized { workers: 4 }).unwrap();
    assert!(out.metrics.morsels > 1, "expected a morsel split, got {}", out.metrics.morsels);
}

/// Probe sizes straddling both the morsel size (2048) and the parallel
/// engagement threshold ([`els::exec::PARALLEL_MIN_ROWS`]): the
/// observation streams and results must be identical whether a probe ends
/// exactly on a morsel boundary, one row before it, or one row after —
/// and whether the parallel path engages at all.
#[test]
fn morsel_boundary_probe_sizes_keep_observation_parity() {
    use els::exec::{MORSEL_ROWS, PARALLEL_MIN_ROWS};

    let sizes = [
        MORSEL_ROWS - 1,
        MORSEL_ROWS,
        MORSEL_ROWS + 1,
        PARALLEL_MIN_ROWS - 1,
        PARALLEL_MIN_ROWS,
        PARALLEL_MIN_ROWS + 1,
    ];
    for rows in sizes {
        let mut catalog = Catalog::new();
        catalog
            .register(
                TableSpec::new("build", 300)
                    .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi: 200 }))
                    .generate(11),
                &CollectOptions::default(),
            )
            .unwrap();
        catalog
            .register(
                TableSpec::new("probe", rows)
                    .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi: 200 }))
                    .generate(13),
                &CollectOptions::default(),
            )
            .unwrap();
        let sql = "SELECT COUNT(*) FROM build, probe WHERE build.k = probe.k";
        let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
        let tables = bound_query_tables(&bound, &catalog).unwrap();
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::default()).unwrap();
        let mut plan = optimized.plan.clone();
        force_method(&mut plan.root, JoinMethod::Hash);

        let context = format!("probe rows={rows} [HASH]");
        let (row_out, row_obs) =
            execute_plan_observed_with(&plan, &tables, ExecMode::RowAtATime).unwrap();
        for workers in [1usize, 2, 4] {
            let label = format!("{context} workers={workers}");
            let (out, obs) =
                execute_plan_observed_with(&plan, &tables, ExecMode::Vectorized { workers })
                    .unwrap();
            assert_eq!(out.count, row_out.count, "{label}: count");
            assert_eq!(obs.scan_outputs, row_obs.scan_outputs, "{label}: scan outputs");
            assert_eq!(obs.join_outputs, row_obs.join_outputs, "{label}: join outputs");
            if workers > 1 && rows >= PARALLEL_MIN_ROWS {
                assert!(
                    out.metrics.morsels > 1,
                    "{label}: parallel probe should split {rows} rows into morsels, got {}",
                    out.metrics.morsels
                );
            }
        }
    }
}

/// The radix-partitioned path at scale: a build side spanning several
/// partition's worth of keys (an exact multiple of the per-partition build
/// target) against a probe side an exact multiple of the parallel
/// threshold. Bit-exact against the row oracle across worker counts, with
/// the partition counter engaged and — for `COUNT(*)` — no pair list ever
/// materialized.
#[test]
fn radix_partitioned_join_matches_oracle_bit_exactly() {
    use els::exec::PARALLEL_MIN_ROWS;

    let mut catalog = Catalog::new();
    catalog
        .register(
            TableSpec::new("build", 8192)
                .column(ColumnSpec::new(
                    "k",
                    Distribution::WithNulls {
                        inner: Box::new(Distribution::UniformInt { lo: 0, hi: 4000 }),
                        null_fraction: 0.05,
                    },
                ))
                .generate(21),
            &CollectOptions::default(),
        )
        .unwrap();
    catalog
        .register(
            TableSpec::new("probe", 4 * PARALLEL_MIN_ROWS)
                .column(ColumnSpec::new(
                    "k",
                    Distribution::WithNulls {
                        inner: Box::new(Distribution::ZipfInt { n: 3000, theta: 0.8, start: 0 }),
                        null_fraction: 0.05,
                    },
                ))
                .generate(22),
            &CollectOptions::default(),
        )
        .unwrap();
    let sql = "SELECT COUNT(*) FROM build, probe WHERE build.k = probe.k";
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::default()).unwrap();
    let mut plan = optimized.plan.clone();
    force_method(&mut plan.root, JoinMethod::Hash);
    check_plan(&plan, &tables, "radix-scale probe [HASH]");
    for workers in [2usize, 3, 8] {
        let (out, _) =
            execute_plan_observed_with(&plan, &tables, ExecMode::Vectorized { workers }).unwrap();
        assert!(
            out.metrics.partitions > 1,
            "workers={workers}: the radix path should engage, partitions={}",
            out.metrics.partitions
        );
        assert_eq!(
            out.metrics.pair_lists, 0,
            "workers={workers}: a fused COUNT(*) root must not materialize row-id pairs"
        );
    }
    // Serial never partitions, and the fused root still skips the pair list.
    let (serial, _) =
        execute_plan_observed_with(&plan, &tables, ExecMode::Vectorized { workers: 1 }).unwrap();
    assert_eq!(serial.metrics.partitions, 0);
    assert_eq!(serial.metrics.pair_lists, 0);
}

/// Degenerate key populations: an all-NULL build side and a filter-emptied
/// build side must produce zero matches — identically on the serial,
/// stealing, and radix paths.
#[test]
fn all_null_and_empty_build_sides_join_to_nothing() {
    use els::exec::PARALLEL_MIN_ROWS;

    let mut catalog = Catalog::new();
    catalog
        .register(
            TableSpec::new("build", 8192)
                .column(ColumnSpec::new(
                    "k",
                    Distribution::WithNulls {
                        inner: Box::new(Distribution::UniformInt { lo: 0, hi: 100 }),
                        null_fraction: 1.0,
                    },
                ))
                .column(ColumnSpec::new("f", Distribution::UniformInt { lo: 0, hi: 9 }))
                .generate(31),
            &CollectOptions::default(),
        )
        .unwrap();
    catalog
        .register(
            TableSpec::new("probe", PARALLEL_MIN_ROWS + 1)
                .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi: 100 }))
                .column(ColumnSpec::new("f", Distribution::UniformInt { lo: 0, hi: 9 }))
                .generate(32),
            &CollectOptions::default(),
        )
        .unwrap();
    // All-NULL build keys: every probe row misses.
    let null_sql = "SELECT COUNT(*) FROM build, probe WHERE build.k = probe.k";
    // Filter-emptied build side: the kernel sees an empty selection.
    let empty_sql = "SELECT COUNT(*) FROM build, probe WHERE build.k = probe.k AND build.f < 0";
    for sql in [null_sql, empty_sql] {
        let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
        let tables = bound_query_tables(&bound, &catalog).unwrap();
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::default()).unwrap();
        let mut plan = optimized.plan.clone();
        force_method(&mut plan.root, JoinMethod::Hash);
        check_plan(&plan, &tables, &format!("degenerate build (`{sql}`) [HASH]"));
        for workers in [1usize, 2, 8] {
            let (out, _) =
                execute_plan_observed_with(&plan, &tables, ExecMode::Vectorized { workers })
                    .unwrap();
            assert_eq!(out.count, 0, "`{sql}` workers={workers}");
        }
    }
}

/// The morsel-parallel band join at scale: an outer side past the parallel
/// threshold against a small inner, joined only by `outer.k < inner.k`.
/// Row-oracle parity (rows, counters including `range_join_rows`,
/// observations) across worker counts, with the morsel split engaged.
#[test]
fn parallel_band_join_matches_on_a_large_outer() {
    use els::core::ColumnRef;
    use els::exec::{PlanOutput, PARALLEL_MIN_ROWS};

    let outer = Arc::new(
        TableSpec::new("outer", 2 * PARALLEL_MIN_ROWS)
            .column(ColumnSpec::new(
                "k",
                Distribution::WithNulls {
                    inner: Box::new(Distribution::UniformInt { lo: 0, hi: 600 }),
                    null_fraction: 0.05,
                },
            ))
            .generate(41),
    );
    let inner = Arc::new(
        TableSpec::new("inner", 500)
            .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi: 600 }))
            .generate(42),
    );
    let tables = vec![outer, inner];
    for output in [PlanOutput::CountStar, PlanOutput::Star] {
        let plan = QueryPlan {
            root: PlanNode::Join {
                method: JoinMethod::Range,
                left: Box::new(PlanNode::Scan { table_id: 0, filters: Vec::new() }),
                right: Box::new(PlanNode::Scan { table_id: 1, filters: Vec::new() }),
                keys: vec![],
                ranges: vec![(ColumnRef::new(0, 0), els::core::CmpOp::Lt, ColumnRef::new(1, 0))],
            },
            output,
            order_by: Vec::new(),
            limit: None,
        };
        check_plan(&plan, &tables, "large band join [RANGE]");
        let (out, _) =
            execute_plan_observed_with(&plan, &tables, ExecMode::Vectorized { workers: 4 })
                .unwrap();
        assert!(out.count > 0);
        assert!(out.metrics.morsels > 1, "morsel split expected, got {}", out.metrics.morsels);
        assert_eq!(out.metrics.range_join_rows, out.count, "band output is the query result");
    }
}

/// Near-overflow keys: the old f64-image hash keys collided above 2⁵³;
/// the typed path must keep giant int keys exact end to end.
#[test]
fn giant_int_keys_join_exactly() {
    let mut catalog = Catalog::new();
    for (name, offsets) in [("big0", [0i64, 1, 2, 3]), ("big1", [0i64, 2, 4, 1])] {
        let mut col = els::storage::ColumnVector::new(els::storage::DataType::Int);
        for o in offsets {
            col.push(els::storage::Value::Int(i64::MAX - o)).unwrap();
        }
        let table = Table::new(name, vec![("k".to_owned(), col)]).unwrap();
        catalog.register(table, &CollectOptions::default()).unwrap();
    }
    let sql = "SELECT COUNT(*) FROM big0, big1 WHERE big0.k = big1.k";
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::default()).unwrap();
    for method in [JoinMethod::NestedLoop, JoinMethod::SortMerge, JoinMethod::Hash] {
        let mut plan = optimized.plan.clone();
        force_method(&mut plan.root, method);
        let (out, _) =
            execute_plan_observed_with(&plan, &tables, ExecMode::Vectorized { workers: 1 })
                .unwrap();
        // i64::MAX, MAX-1, MAX-2 match; MAX-3 vs MAX-4 do not.
        assert_eq!(out.count, 3, "{} must not collapse near-MAX keys", method.name());
        check_plan(&plan, &tables, &format!("giant keys [{}]", method.name()));
    }
}
