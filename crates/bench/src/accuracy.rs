//! Estimation-accuracy measurement for the throughput/kernels benches.
//!
//! Runs a workload through [`Database::explain_analyze`] under each of the
//! paper's four estimator presets and summarizes the per-join q-errors —
//! the same estimated-vs-actual comparison as the paper's Section 8 table,
//! but folded to median/p95/max so the BENCH JSONs can carry an `accuracy`
//! section and the smoke gate can pin a regression threshold on it.

use els::engine::Database;
use els_catalog::FeedbackMode;
use els_optimizer::{EstimatorPreset, OptimizerOptions};
use els_storage::Table;

use crate::workload::quantile;

/// The per-preset q-error summary over one workload.
#[derive(Debug, Clone)]
pub struct AccuracySummary {
    /// The paper's preset label, e.g. `Orig. ELS`.
    pub label: String,
    /// The selectivity rule's short name ("M", "SS", "LS", …).
    pub rule: String,
    /// Number of join-operator q-error samples.
    pub samples: usize,
    /// Median q-error (nearest-rank).
    pub median_q: f64,
    /// 95th-percentile q-error.
    pub p95_q: f64,
    /// Worst q-error.
    pub max_q: f64,
}

/// All four of the paper's estimator presets, in table order.
pub const PRESETS: [EstimatorPreset; 4] =
    [EstimatorPreset::SmNoPtc, EstimatorPreset::Sm, EstimatorPreset::Sss, EstimatorPreset::Els];

/// Measure estimation accuracy: for each preset, build a database over
/// `tables`, `explain_analyze` every query, and pool the join-operator
/// q-errors. Panics if a workload query fails — these are benchmark
/// fixtures, not user input.
pub fn preset_accuracy(tables: &[Table], queries: &[String]) -> Vec<AccuracySummary> {
    PRESETS
        .iter()
        .map(|&preset| {
            let mut db = Database::new();
            // Same plan space as the throughput engine so the analyzed
            // plans match the ones the benches execute.
            db.set_optimizer_options(
                OptimizerOptions::preset(preset).with_bushy_trees().with_hash_join(),
            );
            for table in tables {
                db.register(table.clone()).expect("accuracy fixture tables register");
            }
            let mut qerrs: Vec<f64> = Vec::new();
            let mut rule = String::new();
            for sql in queries {
                let report = db.explain_analyze(sql).expect("accuracy workload queries execute");
                rule = report.rule.clone();
                qerrs.extend(report.join_operators().map(|op| op.q_error()));
            }
            qerrs.sort_by(f64::total_cmp);
            let (median_q, p95_q, max_q) = if qerrs.is_empty() {
                (1.0, 1.0, 1.0)
            } else {
                (quantile(&qerrs, 0.5), quantile(&qerrs, 0.95), *qerrs.last().unwrap())
            };
            AccuracySummary {
                label: preset.label().to_owned(),
                rule,
                samples: qerrs.len(),
                median_q,
                p95_q,
                max_q,
            }
        })
        .collect()
}

/// Render the accuracy summaries as a JSON array (hand-rolled; infinities
/// become the string `"inf"` to stay valid JSON).
pub fn accuracy_json(summaries: &[AccuracySummary]) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "\"inf\"".to_owned()
        }
    }
    let rows: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "{{\"label\": \"{}\", \"rule\": \"{}\", \"samples\": {}, \
                 \"median_q\": {}, \"p95_q\": {}, \"max_q\": {}}}",
                s.label,
                s.rule,
                s.samples,
                num(s.median_q),
                num(s.p95_q),
                num(s.max_q)
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// The before/after-feedback q-error summary of one preset: the workload
/// runs twice through one database under [`FeedbackMode::Apply`] — the
/// first pass learns per-key corrections from its own estimated-vs-actual
/// residuals, the second pass replays the identical queries against the
/// corrected estimator.
#[derive(Debug, Clone)]
pub struct FeedbackSummary {
    /// The paper's preset label, e.g. `Orig. SM`.
    pub label: String,
    /// The selectivity rule's short name.
    pub rule: String,
    /// Join q-error samples per pass.
    pub samples: usize,
    /// Median q-error of the learning (first) pass.
    pub median_q_before: f64,
    /// Median q-error of the corrected (second) pass.
    pub median_q_after: f64,
    /// Worst q-error of the learning pass.
    pub max_q_before: f64,
    /// Worst q-error of the corrected pass.
    pub max_q_after: f64,
    /// Observations harvested across both passes.
    pub learned: u64,
    /// Corrections published (each one a plan-invalidation request).
    pub published: u64,
}

/// Measure the feedback loop: for each preset, run `queries` twice under
/// [`FeedbackMode::Apply`] and summarize each pass's join q-errors. The
/// second pass's estimates carry whatever corrections the first pass
/// published, so `median_q_after <= median_q_before` is the loop working.
pub fn preset_feedback_accuracy(tables: &[Table], queries: &[String]) -> Vec<FeedbackSummary> {
    PRESETS
        .iter()
        .map(|&preset| {
            let mut db = Database::new();
            db.set_optimizer_options(
                OptimizerOptions::preset(preset)
                    .with_bushy_trees()
                    .with_hash_join()
                    .with_feedback(FeedbackMode::Apply),
            );
            for table in tables {
                db.register(table.clone()).expect("feedback fixture tables register");
            }
            let mut rule = String::new();
            let mut pass = |db: &Database| {
                let mut qerrs: Vec<f64> = Vec::new();
                for sql in queries {
                    let report =
                        db.explain_analyze(sql).expect("feedback workload queries execute");
                    rule = report.rule.clone();
                    qerrs.extend(report.join_operators().map(|op| op.q_error()));
                }
                qerrs.sort_by(f64::total_cmp);
                if qerrs.is_empty() {
                    (0, 1.0, 1.0)
                } else {
                    (qerrs.len(), quantile(&qerrs, 0.5), *qerrs.last().unwrap())
                }
            };
            let (samples, median_q_before, max_q_before) = pass(&db);
            let (_, median_q_after, max_q_after) = pass(&db);
            let counters = db.catalog().feedback().counters();
            FeedbackSummary {
                label: preset.label().to_owned(),
                rule,
                samples,
                median_q_before,
                median_q_after,
                max_q_before,
                max_q_after,
                learned: counters.learned,
                published: counters.epoch_bumps,
            }
        })
        .collect()
}

/// Render the feedback summaries as a JSON array (same conventions as
/// [`accuracy_json`]).
pub fn feedback_json(summaries: &[FeedbackSummary]) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "\"inf\"".to_owned()
        }
    }
    let rows: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "{{\"label\": \"{}\", \"rule\": \"{}\", \"samples\": {}, \
                 \"median_q_before\": {}, \"median_q_after\": {}, \
                 \"max_q_before\": {}, \"max_q_after\": {}, \
                 \"learned\": {}, \"published\": {}}}",
                s.label,
                s.rule,
                s.samples,
                num(s.median_q_before),
                num(s.median_q_after),
                num(s.max_q_before),
                num(s.max_q_after),
                s.learned,
                s.published
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::starburst_experiment_tables_sized;

    #[test]
    fn accuracy_ranks_els_at_or_above_the_baselines() {
        let tables = starburst_experiment_tables_sized(7, &[50, 500, 2_000, 4_000usize]);
        let queries = vec![crate::SECTION8_SQL.to_owned()];
        let summaries = preset_accuracy(&tables, &queries);
        assert_eq!(summaries.len(), 4);
        let els = summaries.iter().find(|s| s.label == "Orig. ELS").unwrap();
        let sm = summaries.iter().find(|s| s.label == "Orig. SM").unwrap();
        assert_eq!(els.samples, 3, "three joins in the 4-table chain");
        // The paper's headline: ELS estimates the chain well; plain SM
        // without closure is far off.
        assert!(els.median_q <= sm.median_q, "ELS {} vs SM {}", els.median_q, sm.median_q);
        assert!(els.median_q < 2.0, "ELS median q-error degraded: {}", els.median_q);
    }

    #[test]
    fn feedback_replay_never_regresses_and_rescues_sss() {
        let tables = starburst_experiment_tables_sized(7, &[50, 500, 2_000, 4_000usize]);
        let queries = vec![crate::SECTION8_SQL.to_owned()];
        let summaries = preset_feedback_accuracy(&tables, &queries);
        assert_eq!(summaries.len(), 4);
        for s in &summaries {
            assert!(
                s.median_q_after <= s.median_q_before,
                "{}: feedback regressed {} -> {}",
                s.label,
                s.median_q_before,
                s.median_q_after
            );
            assert!(s.learned > 0, "{}: nothing harvested", s.label);
        }
        // SSS collapses its estimates on this chain; one learning pass pulls
        // the replay's median down by orders of magnitude (the class residual
        // transfers cleanly because SS applies one correction per class).
        let sss = summaries.iter().find(|s| s.label == "Orig.+PTC SSS").unwrap();
        assert!(
            sss.median_q_before > 10.0,
            "SSS fixture not broken enough: {}",
            sss.median_q_before
        );
        assert!(
            sss.median_q_after < sss.median_q_before / 2.0,
            "feedback should rescue SSS: {} -> {}",
            sss.median_q_before,
            sss.median_q_after
        );
        assert!(sss.published >= 1);
    }

    #[test]
    fn feedback_converges_under_rule_m() {
        // Rule M with closure is the adversarial case: corrections raise the
        // chosen plan's estimates, so the optimizer escapes to the next
        // still-collapsed plan shape for a pass or two before every shape is
        // corrected. The replay medians must converge, not cycle.
        let tables = starburst_experiment_tables_sized(7, &[50, 500, 2_000, 4_000usize]);
        let mut db = Database::new();
        db.set_optimizer_options(
            OptimizerOptions::preset(EstimatorPreset::Sm)
                .with_bushy_trees()
                .with_hash_join()
                .with_feedback(FeedbackMode::Apply),
        );
        for t in &tables {
            db.register(t.clone()).unwrap();
        }
        let median = |db: &Database| {
            let report = db.explain_analyze(crate::SECTION8_SQL).unwrap();
            let mut qs: Vec<f64> = report.join_operators().map(|op| op.q_error()).collect();
            qs.sort_by(f64::total_cmp);
            quantile(&qs, 0.5)
        };
        let first = median(&db);
        assert!(first > 10.0, "rule-M fixture not broken enough: {first}");
        let mut last = first;
        for pass in 2..=5 {
            let m = median(&db);
            assert!(m <= last, "pass {pass} regressed: {last} -> {m}");
            last = m;
        }
        assert!(
            last < first / 2.0,
            "rule-M replays should converge well below the raw medians: {first} -> {last}"
        );
        // Convergence means publications stopped, not just slowed: the
        // per-key cap bounds epoch churn no matter how many replays run.
        let counters = db.catalog().feedback().counters();
        assert!(counters.epoch_bumps <= 8 * counters.keys, "{counters:?}");
    }

    #[test]
    fn feedback_json_is_stable_and_inf_safe() {
        let summaries = vec![FeedbackSummary {
            label: "Orig. SM".to_owned(),
            rule: "LS".to_owned(),
            samples: 3,
            median_q_before: 100.0,
            median_q_after: 1.5,
            max_q_before: f64::INFINITY,
            max_q_after: 2.0,
            learned: 12,
            published: 2,
        }];
        let json = feedback_json(&summaries);
        assert_eq!(
            json,
            "[{\"label\": \"Orig. SM\", \"rule\": \"LS\", \"samples\": 3, \
             \"median_q_before\": 100.0000, \"median_q_after\": 1.5000, \
             \"max_q_before\": \"inf\", \"max_q_after\": 2.0000, \
             \"learned\": 12, \"published\": 2}]"
        );
    }

    #[test]
    fn accuracy_json_is_stable_and_inf_safe() {
        let summaries = vec![AccuracySummary {
            label: "Orig. ELS".to_owned(),
            rule: "LS".to_owned(),
            samples: 3,
            median_q: 1.0,
            p95_q: 2.5,
            max_q: f64::INFINITY,
        }];
        let json = accuracy_json(&summaries);
        assert_eq!(
            json,
            "[{\"label\": \"Orig. ELS\", \"rule\": \"LS\", \"samples\": 3, \
             \"median_q\": 1.0000, \"p95_q\": 2.5000, \"max_q\": \"inf\"}]"
        );
    }
}
