//! **F8** — buffer-size sensitivity of the Section 8 damage.
//!
//! The paper ran "all QEPs … using the same buffer size". This figure
//! re-executes the T1 plans under LRU buffer pools of increasing capacity
//! and reports *physical* page reads. G occupies 391 pages (100 000 rows ×
//! 16 B ÷ 4 KiB), B 196; the misled plans' nested-loops rescans are
//! absorbed exactly when the rescanned inner fits.
//!
//! Measured shape: below G's 391-page footprint the buffer does nothing
//! for the misled plans (LRU sequential flooding — every rescan page
//! misses, 93× the ELS plan's I/O); once G fits, physical I/O collapses to
//! parity. The *CPU* gap (15M vs 161k tuple touches — the wall-time
//! column of T1) remains at every buffer size: buffering forgives I/O, not
//! comparisons. The paper's 9–12× with Starburst's fixed buffer sits
//! between these two regimes.

use els_bench::{section8_catalog, SECTION8_SQL};
use els_exec::execute_plan;
use els_exec::executor::execute_plan_buffered;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els_sql::{bind, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = section8_catalog(42);
    let bound = bind(&parse(SECTION8_SQL)?, &catalog)?;
    let tables = bound_query_tables(&bound, &catalog)?;
    for (i, name) in ["S", "M", "B", "G"].iter().enumerate() {
        println!("{name}: {} pages", tables[i].num_pages());
    }

    let presets = [EstimatorPreset::Sm, EstimatorPreset::Els];
    let buffers: [Option<usize>; 5] = [None, Some(100), Some(500), Some(1000), Some(2000)];

    println!("\n# F8 — physical page reads by buffer capacity");
    println!("query: {SECTION8_SQL}\n");
    print!("| {:<14} |", "estimator");
    for b in buffers {
        match b {
            None => print!(" {:>10} |", "unbuffered"),
            Some(n) => print!(" {:>10} |", format!("{n}p")),
        }
    }
    println!();
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(16),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12)
    );

    let mut rows = Vec::new();
    for preset in presets {
        let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset))?;
        let mut row = Vec::new();
        for b in buffers {
            let out = match b {
                None => execute_plan(&optimized.plan, &tables)?,
                Some(n) => execute_plan_buffered(&optimized.plan, &tables, n)?,
            };
            assert_eq!(out.count, 100);
            row.push(out.metrics.physical_pages_read);
        }
        print!("| {:<14} |", preset.label());
        for v in &row {
            print!(" {:>10} |", v);
        }
        println!();
        rows.push(row);
    }

    println!("\nSM-plan physical I/O relative to the ELS plan, per buffer size:");
    for (i, b) in buffers.iter().enumerate() {
        let label = match b {
            None => "unbuffered".to_owned(),
            Some(n) => format!("{n} pages"),
        };
        println!("  {:<12} {:>8.1}x", label, rows[0][i] as f64 / rows[1][i] as f64);
    }
    Ok(())
}
