//! **F4** — plan quality across a query family.
//!
//! Generalizes the Section 8 experiment beyond one query: a family of
//! chain and star join queries (3–5 tables, with and without local
//! predicates) over generated catalogs is optimized by each of the paper's
//! estimation algorithms, every chosen plan is executed, and the measured
//! work (simulated page reads) is reported relative to the ELS plan.
//!
//! Expected shape: ELS never loses; SM/SSS pay large multiples whenever a
//! query contains derived predicates that collapse their estimates.

use els_bench::geometric_mean;
use els_catalog::collect::CollectOptions;
use els_catalog::Catalog;
use els_exec::execute_plan;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els_sql::{bind, parse};
use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

fn catalog(seed: u64) -> Catalog {
    let mut c = Catalog::new();
    let specs: [(&str, &str, usize); 5] = [
        ("T1", "a", 500),
        ("T2", "b", 5_000),
        ("T3", "c", 20_000),
        ("T4", "d", 60_000),
        ("T5", "e", 2_000),
    ];
    for (name, col, rows) in specs {
        c.register(
            TableSpec::new(name, rows)
                .column(ColumnSpec::new(col, Distribution::SequentialInt { start: 0 }))
                .column(ColumnSpec::new(
                    "payload",
                    Distribution::UniformInt { lo: 0, hi: 1_000_000 },
                ))
                .generate(seed),
            &CollectOptions::default(),
        )
        .unwrap();
    }
    c
}

const QUERIES: [(&str, &str); 6] = [
    ("Q1 chain-3 + filter", "SELECT COUNT(*) FROM T1, T2, T3 WHERE a = b AND b = c AND a < 50"),
    (
        "Q2 chain-4 + filter",
        "SELECT COUNT(*) FROM T1, T2, T3, T4 WHERE a = b AND b = c AND c = d AND a < 50",
    ),
    (
        "Q3 star-4 + filter",
        "SELECT COUNT(*) FROM T1, T2, T3, T4 WHERE a = b AND a = c AND a = d AND a < 50",
    ),
    (
        "Q4 chain-5 + filter",
        "SELECT COUNT(*) FROM T1, T2, T3, T4, T5 WHERE a = b AND b = c AND c = d AND d = e AND a < 20",
    ),
    ("Q5 chain-3, no filter", "SELECT COUNT(*) FROM T1, T2, T3 WHERE a = b AND b = c"),
    (
        "Q6 star-3 + tight filter",
        "SELECT COUNT(*) FROM T2, T3, T4 WHERE b = c AND b = d AND b < 10",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog(99);
    let presets = [EstimatorPreset::Sm, EstimatorPreset::Sss, EstimatorPreset::Els];

    println!("# F4 — measured plan work (simulated page reads) by estimator");
    println!("(all plans verified to produce identical counts)\n");
    println!(
        "| {:<24} | {:>12} | {:>12} | {:>12} | {:>8} | {:>8} |",
        "query", "SM pages", "SSS pages", "ELS pages", "SM/ELS", "SSS/ELS"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|",
        "-".repeat(26),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(10),
        "-".repeat(10)
    );

    let mut sm_ratios = Vec::new();
    let mut sss_ratios = Vec::new();
    for (label, sql) in QUERIES {
        let bound = bind(&parse(sql)?, &catalog)?;
        let tables = bound_query_tables(&bound, &catalog)?;
        let mut pages = Vec::new();
        let mut counts = Vec::new();
        for preset in presets {
            let optimized = optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset))?;
            let out = execute_plan(&optimized.plan, &tables)?;
            pages.push(out.metrics.pages_read as f64);
            counts.push(out.count);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{label}: plans disagree: {counts:?}");
        let (sm, sss, els) = (pages[0], pages[1], pages[2]);
        sm_ratios.push(sm / els);
        sss_ratios.push(sss / els);
        println!(
            "| {:<24} | {:>12.0} | {:>12.0} | {:>12.0} | {:>7.1}x | {:>7.1}x |",
            label,
            sm,
            sss,
            els,
            sm / els,
            sss / els
        );
    }
    println!(
        "\ngeometric-mean slowdown vs ELS: SM {:.1}x, SSS {:.1}x",
        geometric_mean(&sm_ratios),
        geometric_mean(&sss_ratios)
    );
    Ok(())
}
