//! Heuristic join-order search for large queries.
//!
//! The paper motivates *incremental* estimation precisely because every
//! practical join-ordering algorithm consumes sizes one join at a time:
//! "the dynamic programming algorithm [13], the AB algorithm [15] and
//! randomized algorithms [14, 5]" (Section 1). The exact DP of
//! [`crate::enumerate`] covers [13] up to [`crate::enumerate::MAX_DP_TABLES`]
//! tables; this module provides the other two families for queries beyond
//! that:
//!
//! * [`greedy_order`] — a minimum-intermediate-size greedy (the flavour of
//!   the augmentation part of Swami & Iyer's AB algorithm [15]): start from
//!   the best single table and repeatedly append the table whose join
//!   yields the cheapest next step.
//! * [`iterative_improvement`] — randomized local search over join orders
//!   (Swami's thesis [14] / Kang [5]): repeated random restarts, each
//!   improved by swap moves until a local optimum.
//!
//! Both return left-deep plans costed by the same cost model as the DP, so
//! their plan quality is directly comparable (see the `heuristics`
//! benchmarks and tests).

use els_exec::{JoinMethod, PlanNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use els_core::CardinalityEstimator;

use crate::cost::CostParams;
use crate::enumerate::{join_keys, range_keys, scan_filters, EnumerationResult};
use crate::error::{OptimizerError, OptimizerResult};
use crate::profile::TableProfile;

/// Cost one fixed left-deep order, choosing the best join method per step
/// (shared by all strategies in this module).
pub fn cost_order(
    order: &[usize],
    els: &dyn CardinalityEstimator,
    profiles: &[TableProfile],
    methods: &[JoinMethod],
    params: &CostParams,
) -> OptimizerResult<EnumerationResult> {
    let Some((&first, rest)) = order.split_first() else {
        return Err(OptimizerError::Unsupported("empty join order".into()));
    };
    let predicates = els.predicates();
    let mut state = els.initial_state(first)?;
    let mut node = PlanNode::Scan { table_id: first, filters: scan_filters(predicates, first)? };
    let mut cost = params.scan(&profiles[first]);
    let mut mask: u64 = 1 << first;
    let mut sizes = Vec::with_capacity(rest.len());

    for &t in rest {
        let new_state = els.join(&state, t)?;
        let outer_rows = state.cardinality();
        let inner_eff = els.effective_cardinality(t)?;
        let out_rows = new_state.cardinality();
        let keys = join_keys(predicates, mask, t);
        let ranges = range_keys(predicates, mask, t);

        // Same method policy as the DP: the band join competes exactly when
        // it is executable (no equi-keys, at least one inequality edge).
        let band_ok = keys.is_empty() && !ranges.is_empty();
        // Keyless methods emit the full cross product before the residual
        // inequality filter; only the band join prunes while probing.
        let emit_rows = if band_ok { outer_rows * inner_eff } else { out_rows };
        let mut best: Option<(JoinMethod, f64)> = None;
        for &m in methods.iter().chain(band_ok.then_some(&JoinMethod::Range)) {
            if m == JoinMethod::IndexNestedLoop && keys.is_empty() {
                continue;
            }
            if m == JoinMethod::Range && !band_ok {
                continue;
            }
            let join_cost = match m {
                JoinMethod::NestedLoop => params.nested_loop(outer_rows, &profiles[t]),
                JoinMethod::SortMerge => {
                    params.sort_merge(outer_rows, &profiles[t], inner_eff, emit_rows)
                }
                JoinMethod::Hash => params.hash(outer_rows, &profiles[t], inner_eff, emit_rows),
                JoinMethod::IndexNestedLoop => {
                    params.index_nested_loop(outer_rows, &profiles[t], emit_rows)
                }
                JoinMethod::Range => {
                    params.range_join(outer_rows, &profiles[t], inner_eff, out_rows)
                }
            };
            if best.is_none_or(|(_, c)| join_cost < c) {
                best = Some((m, join_cost));
            }
        }
        let Some((method, join_cost)) = best else {
            return Err(OptimizerError::Unsupported("no join methods enabled".into()));
        };
        cost += join_cost;
        node = PlanNode::Join {
            method,
            left: Box::new(node),
            right: Box::new(PlanNode::Scan { table_id: t, filters: scan_filters(predicates, t)? }),
            keys,
            ranges,
        };
        mask |= 1 << t;
        state = new_state;
        sizes.push(state.cardinality());
    }
    Ok(EnumerationResult {
        root: node,
        join_order: order.to_vec(),
        estimated_sizes: sizes,
        estimated_cost: cost,
    })
}

/// Greedy minimum-cost augmentation: try every starting table, then extend
/// with whichever next table adds the least cost. O(n³) cost evaluations.
pub fn greedy_order(
    els: &dyn CardinalityEstimator,
    profiles: &[TableProfile],
    methods: &[JoinMethod],
    params: &CostParams,
) -> OptimizerResult<EnumerationResult> {
    let n = profiles.len();
    if n == 0 {
        return Err(OptimizerError::Unsupported("query with no tables".into()));
    }
    let mut best: Option<EnumerationResult> = None;
    for start in 0..n {
        let mut order = vec![start];
        let mut remaining: Vec<usize> = (0..n).filter(|&t| t != start).collect();
        while !remaining.is_empty() {
            // Pick the extension with the cheapest partial cost.
            let mut chosen = 0usize;
            let mut chosen_cost = f64::INFINITY;
            for (i, &t) in remaining.iter().enumerate() {
                let mut candidate = order.clone();
                candidate.push(t);
                let partial = cost_order(&candidate, els, profiles, methods, params)?;
                if partial.estimated_cost < chosen_cost {
                    chosen_cost = partial.estimated_cost;
                    chosen = i;
                }
            }
            order.push(remaining.swap_remove(chosen));
        }
        let full = cost_order(&order, els, profiles, methods, params)?;
        if best.as_ref().is_none_or(|b| full.estimated_cost < b.estimated_cost) {
            best = Some(full);
        }
    }
    best.ok_or_else(|| {
        OptimizerError::Internal("greedy ordering produced no candidate order".into())
    })
}

/// Randomized iterative improvement: random restart orders, each improved
/// by adjacent-swap and random-swap moves until no move helps, keeping the
/// global best. Deterministic for a given `seed`.
pub fn iterative_improvement(
    els: &dyn CardinalityEstimator,
    profiles: &[TableProfile],
    methods: &[JoinMethod],
    params: &CostParams,
    restarts: usize,
    seed: u64,
) -> OptimizerResult<EnumerationResult> {
    let n = profiles.len();
    if n == 0 {
        return Err(OptimizerError::Unsupported("query with no tables".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut global: Option<EnumerationResult> = None;
    for _ in 0..restarts.max(1) {
        // Random start.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut current = cost_order(&order, els, profiles, methods, params)?;
        // Hill-climb with swap moves.
        let mut improved = true;
        while improved {
            improved = false;
            'moves: for i in 0..n {
                for j in (i + 1)..n {
                    let mut cand = current.join_order.clone();
                    cand.swap(i, j);
                    let res = cost_order(&cand, els, profiles, methods, params)?;
                    if res.estimated_cost + 1e-9 < current.estimated_cost {
                        current = res;
                        improved = true;
                        continue 'moves;
                    }
                }
            }
        }
        if global.as_ref().is_none_or(|g| current.estimated_cost < g.estimated_cost) {
            global = Some(current);
        }
    }
    global.ok_or_else(|| {
        OptimizerError::Internal("iterative improvement produced no candidate order".into())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, TreeShape};
    use els_core::predicate::{CmpOp, Predicate};
    use els_core::{
        ColumnRef, ColumnStatistics, Els, ElsOptions, QueryStatistics, TableStatistics,
    };

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    const NL_SM: [JoinMethod; 2] = [JoinMethod::NestedLoop, JoinMethod::SortMerge];

    /// A chain query over n tables with growing cardinalities and a filter
    /// on table 0.
    fn chain(n: usize) -> (Els, Vec<TableProfile>) {
        let stats = QueryStatistics::new(
            (0..n)
                .map(|i| {
                    let rows = 1000.0 * (i + 1) as f64;
                    TableStatistics::new(
                        rows,
                        vec![ColumnStatistics::with_domain(rows, 0.0, rows - 1.0)],
                    )
                })
                .collect(),
        );
        let mut preds: Vec<Predicate> =
            (1..n).map(|i| Predicate::col_eq(c(i - 1, 0), c(i, 0))).collect();
        preds.push(Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64));
        let els = Els::prepare(&preds, &stats, &ElsOptions::algorithm_els()).unwrap();
        let profiles =
            (0..n).map(|i| TableProfile::synthetic(1000.0 * (i + 1) as f64, 16)).collect();
        (els, profiles)
    }

    #[test]
    fn cost_order_matches_dp_on_the_dp_winner() {
        let (els, profiles) = chain(5);
        let dp = enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::LeftDeep)
            .unwrap();
        let re =
            cost_order(&dp.join_order, &els, &profiles, &NL_SM, &CostParams::default()).unwrap();
        assert!((re.estimated_cost - dp.estimated_cost).abs() < 1e-9);
        assert_eq!(re.join_order, dp.join_order);
        assert_eq!(re.estimated_sizes, dp.estimated_sizes);
    }

    #[test]
    fn greedy_is_never_better_than_dp_and_usually_close() {
        for n in [3usize, 5, 7] {
            let (els, profiles) = chain(n);
            let dp =
                enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::LeftDeep)
                    .unwrap();
            let greedy = greedy_order(&els, &profiles, &NL_SM, &CostParams::default()).unwrap();
            assert!(
                greedy.estimated_cost >= dp.estimated_cost - 1e-9,
                "greedy beat the exact DP?! {} < {}",
                greedy.estimated_cost,
                dp.estimated_cost
            );
            assert!(
                greedy.estimated_cost <= dp.estimated_cost * 3.0,
                "greedy {}x worse than DP on an easy chain",
                greedy.estimated_cost / dp.estimated_cost
            );
        }
    }

    #[test]
    fn iterative_improvement_matches_dp_on_small_queries() {
        let (els, profiles) = chain(5);
        let dp = enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::LeftDeep)
            .unwrap();
        let ii =
            iterative_improvement(&els, &profiles, &NL_SM, &CostParams::default(), 6, 7).unwrap();
        // Left-deep local optimum over swaps on a 5-chain reaches the DP
        // optimum with a handful of restarts.
        assert!(
            (ii.estimated_cost - dp.estimated_cost) / dp.estimated_cost < 0.05,
            "II {} vs DP {}",
            ii.estimated_cost,
            dp.estimated_cost
        );
    }

    #[test]
    fn heuristics_scale_past_the_dp_limit() {
        // 18 tables: the DP refuses, the heuristics deliver.
        let (els, profiles) = chain(18);
        assert!(enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::LeftDeep)
            .is_err());
        let greedy = greedy_order(&els, &profiles, &NL_SM, &CostParams::default()).unwrap();
        assert_eq!(greedy.join_order.len(), 18);
        let ii =
            iterative_improvement(&els, &profiles, &NL_SM, &CostParams::default(), 2, 3).unwrap();
        assert_eq!(ii.join_order.len(), 18);
        assert!(greedy.estimated_cost.is_finite() && ii.estimated_cost.is_finite());
    }

    #[test]
    fn iterative_improvement_is_deterministic_per_seed() {
        let (els, profiles) = chain(6);
        let a =
            iterative_improvement(&els, &profiles, &NL_SM, &CostParams::default(), 3, 42).unwrap();
        let b =
            iterative_improvement(&els, &profiles, &NL_SM, &CostParams::default(), 3, 42).unwrap();
        assert_eq!(a.join_order, b.join_order);
        assert_eq!(a.estimated_cost, b.estimated_cost);
    }

    #[test]
    fn empty_inputs_rejected() {
        let stats = QueryStatistics::new(vec![]);
        let els = Els::prepare(&[], &stats, &ElsOptions::default()).unwrap();
        assert!(greedy_order(&els, &[], &NL_SM, &CostParams::default()).is_err());
        assert!(iterative_improvement(&els, &[], &NL_SM, &CostParams::default(), 1, 1).is_err());
        let (els, profiles) = chain(3);
        assert!(cost_order(&[], &els, &profiles, &NL_SM, &CostParams::default()).is_err());
    }
}
