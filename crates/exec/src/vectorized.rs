//! Late-materializing vectorized plan evaluation.
//!
//! The tentpole of the vectorization PR. Instead of materializing a full
//! [`Chunk`] at every operator (the row-at-a-time path clones whole tables
//! at scans and gathers every column at every join), this evaluator carries
//! **row-id selections over shared sources**:
//!
//! * a scan produces a selection vector over the stored table (built by the
//!   typed filter kernels in [`crate::filter::filter_selection`]) — no data
//!   is copied;
//! * hash and sort-merge joins work on **typed key columns** and produce a
//!   pair list of logical row ids, which is *composed* with the inputs'
//!   selections — still no data copied;
//! * only the plan root gathers each surviving column once
//!   ([`VChunk::materialize`]), or never, for `COUNT(*)` outputs.
//!
//! Single-column `Int` equi-joins take fast paths over raw `i64` slices
//! (exact — see `HashKey` in [`crate::join`] for the 2⁵³ story); the hash
//! probe additionally splits into fixed-size **morsels** dispatched to
//! scoped worker threads when a probe side is large enough and more than
//! one worker is configured. Results are deterministic regardless of
//! worker count: morsels are merged in morsel order and the pair list gets
//! the same left-major sort the serial path applies.
//!
//! Nested-loops shapes (rescan, indexed, and keyless joins) delegate to the
//! row-path operators on materialized inputs: their cost is dominated by
//! the simulated rescan charges, and sharing the implementation keeps the
//! two paths' metrics identical by construction. Every operator charges
//! exactly the counters the row-at-a-time oracle charges (a property the
//! differential tests assert), so plan-quality experiments are unaffected
//! by the execution mode.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use els_core::ColumnRef;
use els_storage::{ColumnVector, Table, Value};

use crate::chunk::Chunk;
use crate::error::{ExecError, ExecResult};
use crate::executor::ExecState;
use crate::filter::{bind_filters, filter_selection};
use crate::join::{
    cmp_key_slices, hash_join, hash_key, nested_loop_join, sort_charge, sort_merge_join, HashKey,
};
use crate::metrics::ExecMetrics;
use crate::plan::{JoinMethod, PlanNode};

/// Probe rows per morsel handed to one parallel worker.
pub const MORSEL_ROWS: usize = 2048;

/// Minimum probe rows before the parallel path engages; below this the
/// thread-spawn overhead dominates any probe speedup. Public so the
/// boundary-straddling differential tests can pin sizes right at the
/// threshold.
pub const PARALLEL_MIN_ROWS: usize = 4 * MORSEL_ROWS;

/// One input a selection can point into: either a stored base table
/// (shared, never copied) or a materialized intermediate produced by a
/// delegated row-path operator.
enum VSource {
    /// A base table behind its query `table_id`.
    Base { table_id: usize, data: Arc<Table> },
    /// A materialized intermediate with provenance.
    Mat(Box<Chunk>),
}

/// A late-materialized intermediate result: parallel `(source, row ids)`
/// pairs. Logical row `j` of the chunk is row `rowids[s][j]` of source `s`,
/// for every source — all rowid vectors share the same length.
pub(crate) struct VChunk {
    sources: Vec<VSource>,
    rowids: Vec<Vec<u32>>,
    len: usize,
}

impl VChunk {
    /// A filtered scan: the stored table plus its selection vector.
    fn scan(table_id: usize, data: Arc<Table>, sel: Vec<u32>) -> VChunk {
        let len = sel.len();
        VChunk { sources: vec![VSource::Base { table_id, data }], rowids: vec![sel], len }
    }

    /// Wrap a materialized chunk (identity selection).
    fn from_chunk(c: Chunk) -> VChunk {
        let len = c.num_rows();
        VChunk {
            sources: vec![VSource::Mat(Box::new(c))],
            rowids: vec![(0..len as u32).collect()],
            len,
        }
    }

    /// Number of logical rows.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Resolve a query column to `(source index, column position)`,
    /// searching sources left to right — the same order the row path's
    /// `Chunk::position_of` searches the concatenated join schema.
    fn resolve(&self, c: ColumnRef) -> Option<(usize, usize)> {
        for (si, src) in self.sources.iter().enumerate() {
            match src {
                VSource::Base { table_id, data } => {
                    if c.table == *table_id && c.column < data.num_columns() {
                        return Some((si, c.column));
                    }
                }
                VSource::Mat(ch) => {
                    if let Some(pos) = ch.position_of(c) {
                        return Some((si, pos));
                    }
                }
            }
        }
        None
    }

    /// The physical column behind `(source index, column position)`.
    fn source_column(&self, si: usize, pos: usize) -> ExecResult<&ColumnVector> {
        match &self.sources[si] {
            VSource::Base { data, .. } => Ok(data.column(pos)?),
            VSource::Mat(ch) => Ok(ch.data.column(pos)?),
        }
    }

    /// Compose a join's pair list with both inputs' selections: source `s`
    /// of the result selects `left.rowids[s][l]` for every pair `(l, r)`.
    /// No column data moves; this is the late-materialization step.
    fn compose(left: VChunk, right: VChunk, pairs: &[(u32, u32)]) -> VChunk {
        let mut sources = Vec::with_capacity(left.sources.len() + right.sources.len());
        let mut rowids: Vec<Vec<u32>> = Vec::with_capacity(sources.capacity());
        for (src, ids) in left.sources.into_iter().zip(left.rowids) {
            rowids.push(pairs.iter().map(|&(lj, _)| ids[lj as usize]).collect());
            sources.push(src);
        }
        for (src, ids) in right.sources.into_iter().zip(right.rowids) {
            rowids.push(pairs.iter().map(|&(_, rj)| ids[rj as usize]).collect());
            sources.push(src);
        }
        VChunk { sources, rowids, len: pairs.len() }
    }

    /// Gather every column once, reproducing exactly the chunk the
    /// row-at-a-time path would have built: base-table names for a single
    /// scanned source, the source's own names for a single materialized
    /// intermediate, synthesized `t{T}_c{C}` names under table `join` for
    /// multi-source join results.
    pub(crate) fn materialize(&self) -> ExecResult<Chunk> {
        if let [VSource::Base { table_id, data }] = self.sources.as_slice() {
            let ids = &self.rowids[0];
            let columns = data
                .column_names()
                .iter()
                .zip(data.columns())
                .map(|(n, col)| Ok((n.clone(), col.gather_u32(ids)?)))
                .collect::<ExecResult<Vec<_>>>()?;
            let provenance =
                (0..data.num_columns()).map(|i| ColumnRef::new(*table_id, i)).collect();
            return Ok(Chunk { data: Table::new(data.name().to_owned(), columns)?, provenance });
        }
        if let [VSource::Mat(ch)] = self.sources.as_slice() {
            let ids = &self.rowids[0];
            if ids.len() == ch.num_rows() && ids.iter().enumerate().all(|(i, &v)| v as usize == i) {
                return Ok((**ch).clone());
            }
            let columns = ch
                .data
                .column_names()
                .iter()
                .zip(ch.data.columns())
                .map(|(n, col)| Ok((n.clone(), col.gather_u32(ids)?)))
                .collect::<ExecResult<Vec<_>>>()?;
            return Ok(Chunk {
                data: Table::new(ch.data.name().to_owned(), columns)?,
                provenance: ch.provenance.clone(),
            });
        }
        let mut columns: Vec<(String, ColumnVector)> = Vec::new();
        let mut provenance: Vec<ColumnRef> = Vec::new();
        for (src, ids) in self.sources.iter().zip(&self.rowids) {
            match src {
                VSource::Base { table_id, data } => {
                    for (ci, col) in data.columns().iter().enumerate() {
                        let p = ColumnRef::new(*table_id, ci);
                        columns.push((format!("t{}_c{}", p.table, p.column), col.gather_u32(ids)?));
                        provenance.push(p);
                    }
                }
                VSource::Mat(ch) => {
                    for (ci, col) in ch.data.columns().iter().enumerate() {
                        let p = ch.provenance[ci];
                        columns.push((format!("t{}_c{}", p.table, p.column), col.gather_u32(ids)?));
                        provenance.push(p);
                    }
                }
            }
        }
        Ok(Chunk { data: Table::new("join", columns)?, provenance })
    }
}

/// Evaluate a plan tree, returning the root's late-materialized result.
pub(crate) fn execute_root(
    node: &PlanNode,
    tables: &[Arc<Table>],
    workers: usize,
    st: &mut ExecState<'_>,
) -> ExecResult<VChunk> {
    exec_node(node, tables, workers, st)
}

/// Recursive node evaluation, recording the same per-operator observations
/// (in the same post-order) as the row path.
fn exec_node(
    node: &PlanNode,
    tables: &[Arc<Table>],
    workers: usize,
    st: &mut ExecState<'_>,
) -> ExecResult<VChunk> {
    let start = crate::timing::Stopwatch::start();
    let out = exec_inner(node, tables, workers, st)?;
    match node {
        PlanNode::Scan { table_id, .. } => {
            st.obs.scan_outputs.push((*table_id, out.len() as u64));
            st.obs.scan_elapsed.push(start.elapsed());
        }
        PlanNode::Join { .. } => {
            st.obs.join_outputs.push((node.tables(), out.len() as u64));
            st.obs.join_elapsed.push(start.elapsed());
        }
    }
    Ok(out)
}

fn exec_inner(
    node: &PlanNode,
    tables: &[Arc<Table>],
    workers: usize,
    st: &mut ExecState<'_>,
) -> ExecResult<VChunk> {
    match node {
        PlanNode::Scan { table_id, filters } => {
            let data = tables.get(*table_id).ok_or(ExecError::UnknownTable(*table_id))?;
            st.metrics.tuples_scanned += data.num_rows() as u64;
            st.io.scan_table(*table_id, data.num_pages() as u64, st.metrics);
            let ncols = data.num_columns();
            let bound = bind_filters(filters, |c| {
                (c.table == *table_id && c.column < ncols).then_some(c.column)
            })?;
            let mut sel = Vec::new();
            filter_selection(data, &bound, &mut sel, st.metrics)?;
            st.metrics.tuples_emitted += sel.len() as u64;
            Ok(VChunk::scan(*table_id, Arc::clone(data), sel))
        }
        PlanNode::Join { method, left, right, keys } => {
            let l = exec_node(left, tables, workers, st)?;
            // Rescanning and indexed nested loops share the row-path
            // operators (see module docs): their cost is the simulated
            // rescans, not the evaluation loop.
            if let (JoinMethod::NestedLoop, PlanNode::Scan { table_id, filters }) =
                (method, right.as_ref())
            {
                let lchunk = l.materialize()?;
                let out = crate::executor::rescan_nested_loop(
                    &lchunk, *table_id, filters, keys, tables, st,
                )?;
                return Ok(VChunk::from_chunk(out));
            }
            if *method == JoinMethod::IndexNestedLoop {
                let lchunk = l.materialize()?;
                let out = crate::executor::indexed_nested_loop(&lchunk, right, keys, tables, st)?;
                return Ok(VChunk::from_chunk(out));
            }
            let r = exec_node(right, tables, workers, st)?;
            if keys.is_empty() || *method == JoinMethod::NestedLoop {
                // Keyless joins degenerate to cartesian nested loops in
                // every method; NL over a materialized inner is the row
                // operator by definition.
                let (lc, rc) = (l.materialize()?, r.materialize()?);
                let out = match method {
                    JoinMethod::NestedLoop => nested_loop_join(&lc, &rc, keys, st.metrics)?,
                    JoinMethod::SortMerge => sort_merge_join(&lc, &rc, keys, st.metrics)?,
                    JoinMethod::Hash => hash_join(&lc, &rc, keys, st.metrics)?,
                    JoinMethod::IndexNestedLoop => unreachable!("handled above"),
                };
                return Ok(VChunk::from_chunk(out));
            }
            let pairs = match method {
                JoinMethod::SortMerge => vsort_merge(&l, &r, keys, st.metrics)?,
                JoinMethod::Hash => vhash_join(&l, &r, keys, workers, st.metrics)?,
                JoinMethod::NestedLoop | JoinMethod::IndexNestedLoop => {
                    unreachable!("handled above")
                }
            };
            st.metrics.tuples_emitted += pairs.len() as u64;
            Ok(VChunk::compose(l, r, &pairs))
        }
    }
}

/// One side's key column viewed through its selection: the physical column
/// plus the logical-row → physical-row mapping.
struct SideKey<'a> {
    col: &'a ColumnVector,
    ids: &'a [u32],
}

fn side_keys<'a>(
    v: &'a VChunk,
    refs: impl Iterator<Item = ColumnRef>,
) -> ExecResult<Vec<SideKey<'a>>> {
    refs.map(|c| {
        let (si, pos) = v.resolve(c).ok_or(ExecError::ColumnNotInSchema(c))?;
        Ok(SideKey { col: v.source_column(si, pos)?, ids: &v.rowids[si] })
    })
    .collect()
}

/// Per-row composite hash keys for the generic join path; `None` marks a
/// row with a NULL key component (never matches).
fn gather_hash_keys(side: &[SideKey<'_>], len: usize) -> ExecResult<Vec<Option<Vec<HashKey>>>> {
    (0..len)
        .map(|j| {
            let mut ks = Vec::with_capacity(side.len());
            for sk in side {
                let v = sk.col.get(sk.ids[j] as usize)?;
                match hash_key(&v) {
                    None => return Ok(None),
                    Some(k) => ks.push(k),
                }
            }
            Ok(Some(ks))
        })
        .collect()
}

/// Non-NULL composite sort keys with their logical row ids, in row order
/// (so the stable sorts below permute exactly like the row path's).
fn gather_sort_keys(side: &[SideKey<'_>], len: usize) -> ExecResult<Vec<(Vec<Value>, u32)>> {
    let mut out = Vec::with_capacity(len);
    'rows: for j in 0..len {
        let mut ks = Vec::with_capacity(side.len());
        for sk in side {
            let v = sk.col.get(sk.ids[j] as usize)?;
            if v.is_null() {
                continue 'rows;
            }
            ks.push(v);
        }
        out.push((ks, j as u32));
    }
    Ok(out)
}

/// A minimal deterministic multiply-mix hasher for `i64` join keys; the
/// default SipHash is the dominant cost of an integer hash join.
#[derive(Default, Clone, Copy)]
struct IntHasher(u64);

impl Hasher for IntHasher {
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

type IntMap = HashMap<i64, Vec<u32>, BuildHasherDefault<IntHasher>>;

/// One side's single `Int` key column as raw slices.
struct IntKeys<'a> {
    data: &'a [i64],
    valid: &'a [bool],
    ids: &'a [u32],
}

/// Vectorized hash join on logical row ids. Charges one `hash_probes` per
/// probe-side row (NULLs included), like the row path, and returns pairs in
/// left-major order (the row path's `rows.sort_unstable()`).
fn vhash_join(
    left: &VChunk,
    right: &VChunk,
    keys: &[(ColumnRef, ColumnRef)],
    workers: usize,
    metrics: &mut ExecMetrics,
) -> ExecResult<Vec<(u32, u32)>> {
    let lsides = side_keys(left, keys.iter().map(|&(l, _)| l))?;
    let rsides = side_keys(right, keys.iter().map(|&(_, r)| r))?;
    if let ([lk], [rk]) = (lsides.as_slice(), rsides.as_slice()) {
        if let (Some(ld), Some(rd)) = (lk.col.as_int_slice(), rk.col.as_int_slice()) {
            let build = IntKeys { data: ld, valid: lk.col.validity(), ids: lk.ids };
            let probe = IntKeys { data: rd, valid: rk.col.validity(), ids: rk.ids };
            return Ok(int_hash_join(&build, &probe, workers, metrics));
        }
        if let (Some(ld), Some(rd)) = (lk.col.as_str_slice(), rk.col.as_str_slice()) {
            let (lv, rv) = (lk.col.validity(), rk.col.validity());
            let mut table: HashMap<&str, Vec<u32>> = HashMap::new();
            for (j, &rid) in lk.ids.iter().enumerate() {
                if lv[rid as usize] {
                    table.entry(ld[rid as usize].as_str()).or_default().push(j as u32);
                }
            }
            metrics.hash_probes += rk.ids.len() as u64;
            let mut pairs = Vec::new();
            for (j, &rid) in rk.ids.iter().enumerate() {
                if rv[rid as usize] {
                    if let Some(ls) = table.get(rd[rid as usize].as_str()) {
                        for &lj in ls {
                            pairs.push((lj, j as u32));
                        }
                    }
                }
            }
            pairs.sort_unstable();
            return Ok(pairs);
        }
    }
    // Generic path: composite and/or mixed-type keys through the same
    // normalized `HashKey` the row path uses.
    let mut table: HashMap<Vec<HashKey>, Vec<u32>> = HashMap::new();
    for (j, k) in gather_hash_keys(&lsides, left.len())?.into_iter().enumerate() {
        if let Some(k) = k {
            table.entry(k).or_default().push(j as u32);
        }
    }
    metrics.hash_probes += right.len() as u64;
    let mut pairs = Vec::new();
    for (j, k) in gather_hash_keys(&rsides, right.len())?.into_iter().enumerate() {
        if let Some(k) = k {
            if let Some(ls) = table.get(&k) {
                for &lj in ls {
                    pairs.push((lj, j as u32));
                }
            }
        }
    }
    pairs.sort_unstable();
    Ok(pairs)
}

/// `i64` fast path: build a multiply-mix-hashed table, probe serially or in
/// morsels across scoped worker threads.
fn int_hash_join(
    build: &IntKeys<'_>,
    probe: &IntKeys<'_>,
    workers: usize,
    metrics: &mut ExecMetrics,
) -> Vec<(u32, u32)> {
    let mut table = IntMap::default();
    for (j, &rid) in build.ids.iter().enumerate() {
        if build.valid[rid as usize] {
            table.entry(build.data[rid as usize]).or_default().push(j as u32);
        }
    }
    metrics.hash_probes += probe.ids.len() as u64;
    let mut pairs = if workers > 1 && probe.ids.len() >= PARALLEL_MIN_ROWS {
        parallel_probe(&table, probe, workers, metrics)
    } else {
        probe_morsel(&table, probe, 0, probe.ids.len())
    };
    pairs.sort_unstable();
    pairs
}

/// Probe rows `lo..hi`, emitting `(build row, probe row)` logical pairs.
fn probe_morsel(table: &IntMap, probe: &IntKeys<'_>, lo: usize, hi: usize) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for (off, &rid) in probe.ids[lo..hi].iter().enumerate() {
        if probe.valid[rid as usize] {
            if let Some(ls) = table.get(&probe.data[rid as usize]) {
                for &lj in ls {
                    pairs.push((lj, (lo + off) as u32));
                }
            }
        }
    }
    pairs
}

/// Morsel-driven parallel probe: workers pull morsel indices from a shared
/// atomic counter and probe the shared read-only build table. Determinism:
/// results are merged in morsel order (and the caller sorts the pair list),
/// so worker count and scheduling are invisible in the output.
fn parallel_probe(
    table: &IntMap,
    probe: &IntKeys<'_>,
    workers: usize,
    metrics: &mut ExecMetrics,
) -> Vec<(u32, u32)> {
    let n_morsels = probe.ids.len().div_ceil(MORSEL_ROWS);
    let next = AtomicUsize::new(0);
    let mut parts: Vec<(usize, Vec<(u32, u32)>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(n_morsels))
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, Vec<(u32, u32)>)> = Vec::new();
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        if m >= n_morsels {
                            break;
                        }
                        let lo = m * MORSEL_ROWS;
                        let hi = (lo + MORSEL_ROWS).min(probe.ids.len());
                        out.push((m, probe_morsel(table, probe, lo, hi)));
                    }
                    out
                })
            })
            .collect();
        // els-lint: allow(panic-freedom, "re-raises a probe-worker panic on the coordinating thread; swallowing it would return truncated join results")
        handles.into_iter().flat_map(|h| h.join().expect("probe worker panicked")).collect()
    });
    parts.sort_unstable_by_key(|&(m, _)| m);
    metrics.morsels += n_morsels as u64;
    parts.into_iter().flat_map(|(_, p)| p).collect()
}

/// Vectorized sort-merge join on logical row ids; replicates the row
/// algorithm (stable key sorts, `n log n` sort charge, one comparison per
/// merge iteration, equal-run cross products) so counters and output order
/// match exactly.
fn vsort_merge(
    left: &VChunk,
    right: &VChunk,
    keys: &[(ColumnRef, ColumnRef)],
    metrics: &mut ExecMetrics,
) -> ExecResult<Vec<(u32, u32)>> {
    let lsides = side_keys(left, keys.iter().map(|&(l, _)| l))?;
    let rsides = side_keys(right, keys.iter().map(|&(_, r)| r))?;
    if let ([lk], [rk]) = (lsides.as_slice(), rsides.as_slice()) {
        if let (Some(ld), Some(rd)) = (lk.col.as_int_slice(), rk.col.as_int_slice()) {
            let l = IntKeys { data: ld, valid: lk.col.validity(), ids: lk.ids };
            let r = IntKeys { data: rd, valid: rk.col.validity(), ids: rk.ids };
            return Ok(int_sort_merge(&l, &r, metrics));
        }
    }
    let mut lrows = gather_sort_keys(&lsides, left.len())?;
    let mut rrows = gather_sort_keys(&rsides, right.len())?;
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_by(|a, b| cmp_key_slices(&a.0, &b.0));
    rrows.sort_by(|a, b| cmp_key_slices(&a.0, &b.0));
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() && j < rrows.len() {
        metrics.comparisons += 1;
        match cmp_key_slices(&lrows[i].0, &rrows[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut ie = i + 1;
                while ie < lrows.len() && cmp_key_slices(&lrows[ie].0, &lrows[i].0).is_eq() {
                    ie += 1;
                }
                let mut je = j + 1;
                while je < rrows.len() && cmp_key_slices(&rrows[je].0, &rrows[j].0).is_eq() {
                    je += 1;
                }
                for lrow in &lrows[i..ie] {
                    for rrow in &rrows[j..je] {
                        pairs.push((lrow.1, rrow.1));
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    Ok(pairs)
}

/// `i64` fast path of [`vsort_merge`]: sorts `(key, row)` pairs instead of
/// allocating `Vec<Value>` per row. `i64::cmp` orders identically to
/// `Value::total_cmp` on `Int`s, so the permutation (and every counter)
/// matches the generic algorithm.
fn int_sort_merge(l: &IntKeys<'_>, r: &IntKeys<'_>, metrics: &mut ExecMetrics) -> Vec<(u32, u32)> {
    let collect = |k: &IntKeys<'_>| -> Vec<(i64, u32)> {
        k.ids
            .iter()
            .enumerate()
            .filter(|&(_, &rid)| k.valid[rid as usize])
            .map(|(j, &rid)| (k.data[rid as usize], j as u32))
            .collect()
    };
    let mut lrows = collect(l);
    let mut rrows = collect(r);
    metrics.rows_sorted += (lrows.len() + rrows.len()) as u64;
    lrows.sort_by_key(|e| e.0);
    rrows.sort_by_key(|e| e.0);
    metrics.comparisons += sort_charge(lrows.len()) + sort_charge(rrows.len());
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() && j < rrows.len() {
        metrics.comparisons += 1;
        match lrows[i].0.cmp(&rrows[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let mut ie = i + 1;
                while ie < lrows.len() && lrows[ie].0 == lrows[i].0 {
                    ie += 1;
                }
                let mut je = j + 1;
                while je < rrows.len() && rrows[je].0 == rrows[j].0 {
                    je += 1;
                }
                for &(_, lj) in &lrows[i..ie] {
                    for &(_, rj) in &rrows[j..je] {
                        pairs.push((lj, rj));
                    }
                }
                i = ie;
                j = je;
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

    fn int_keys_table(name: &str, rows: usize, modulo: i64) -> Arc<Table> {
        let t = TableSpec::new(name, rows)
            .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi: modulo }))
            .generate(rows as u64);
        Arc::new(t)
    }

    #[test]
    fn parallel_probe_matches_serial_and_counts_morsels() {
        let build = int_keys_table("b", 500, 400);
        let probe = int_keys_table("p", 3 * PARALLEL_MIN_ROWS, 400);
        let bids: Vec<u32> = (0..build.num_rows() as u32).collect();
        let pids: Vec<u32> = (0..probe.num_rows() as u32).collect();
        let bcol = build.column(0).unwrap();
        let pcol = probe.column(0).unwrap();
        let bk = IntKeys { data: bcol.as_int_slice().unwrap(), valid: bcol.validity(), ids: &bids };
        let pk = IntKeys { data: pcol.as_int_slice().unwrap(), valid: pcol.validity(), ids: &pids };
        let mut serial_m = ExecMetrics::default();
        let serial = int_hash_join(&bk, &pk, 1, &mut serial_m);
        for workers in [2, 3, 8] {
            let mut par_m = ExecMetrics::default();
            let parallel = int_hash_join(&bk, &pk, workers, &mut par_m);
            assert_eq!(parallel, serial, "workers={workers}");
            assert_eq!(par_m.morsels, (pids.len().div_ceil(MORSEL_ROWS)) as u64);
            assert_eq!(par_m.hash_probes, serial_m.hash_probes);
        }
        assert_eq!(serial_m.morsels, 0, "serial probe dispatches no morsels");
    }

    #[test]
    fn int_hasher_spreads_sequential_keys() {
        let mut buckets = std::collections::HashSet::new();
        for k in 0..1000i64 {
            let mut h = IntHasher::default();
            h.write_i64(k);
            buckets.insert(h.finish() % 64);
        }
        assert_eq!(buckets.len(), 64, "sequential keys must not cluster");
    }
}
