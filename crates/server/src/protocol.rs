//! The wire protocol: a minimal line-based SQL exchange.
//!
//! Everything is UTF-8 lines terminated by `\n`. One connection:
//!
//! ```text
//! C: HELLO <tenant>
//! S: READY
//! C: <sql>                         (one query per line)
//! S: OK rows=<n> count=<c> cached=<0|1>
//! S: R <v1>\t<v2>\t...             (n of these, tab-separated, escaped)
//! S: .                             (end of result)
//! C: QUIT
//! S: BYE
//! ```
//!
//! Any failure is a single line `ERR <kind> <escaped message>`; the kind
//! vocabulary is [`crate::ServerError::wire_kind`]. A query-level `ERR`
//! (bad SQL, shed) leaves the connection open; handshake and admission
//! `ERR`s are followed by a close.
//!
//! Values and error messages are escaped with a fixed backslash scheme
//! (`\\`, `\t`, `\n`, `\r`) so embedded tabs/newlines can never corrupt
//! framing. This module is pure string work — no sockets — so every
//! framing rule is unit-testable.

use els_storage::Value;

use crate::error::{ServerError, ServerResult};

/// Hard cap on one protocol line. A line longer than this is a protocol
/// error, not a buffer: it bounds per-connection memory against hostile
/// or broken clients.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Escape a field for the wire: backslash, tab, newline, carriage return.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_field`]. A dangling or unknown escape is a protocol
/// error — silently guessing would mask framing corruption.
pub fn unescape_field(s: &str) -> ServerResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                return Err(ServerError::Protocol(format!("unknown escape `\\{other}`")))
            }
            None => return Err(ServerError::Protocol("dangling backslash".to_string())),
        }
    }
    Ok(out)
}

/// Render one cell for the wire (unescaped; callers escape the joined
/// field). `NULL` spells SQL null; strings travel raw, without the SQL
/// quotes `Value`'s `Display` adds.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => s.clone(),
    }
}

/// The `HELLO <tenant>` opener; `None` when the line is not a handshake.
pub fn parse_hello(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("HELLO ")?;
    let tenant = rest.trim();
    (!tenant.is_empty()).then_some(tenant)
}

/// The success header for one query result.
pub fn ok_header(rows: u64, count: u64, cached: bool) -> String {
    format!("OK rows={rows} count={count} cached={}", u8::from(cached))
}

/// One result row: `R` plus tab-separated escaped cells.
pub fn row_line(values: &[Value]) -> String {
    let mut out = String::from("R");
    for v in values {
        out.push('\t');
        out.push_str(&escape_field(&render_value(v)));
    }
    out
}

/// The one-line rendering of an error.
pub fn err_line(e: &ServerError) -> String {
    format!("ERR {} {}", e.wire_kind(), escape_field(&e.to_string()))
}

/// Parse a server response line the client received: `Ok` for `OK ...`
/// headers, `Err` for `ERR ...` lines, `Protocol` otherwise.
pub fn parse_header(line: &str) -> ServerResult<(u64, u64, bool)> {
    if let Some(rest) = line.strip_prefix("ERR ") {
        let (kind, msg) = rest.split_once(' ').unwrap_or((rest, ""));
        let msg = unescape_field(msg)?;
        return Err(ServerError::from_wire(kind, &msg));
    }
    let rest = line
        .strip_prefix("OK ")
        .ok_or_else(|| ServerError::Protocol(format!("expected OK/ERR, got `{line}`")))?;
    let mut rows = None;
    let mut count = None;
    let mut cached = None;
    for field in rest.split(' ') {
        match field.split_once('=') {
            Some(("rows", v)) => rows = v.parse::<u64>().ok(),
            Some(("count", v)) => count = v.parse::<u64>().ok(),
            Some(("cached", v)) => cached = v.parse::<u8>().ok().map(|b| b != 0),
            _ => {}
        }
    }
    match (rows, count, cached) {
        (Some(r), Some(c), Some(h)) => Ok((r, c, h)),
        _ => Err(ServerError::Protocol(format!("malformed OK header `{line}`"))),
    }
}

/// Parse one `R ...` row line into unescaped cells.
pub fn parse_row(line: &str) -> ServerResult<Vec<String>> {
    let rest = line
        .strip_prefix('R')
        .ok_or_else(|| ServerError::Protocol(format!("expected row line, got `{line}`")))?;
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    let rest = rest
        .strip_prefix('\t')
        .ok_or_else(|| ServerError::Protocol("row line missing tab after R".to_string()))?;
    rest.split('\t').map(unescape_field).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_hostile_fields() {
        for s in ["plain", "tab\tnewline\nreturn\rback\\slash", "", "\\t is not a tab"] {
            let escaped = escape_field(s);
            assert!(!escaped.contains('\n') && !escaped.contains('\t'), "{escaped}");
            assert_eq!(unescape_field(&escaped).as_deref(), Ok(s), "{s:?}");
        }
        assert!(unescape_field("dangling\\").is_err());
        assert!(unescape_field("bad\\q").is_err());
    }

    #[test]
    fn hello_parses_and_rejects() {
        assert_eq!(parse_hello("HELLO acme"), Some("acme"));
        assert_eq!(parse_hello("HELLO  spaced "), Some("spaced"));
        assert_eq!(parse_hello("HELLO "), None);
        assert_eq!(parse_hello("SELECT 1"), None);
    }

    #[test]
    fn headers_round_trip() {
        assert_eq!(parse_header(&ok_header(3, 3, true)), Ok((3, 3, true)));
        assert_eq!(parse_header(&ok_header(0, 42, false)), Ok((0, 42, false)));
        assert!(matches!(
            parse_header(&err_line(&ServerError::Overloaded)),
            Err(ServerError::Overloaded)
        ));
        assert!(matches!(parse_header("GARBAGE"), Err(ServerError::Protocol(_))));
    }

    #[test]
    fn rows_round_trip_including_tabs_in_values() {
        let vals =
            vec![Value::Int(7), Value::Null, Value::Str("a\tb\nc".into()), Value::Float(1.5)];
        let line = row_line(&vals);
        assert_eq!(line.matches('\t').count(), 4, "field tabs only: {line:?}");
        let cells = parse_row(&line).expect("row parses");
        assert_eq!(cells, vec!["7", "NULL", "a\tb\nc", "1.5"]);
        assert_eq!(parse_row("R").expect("empty row"), Vec::<String>::new());
    }
}
