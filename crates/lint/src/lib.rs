//! `els-lint` — in-workspace static analysis for the ELS engine.
//!
//! Two layers of passes enforce invariants the test suite cannot see (see
//! `DESIGN.md` §4f and §4k). The per-file token passes — panic-freedom,
//! determinism, metrics-only I/O, atomics discipline, numeric-cast
//! discipline, and crate layering — read one file at a time. On top of
//! them a workspace layer builds a symbol table and a best-effort call
//! graph (`symbols`, `callgraph`) and runs two inter-procedural passes:
//! panic-reachability (which panic sites can a public entry point reach,
//! with shortest witness paths) and lock-order (every lock acquisition
//! held across another must run forward in `els_core::sync::LOCK_ORDER`;
//! a cycle is a hard error no baseline can absorb).
//!
//! Pre-existing violations are grandfathered in `lint-baseline.json`, a
//! ratchet: per-file-per-lint counts may only decrease, new violations
//! fail, and suppressions require a written justification that is
//! reviewed like code.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod lock_order;
pub mod numeric;
pub mod panic_reach;
pub mod passes;
pub mod report;
pub mod source;
pub mod symbols;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use callgraph::CallGraph;
use lock_order::LockEdge;
use panic_reach::PanicPath;
use passes::{Lint, Violation};
use source::SourceFile;
use symbols::{ParsedFile, SymbolTable};

/// The library targets the passes cover: the six engine crates, the
/// umbrella facade, and the server front door. Tooling (els-bench,
/// els-lint) and the vendored shims are exempt by construction — printing
/// and clock reads are their job.
pub const LIBRARY_SRC_ROOTS: &[(&str, &str)] = &[
    ("els-storage", "crates/storage/src"),
    ("els-core", "crates/core/src"),
    ("els-catalog", "crates/catalog/src"),
    ("els-sql", "crates/sql/src"),
    ("els-exec", "crates/exec/src"),
    ("els-optimizer", "crates/optimizer/src"),
    ("els", "src"),
    ("els-server", "crates/server/src"),
];

/// Manifests the layering pass reads, alongside their crate names.
pub const LIBRARY_MANIFESTS: &[(&str, &str)] = &[
    ("els-storage", "crates/storage/Cargo.toml"),
    ("els-core", "crates/core/Cargo.toml"),
    ("els-catalog", "crates/catalog/Cargo.toml"),
    ("els-sql", "crates/sql/Cargo.toml"),
    ("els-exec", "crates/exec/Cargo.toml"),
    ("els-optimizer", "crates/optimizer/Cargo.toml"),
    ("els", "Cargo.toml"),
    ("els-server", "crates/server/Cargo.toml"),
];

/// Name of the committed ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Hard errors that fail the run regardless of the baseline: malformed or
/// unused suppressions, unreadable files.
#[derive(Debug, Clone, PartialEq)]
pub struct HardError {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 when the error is about the whole file).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

/// Everything one run produced, ready for reporting.
#[derive(Debug)]
pub struct Outcome {
    /// Number of library source files scanned.
    pub files_scanned: usize,
    /// All violations, suppressed ones included (marked).
    pub violations: Vec<Violation>,
    /// Unsuppressed counts per (lint, file).
    pub counts: Baseline,
    /// The committed baseline the counts were compared against.
    pub baseline: Baseline,
    /// Raw text of the baseline file as loaded (None when absent) — lets
    /// `--baseline-update` detect a file that changed under the run.
    pub baseline_raw: Option<String>,
    /// Violations not covered by the baseline — these fail the run.
    pub new_violations: Vec<Violation>,
    /// Malformed/unused suppressions and I/O problems — always fail.
    pub hard_errors: Vec<HardError>,
    /// The lock order parsed from `els_core::sync`, for the JSON report.
    pub lock_order: Vec<String>,
    /// Every held-while-acquiring edge the lock-order pass derived.
    pub lock_edges: Vec<LockEdge>,
    /// Shortest entry-to-panic witness paths from panic-reachability.
    pub panic_paths: Vec<PanicPath>,
}

impl Outcome {
    /// True when the tree is clean under the ratchet.
    pub fn is_ok(&self) -> bool {
        self.new_violations.is_empty() && self.hard_errors.is_empty()
    }
}

/// Run every pass over the workspace at `root`.
///
/// Order matters: all files are parsed up front so the workspace passes
/// see the whole call graph; suppressions are applied *last*, after every
/// pass (per-file and inter-procedural) has produced its violations, so a
/// suppression can discharge a panic-reachability or lock-order finding
/// the same way it discharges a token-pass one.
pub fn run(root: &Path) -> Result<Outcome, String> {
    let mut violations = Vec::new();
    let mut hard_errors = Vec::new();

    let mut parsed: Vec<ParsedFile> = Vec::new();
    for (crate_name, src_root) in LIBRARY_SRC_ROOTS {
        let dir = root.join(src_root);
        if !dir.is_dir() {
            return Err(format!("library source root `{src_root}` not found under {root:?}"));
        }
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = rel_path(root, &path);
            let text =
                fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", rel))?;
            parsed.push(ParsedFile::new(crate_name, SourceFile::parse(&rel, &text)));
        }
    }
    let files_scanned = parsed.len();

    // Per-file passes.
    for pf in &parsed {
        for e in &pf.source.errors {
            hard_errors.push(HardError {
                file: pf.source.rel_path.clone(),
                line: e.line,
                message: e.message.clone(),
            });
        }
        passes::run_token_passes(&pf.source, &mut violations);
        violations.append(&mut numeric::check_file(pf));
    }

    // Workspace passes over the symbol table and call graph.
    let table = SymbolTable::build(&parsed);
    let graph = CallGraph::build(&parsed, &table);
    let panic_paths = panic_reach::run(&parsed, &table, &graph, &mut violations, &mut hard_errors);
    let (lock_order, lock_edges) =
        lock_order::run(&parsed, &table, &graph, &mut violations, &mut hard_errors);

    for (crate_name, manifest_rel) in LIBRARY_MANIFESTS {
        let text = fs::read_to_string(root.join(manifest_rel))
            .map_err(|e| format!("cannot read {manifest_rel}: {e}"))?;
        passes::run_layering_pass(crate_name, manifest_rel, &text, &mut violations);
    }

    for pf in &parsed {
        apply_suppressions(&pf.source, &mut violations, &mut hard_errors);
    }

    let counts = count_unsuppressed(&violations);
    let baseline_raw = read_baseline_raw(root)?;
    let baseline = match &baseline_raw {
        Some(text) => baseline::from_json(text).map_err(|e| format!("{BASELINE_FILE}: {e}"))?,
        None => Baseline::new(),
    };
    let new_violations = find_new(&violations, &counts, &baseline);

    Ok(Outcome {
        files_scanned,
        violations,
        counts,
        baseline,
        baseline_raw,
        new_violations,
        hard_errors,
        lock_order,
        lock_edges,
        panic_paths,
    })
}

/// Apply one file's suppressions to the full violation set.
/// Suppression rules: the lint name must exist, the justification is
/// mandatory (enforced at parse), and a suppression that matches no
/// violation is itself an error — stale allows rot into lies.
fn apply_suppressions(
    file: &SourceFile,
    violations: &mut Vec<Violation>,
    hard_errors: &mut Vec<HardError>,
) {
    for sup in &file.suppressions {
        let Some(lint) = Lint::from_name(&sup.lint) else {
            hard_errors.push(HardError {
                file: file.rel_path.clone(),
                line: sup.line,
                message: format!(
                    "suppression names unknown lint `{}` (known: {})",
                    sup.lint,
                    Lint::all().map(Lint::name).join(", ")
                ),
            });
            continue;
        };
        let mut used = false;
        for v in violations
            .iter_mut()
            .filter(|v| v.file == file.rel_path && v.lint == lint && v.line == sup.applies_to)
        {
            v.suppressed = true;
            used = true;
        }
        if !used {
            hard_errors.push(HardError {
                file: file.rel_path.clone(),
                line: sup.line,
                message: format!(
                    "unused suppression: no `{}` violation on line {}",
                    sup.lint, sup.applies_to
                ),
            });
        }
    }
}

/// Unsuppressed violation counts per (lint, file).
pub fn count_unsuppressed(violations: &[Violation]) -> Baseline {
    let mut counts = Baseline::new();
    for v in violations.iter().filter(|v| !v.suppressed) {
        *counts.entry(v.lint.name().to_string()).or_default().entry(v.file.clone()).or_insert(0) +=
            1;
    }
    counts
}

/// The violations exceeding the baseline: for each (lint, file) whose
/// count is above its grandfathered allowance, the trailing `count -
/// allowed` violations (by source order) are reported as new.
fn find_new(violations: &[Violation], counts: &Baseline, baseline: &Baseline) -> Vec<Violation> {
    let mut out = Vec::new();
    for (lint, files) in counts {
        for (file, &count) in files {
            let allowed = baseline.get(lint).and_then(|f| f.get(file)).copied().unwrap_or(0);
            if count <= allowed {
                continue;
            }
            let over = (count - allowed) as usize;
            let mut matching: Vec<&Violation> = violations
                .iter()
                .filter(|v| !v.suppressed && v.lint.name() == lint && v.file == *file)
                .collect();
            matching.sort_by_key(|v| (v.line, v.col));
            out.extend(matching.into_iter().rev().take(over).rev().cloned());
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out
}

/// Raw baseline text; `None` when the file is absent (the bootstrap
/// case).
pub fn read_baseline_raw(root: &Path) -> Result<Option<String>, String> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(None);
    }
    fs::read_to_string(&path).map(Some).map_err(|e| format!("cannot read {BASELINE_FILE}: {e}"))
}

/// Load `lint-baseline.json`; a missing file is an empty baseline.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    match read_baseline_raw(root)? {
        Some(text) => baseline::from_json(&text).map_err(|e| format!("{BASELINE_FILE}: {e}")),
        None => Ok(Baseline::new()),
    }
}

/// True when the baseline file on disk no longer matches what this run
/// loaded — e.g. edited by hand or by a concurrent run. `--baseline-update`
/// refuses to write over such a file: an update must start from the state
/// it was ratcheted against.
pub fn baseline_dirty(root: &Path, outcome: &Outcome) -> bool {
    fs::read_to_string(root.join(BASELINE_FILE)).ok() != outcome.baseline_raw
}

/// Write the current counts as the new baseline. The caller has already
/// checked the `ELS_LINT_BASELINE_UPDATE` gate.
pub fn write_baseline(root: &Path, counts: &Baseline) -> Result<(), String> {
    fs::write(root.join(BASELINE_FILE), baseline::to_json(counts))
        .map_err(|e| format!("cannot write {BASELINE_FILE}: {e}"))
}

/// Per-lint rollup used by the delta report: (current, baselined,
/// suppressed) for each lint name.
pub fn per_lint_summary(outcome: &Outcome) -> BTreeMap<String, (u64, u64, u64)> {
    let mut out: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for lint in Lint::all() {
        out.insert(lint.name().to_string(), (0, 0, 0));
    }
    for (lint, files) in &outcome.counts {
        out.entry(lint.clone()).or_default().0 += files.values().sum::<u64>();
    }
    for (lint, files) in &outcome.baseline {
        out.entry(lint.clone()).or_default().1 += files.values().sum::<u64>();
    }
    for v in outcome.violations.iter().filter(|v| v.suppressed) {
        out.entry(v.lint.name().to_string()).or_default().2 += 1;
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {dir:?}: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
