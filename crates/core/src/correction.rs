//! Feedback-correction hook (runtime extension; not part of the paper).
//!
//! The paper's estimator is purely static: Steps 3–5 read catalog
//! statistics and never learn from execution. This module is the seam a
//! feedback loop plugs into — a [`CorrectionSource`] supplies
//! multiplicative correction factors learned from executed queries, and
//! the corrected variants in [`crate::local_effects`] and
//! [`crate::join_sel`] multiply them into the Step 3/Step 5 selectivities
//! *before* clamping. The Section 4 incremental machinery (Step 6, rule
//! LS) is untouched: within a class every implied predicate receives the
//! same factor, so the LS max-selection ordering is preserved.
//!
//! Corrections are keyed structurally, not positionally:
//!
//! * scans by the [`scan_fingerprint`] of the table's local predicates
//!   (within-table column indices, sorted rendering — independent of the
//!   table's `FROM` position);
//! * joins by the full member set of the predicate's equivalence class
//!   (the source canonicalizes the members however it likes; `els-core`
//!   passes all of them so the key cannot depend on `FROM` order).

use crate::ids::ColumnRef;
use crate::predicate::{CmpOp, Predicate};

/// Supplier of learned correction factors. A `None` answer means "no
/// published correction" and leaves the estimate untouched, so a source
/// with nothing learned is bit-identical to [`NoCorrections`].
pub trait CorrectionSource {
    /// Correction factor for the scan of `table` (a `FROM`-list position)
    /// under the given [`scan_fingerprint`]; never called with an empty
    /// fingerprint (an unfiltered scan's estimate is exact).
    fn scan_correction(&self, table: usize, fingerprint: &str) -> Option<f64>;

    /// Correction factor for a join whose equivalence class has exactly
    /// `members` (sorted, at least two entries).
    fn join_correction(&self, members: &[ColumnRef]) -> Option<f64>;

    /// Correction factor for the inequality join predicate `left op right`
    /// (already canonicalized: `left.table < right.table`). Inequality
    /// predicates have no equivalence class, so they are keyed separately
    /// from [`CorrectionSource::join_correction`]. Default: none.
    fn range_correction(&self, left: ColumnRef, op: CmpOp, right: ColumnRef) -> Option<f64> {
        let _ = (left, op, right);
        None
    }
}

/// A source that has learned nothing; estimation is exactly the paper's.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCorrections;

impl CorrectionSource for NoCorrections {
    fn scan_correction(&self, _: usize, _: &str) -> Option<f64> {
        None
    }

    fn join_correction(&self, _: &[ColumnRef]) -> Option<f64> {
        None
    }
}

/// Canonical fingerprint of the local predicates restricting `table`:
/// each conjunct rendered with its *within-table* column index (`c0<100`,
/// `c2 IS NULL`), sorted, joined with `&`. Identical predicate sets yield
/// identical fingerprints regardless of conjunct order or of where the
/// table sits in the `FROM` list. Empty when the table has no local
/// constant/null predicate (local column equalities are Section 6
/// business and join predicates are keyed separately).
pub fn scan_fingerprint(predicates: &[Predicate], table: usize) -> String {
    let mut parts: Vec<String> = predicates
        .iter()
        .filter_map(|p| match p {
            Predicate::LocalCmp { column, op, value } if column.table == table => {
                Some(format!("c{}{}{}", column.column, op, value))
            }
            Predicate::IsNull { column, negated } if column.table == table => {
                Some(format!("c{} IS {}NULL", column.column, if *negated { "NOT " } else { "" }))
            }
            _ => None,
        })
        .collect();
    parts.sort();
    parts.join("&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    #[test]
    fn fingerprint_is_order_independent_and_table_scoped() {
        let a = vec![
            Predicate::local_cmp(c(1, 0), CmpOp::Lt, 100i64),
            Predicate::local_cmp(c(1, 2), CmpOp::Eq, 7i64),
            Predicate::local_cmp(c(0, 0), CmpOp::Gt, 5i64),
        ];
        let b = vec![
            Predicate::local_cmp(c(1, 2), CmpOp::Eq, 7i64),
            Predicate::local_cmp(c(1, 0), CmpOp::Lt, 100i64),
        ];
        assert_eq!(scan_fingerprint(&a, 1), scan_fingerprint(&b, 1));
        assert_eq!(scan_fingerprint(&a, 1), "c0<100&c2=7");
        assert_eq!(scan_fingerprint(&a, 0), "c0>5");
        assert_eq!(scan_fingerprint(&a, 2), "");
    }

    #[test]
    fn fingerprint_uses_within_table_indices_not_from_position() {
        // The same filter on "the first column of some table" fingerprints
        // identically whether that table is FROM position 0 or 3.
        let at0 = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64)];
        let at3 = vec![Predicate::local_cmp(c(3, 0), CmpOp::Lt, 100i64)];
        assert_eq!(scan_fingerprint(&at0, 0), scan_fingerprint(&at3, 3));
    }

    #[test]
    fn fingerprint_covers_null_tests_and_ignores_join_predicates() {
        let preds = vec![
            Predicate::is_null(c(0, 1)),
            Predicate::is_not_null(c(0, 2)),
            Predicate::col_eq(c(0, 0), c(1, 0)),
        ];
        assert_eq!(scan_fingerprint(&preds, 0), "c1 IS NULL&c2 IS NOT NULL");
        assert_eq!(scan_fingerprint(&preds, 1), "");
    }

    #[test]
    fn no_corrections_answers_nothing() {
        assert_eq!(NoCorrections.scan_correction(0, "c0<1"), None);
        assert_eq!(NoCorrections.join_correction(&[c(0, 0), c(1, 0)]), None);
    }
}
