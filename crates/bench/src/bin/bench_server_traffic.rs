//! TCP front-door traffic bench: sustained closed-loop throughput plus an
//! overload storm, over real loopback sockets.
//!
//! Two measured phases against one two-tenant server:
//!
//! 1. **sustained** — closed-loop clients (one query in flight each)
//!    replaying a mixed cached/uncached `COUNT(*)` workload through the
//!    line protocol. Reports qps and p50/p95/p99 round-trip latency;
//!    every reply is count-verified, so tenant bleed-through under
//!    concurrency fails the bench rather than inflating throughput.
//! 2. **overload** — C ≫ workers + queue one-shot clients at once. The
//!    regression gate is behavioral, not a throughput threshold: zero
//!    hangs (no client reaches its read timeout), every attempt accounted
//!    as served/rejected (no untyped failures), and at least one typed
//!    `ERR overloaded` rejection — proof backpressure engaged instead of
//!    buffering without bound.
//!
//! Writes `BENCH_server_traffic.json` and prints a summary. Run with
//! `cargo run --release -p els-bench --bin bench_server_traffic`
//! (`--smoke` for the fast CI shape). Exits non-zero and prints
//! `REGRESSION` lines on any gate failure.

// Tooling/timing layer: measuring wall clocks (and exiting non-zero) is
// this crate's job, so the workspace-wide `disallowed-methods` bans from
// clippy.toml do not apply here.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::Duration;

use els_bench::server_load::{closed_loop, overload_storm, shed_probe, traffic_server, workload};
use els_server::ServerConfig;

/// Read-timeout budget: a storm client still waiting after this long is a
/// hang, the protocol's one unacceptable outcome.
const TIMEOUT: Duration = Duration::from_secs(20);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Sustained phase sizing: never oversubscribe (clients <= workers), so
    // the phase measures service latency, not queue wait.
    let (clients, rounds) = if smoke { (2, 5) } else { (4, 40) };
    // Overload sizing: attempts >> workers + queue_depth forces rejections.
    let (workers, queue_depth, watermark, attempts) =
        if smoke { (2, 2, 1, 12) } else { (4, 4, 2, 32) };
    let config = ServerConfig {
        workers: workers.max(clients),
        queue_depth,
        shed_watermark: watermark,
        ..ServerConfig::default()
    };
    println!(
        "server traffic: {clients} closed-loop clients x {rounds} rounds of {} queries, \
         then {attempts}-client storm vs {workers} workers + {queue_depth} queue, {cpus} cpu(s)",
        workload().len()
    );

    let handle = traffic_server(config.clone());
    let addr = handle.addr();

    // Phase 1: sustained closed-loop traffic (also warms both cache lanes).
    let sustained = closed_loop(addr, clients, rounds, TIMEOUT);
    let p50 = sustained.percentile(50.0);
    let p95 = sustained.percentile(95.0);
    let p99 = sustained.percentile(99.0);
    println!(
        "  sustained: {} ok ({} cached, {} errors) in {:.3}s -> {:.1} qps, \
         p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms",
        sustained.ok,
        sustained.cached,
        sustained.errors,
        sustained.elapsed.as_secs_f64(),
        sustained.qps(),
        p50.as_secs_f64() * 1e3,
        p95.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );

    // Phase 2: the storm. The warm probe is a workload query every client
    // just cached in alpha's lane.
    let (warm_sql, warm_expected) = workload().remove(0);
    let storm = overload_storm(addr, attempts, &warm_sql, warm_expected, TIMEOUT);
    let shed_rate = storm.degraded as f64 / storm.attempted.max(1) as f64;
    println!(
        "  overload: {} attempted -> {} served ({} degraded/shed), {} rejected, \
         {} failed, {} hung (shed rate {:.2})",
        storm.attempted,
        storm.served,
        storm.degraded,
        storm.rejected,
        storm.failed,
        storm.hung,
        shed_rate,
    );

    // Phase 3: pin the queue at the shed watermark and measure degraded
    // (cached-plan-only) service directly — the storm can drain too fast
    // on a small box to catch shed mode in the act.
    let probes = if smoke { 3 } else { 10 };
    let shed = shed_probe(&handle, &config, &warm_sql, warm_expected, probes, TIMEOUT);
    println!(
        "  shed probe: {} cached served, {} uncached refused typed, {} failed \
         (queue held at watermark {})",
        shed.cached_served, shed.shed_refusals, shed.failed, config.shed_watermark
    );

    let counters = handle.counters();
    handle.shutdown();
    println!(
        "  server counters: {} connections, {} ok, {} err, {} rejected, {} shed",
        counters.connections,
        counters.queries_ok,
        counters.queries_err,
        counters.rejected,
        counters.shed,
    );

    // ---- JSON report -------------------------------------------------
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"bench\": \"server_traffic\",\n  \"smoke\": {smoke},\n  \"cpus\": {cpus},\n"
    );
    let _ = write!(
        out,
        "  \"config\": {{ \"workers\": {}, \"queue_depth\": {}, \"shed_watermark\": {} }},\n",
        config.workers, config.queue_depth, config.shed_watermark
    );
    let _ = write!(
        out,
        "  \"sustained\": {{ \"clients\": {}, \"queries_ok\": {}, \"errors\": {}, \
         \"cached\": {}, \"seconds\": {:.4}, \"qps\": {:.2}, \"latency_p50_ms\": {:.3}, \
         \"latency_p95_ms\": {:.3}, \"latency_p99_ms\": {:.3} }},\n",
        sustained.clients,
        sustained.ok,
        sustained.errors,
        sustained.cached,
        sustained.elapsed.as_secs_f64(),
        sustained.qps(),
        p50.as_secs_f64() * 1e3,
        p95.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );
    let _ = write!(
        out,
        "  \"overload\": {{ \"attempted\": {}, \"served\": {}, \"degraded\": {}, \
         \"rejected\": {}, \"failed\": {}, \"hung\": {}, \"shed_rate\": {:.4} }},\n",
        storm.attempted,
        storm.served,
        storm.degraded,
        storm.rejected,
        storm.failed,
        storm.hung,
        shed_rate,
    );
    let _ = write!(
        out,
        "  \"shed_probe\": {{ \"cached_served\": {}, \"shed_refusals\": {}, \"failed\": {} }},\n",
        shed.cached_served, shed.shed_refusals, shed.failed,
    );
    let _ = write!(
        out,
        "  \"server_counters\": {{ \"connections\": {}, \"queries_ok\": {}, \
         \"queries_err\": {}, \"rejected\": {}, \"shed\": {} }}\n}}\n",
        counters.connections,
        counters.queries_ok,
        counters.queries_err,
        counters.rejected,
        counters.shed,
    );
    if let Err(e) = std::fs::write("BENCH_server_traffic.json", &out) {
        eprintln!("warning: could not write BENCH_server_traffic.json: {e}");
    } else {
        println!("  wrote BENCH_server_traffic.json");
    }

    // ---- Regression gates --------------------------------------------
    let mut failures = Vec::new();
    if sustained.errors > 0 {
        failures.push(format!("{} sustained-phase queries errored", sustained.errors));
    }
    for w in &sustained.wrong {
        failures.push(format!("wrong answer under load: {w}"));
    }
    if storm.hung > 0 {
        failures.push(format!("{} storm clients hung past the {TIMEOUT:?} budget", storm.hung));
    }
    if !storm.accounted() {
        failures.push(format!(
            "storm accounting leak: {} served + {} rejected + {} failed != {} attempted",
            storm.served, storm.rejected, storm.failed, storm.attempted
        ));
    }
    if storm.failed > 0 {
        failures.push(format!("{} storm clients saw untyped failures", storm.failed));
    }
    if storm.rejected == 0 {
        failures.push(
            "saturation produced zero typed Overloaded rejections (backpressure never engaged)"
                .to_string(),
        );
    }
    if shed.failed > 0 || shed.shed_refusals != probes || shed.cached_served != probes {
        failures.push(format!(
            "shed probe broke degraded-service contract: {} cached served, {} shed, {} failed \
             (want {probes}/{probes}/0)",
            shed.cached_served, shed.shed_refusals, shed.failed
        ));
    }
    if failures.is_empty() {
        println!("PASS: sustained traffic verified, overload fully typed, zero hangs");
    } else {
        for f in &failures {
            println!("OVERLOAD REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
