//! A batteries-included facade: register tables, run SQL, inspect plans.
//!
//! [`Database`] wires the whole pipeline (catalog → parser → binder →
//! optimizer → executor) behind three calls:
//!
//! ```
//! use els::engine::Database;
//! use els::storage::datagen::{TableSpec, ColumnSpec, Distribution};
//!
//! let mut db = Database::new();
//! db.generate(
//!     TableSpec::new("t", 1000)
//!         .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
//!     42,
//! ).unwrap();
//! let result = db.execute("SELECT COUNT(*) FROM t WHERE k < 100").unwrap();
//! assert_eq!(result.count, 100);
//! ```
//!
//! The estimation algorithm is configurable per database (default: the
//! paper's Algorithm ELS) so the same workload can be replayed under the
//! baselines:
//!
//! ```
//! # use els::engine::Database;
//! use els::optimizer::EstimatorPreset;
//! let mut db = Database::new();
//! db.set_estimator(EstimatorPreset::Sss);
//! ```

use std::fmt;

use els_catalog::collect::CollectOptions;
use els_catalog::Catalog;
use els_exec::{execute_plan, execute_plan_observed, ExecMetrics};
use els_optimizer::{
    bound_query_tables, optimize_bound, EstimatorPreset, OptimizedQuery, OptimizerOptions,
};
use els_sql::{bind, parse};
use els_storage::datagen::TableSpec;
use els_storage::Table;

/// Unified error for the engine facade.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexing/parsing/binding failure.
    Sql(String),
    /// Catalog registration/lookup failure.
    Catalog(String),
    /// Optimization failure.
    Optimizer(String),
    /// Execution failure.
    Exec(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(m) => write!(f, "SQL error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
            EngineError::Optimizer(m) => write!(f, "optimizer error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<els_sql::SqlError> for EngineError {
    fn from(e: els_sql::SqlError) -> Self {
        EngineError::Sql(e.to_string())
    }
}

impl From<els_catalog::CatalogError> for EngineError {
    fn from(e: els_catalog::CatalogError) -> Self {
        EngineError::Catalog(e.to_string())
    }
}

impl From<els_optimizer::OptimizerError> for EngineError {
    fn from(e: els_optimizer::OptimizerError) -> Self {
        EngineError::Optimizer(e.to_string())
    }
}

impl From<els_exec::ExecError> for EngineError {
    fn from(e: els_exec::ExecError) -> Self {
        EngineError::Exec(e.to_string())
    }
}

/// Result alias for the engine.
pub type EngineResult<T> = Result<T, EngineError>;

/// The outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result rows (a one-cell table for `COUNT(*)`).
    pub rows: Table,
    /// Result row count (the count itself for `COUNT(*)`).
    pub count: u64,
    /// Execution metrics.
    pub metrics: ExecMetrics,
    /// The join order the optimizer chose.
    pub join_order: Vec<String>,
    /// The intermediate sizes the optimizer believed in.
    pub estimated_sizes: Vec<f64>,
}

/// An embedded single-user database over in-memory tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    optimizer_options: OptimizerOptions,
    collect_options: CollectOptions,
    buffer_pages: Option<usize>,
}

impl Database {
    /// An empty database using Algorithm ELS and exact statistics without
    /// histograms.
    pub fn new() -> Database {
        Database::default()
    }

    /// Switch the estimation algorithm (SM / SSS / ELS, per the paper's
    /// experiment presets).
    pub fn set_estimator(&mut self, preset: EstimatorPreset) {
        self.optimizer_options = OptimizerOptions::preset(preset);
    }

    /// Replace the full optimizer configuration.
    pub fn set_optimizer_options(&mut self, options: OptimizerOptions) {
        self.optimizer_options = options;
    }

    /// Configure how statistics are collected for *subsequently* registered
    /// tables (e.g. [`CollectOptions::full`] for histograms + MCVs).
    pub fn set_collect_options(&mut self, options: CollectOptions) {
        self.collect_options = options;
    }

    /// Execute queries through an LRU buffer pool of `pages` pages (`None`
    /// = unbuffered; every logical base-table page read is physical).
    pub fn set_buffer_pages(&mut self, pages: Option<usize>) {
        self.buffer_pages = pages;
    }

    /// Register an existing table.
    pub fn register(&mut self, table: Table) -> EngineResult<()> {
        self.catalog.register(table, &self.collect_options)?;
        Ok(())
    }

    /// Generate and register a table from a spec with a seed.
    pub fn generate(&mut self, spec: TableSpec, seed: u64) -> EngineResult<()> {
        self.register(spec.generate(seed))
    }

    /// The underlying catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parse, bind, and optimize without executing.
    pub fn prepare(&self, sql: &str) -> EngineResult<OptimizedQuery> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        Ok(optimize_bound(&bound, &self.catalog, &self.optimizer_options)?)
    }

    /// Run a query end to end.
    pub fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        let optimized = optimize_bound(&bound, &self.catalog, &self.optimizer_options)?;
        let tables = bound_query_tables(&bound, &self.catalog)?;
        let out = match self.buffer_pages {
            None => execute_plan(&optimized.plan, &tables)?,
            Some(pages) => {
                els_exec::executor::execute_plan_buffered(&optimized.plan, &tables, pages)?
            }
        };
        let join_order = optimized
            .join_order
            .iter()
            .map(|&t| bound.binding_names[t].clone())
            .collect();
        Ok(QueryResult {
            rows: out.rows,
            count: out.count,
            metrics: out.metrics,
            join_order,
            estimated_sizes: optimized.estimated_sizes,
        })
    }

    /// EXPLAIN ANALYZE: run the query and report, per join, the
    /// optimizer's estimated cardinality next to the measured one — the
    /// estimation-quality view the paper's experiment table is built from.
    pub fn explain_analyze(&self, sql: &str) -> EngineResult<String> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        let optimized = optimize_bound(&bound, &self.catalog, &self.optimizer_options)?;
        let tables = bound_query_tables(&bound, &self.catalog)?;
        let (out, obs) = execute_plan_observed(&optimized.plan, &tables)?;
        let mut text = String::new();
        text.push_str(&format!("query: {sql}
"));
        text.push_str(&format!("result rows: {}
", out.count));
        text.push_str("scans (actual rows out):
");
        for (t, rows) in &obs.scan_outputs {
            text.push_str(&format!("  {}: {rows}
", bound.binding_names[*t]));
        }
        text.push_str("joins (estimated vs actual):
");
        for ((covered, actual), estimate) in
            obs.join_outputs.iter().zip(&optimized.estimated_sizes)
        {
            let names: Vec<&str> =
                covered.iter().map(|&t| bound.binding_names[t].as_str()).collect();
            let ratio = if *actual > 0 { estimate / *actual as f64 } else { f64::INFINITY };
            text.push_str(&format!(
                "  {{{}}}: est {:.1} vs actual {} (x{:.3})
",
                names.join(", "),
                estimate,
                actual,
                ratio
            ));
        }
        text.push_str(&format!("metrics: {}
", out.metrics));
        Ok(text)
    }

    /// An EXPLAIN-style report: the rewritten predicates, equivalence
    /// classes, effective statistics, estimated sizes, and the plan tree.
    pub fn explain(&self, sql: &str) -> EngineResult<String> {
        let bound = bind(&parse(sql)?, &self.catalog)?;
        let optimized = optimize_bound(&bound, &self.catalog, &self.optimizer_options)?;
        let els = &optimized.els;
        let mut out = String::new();
        out.push_str(&format!("query: {sql}\n"));
        out.push_str("predicates (after Step 1-2):\n");
        for p in els.predicates() {
            out.push_str(&format!("  {p}\n"));
        }
        if !els.classes().is_empty() {
            out.push_str("equivalence classes:\n");
            for (id, members) in els.classes().iter() {
                let names: Vec<String> = members.iter().map(|m| m.to_string()).collect();
                out.push_str(&format!("  {id}: {{{}}}\n", names.join(", ")));
            }
        }
        out.push_str("effective statistics:\n");
        for (t, table) in els.effective_stats().tables.iter().enumerate() {
            out.push_str(&format!(
                "  {} (R{t}): ||R|| {} -> {:.1}\n",
                bound.binding_names[t], table.original_cardinality, table.cardinality
            ));
        }
        let order: Vec<&str> =
            optimized.join_order.iter().map(|&t| bound.binding_names[t].as_str()).collect();
        out.push_str(&format!(
            "join order: {} | estimated sizes: {:?} | cost: {:.1}\n",
            order.join(" ⋈ "),
            optimized.estimated_sizes,
            optimized.estimated_cost
        ));
        out.push_str("plan:\n");
        out.push_str(&optimized.plan.root.explain());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution};

    fn db() -> Database {
        let mut db = Database::new();
        db.generate(
            TableSpec::new("a", 1000)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            1,
        )
        .unwrap();
        db.generate(
            TableSpec::new("b", 500)
                .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 })),
            2,
        )
        .unwrap();
        db
    }

    #[test]
    fn count_star_round_trip() {
        let db = db();
        let r = db.execute("SELECT COUNT(*) FROM a WHERE k < 100").unwrap();
        assert_eq!(r.count, 100);
        assert_eq!(r.join_order, vec!["a"]);
    }

    #[test]
    fn join_round_trip_with_estimates() {
        let db = db();
        let r = db.execute("SELECT COUNT(*) FROM a, b WHERE a.k = b.k").unwrap();
        assert_eq!(r.count, 500);
        assert_eq!(r.estimated_sizes, vec![500.0]);
        assert_eq!(r.join_order.len(), 2);
    }

    #[test]
    fn estimator_is_switchable() {
        let mut db = db();
        db.set_estimator(EstimatorPreset::Sm);
        let r = db.execute("SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.k < 10").unwrap();
        assert_eq!(r.count, 10);
    }

    #[test]
    fn explain_contains_the_key_sections() {
        let db = db();
        let text = db.explain("SELECT COUNT(*) FROM a, b WHERE a.k = b.k AND a.k < 10").unwrap();
        assert!(text.contains("equivalence classes"));
        assert!(text.contains("join order"));
        assert!(text.contains("Scan"));
        assert!(text.contains("effective statistics"));
    }

    #[test]
    fn errors_are_classified() {
        let db = db();
        assert!(matches!(db.execute("NOT SQL"), Err(EngineError::Sql(_))));
        assert!(matches!(db.execute("SELECT COUNT(*) FROM nope"), Err(EngineError::Sql(_))));
        let mut db2 = db.clone();
        let dup = TableSpec::new("a", 1)
            .column(ColumnSpec::new("k", Distribution::ConstInt { value: 0 }))
            .generate(9);
        assert!(matches!(db2.register(dup), Err(EngineError::Catalog(_))));
    }

    #[test]
    fn projection_queries_return_rows() {
        let db = db();
        let r = db.execute("SELECT a.k FROM a, b WHERE a.k = b.k AND a.k < 3").unwrap();
        assert_eq!(r.count, 3);
        assert_eq!(r.rows.num_columns(), 1);
    }
}
