//! **F6** — access-method ablation: how much of the misestimation damage
//! would richer access methods absorb?
//!
//! The paper's experiment ran with Nested Loops and Sort Merge only; the
//! catastrophic plans rescan unindexed giants. This figure re-runs T1's
//! query with three method repertoires — {NL, SM} (the paper's), {NL, SM,
//! HASH}, and {NL, SM, INL} (indexed nested loops) — under each estimator,
//! and reports measured page reads.
//!
//! Measured shape (and the interesting finding): richer repertoires do
//! **not** rescue the misled estimators at all. Once the outer estimate has
//! collapsed toward zero, plain nested loops *looks cheaper than anything
//! else* (its cost model scales with the believed outer size while hash and
//! index builds carry fixed costs), so the optimizer declines the safer
//! methods it was offered. Bad cardinalities poison method selection, not
//! just join order — which is precisely why the paper fixes estimation
//! rather than adding machinery downstream of it.

use els_bench::{section8_catalog, SECTION8_SQL};
use els_exec::execute_plan;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els_sql::{bind, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = section8_catalog(42);
    let bound = bind(&parse(SECTION8_SQL)?, &catalog)?;
    let tables = bound_query_tables(&bound, &catalog)?;

    type Configure = fn(OptimizerOptions) -> OptimizerOptions;
    let repertoires: [(&str, Configure); 3] = [
        ("NL+SM (paper)", |o| o),
        ("NL+SM+HASH", |o| o.with_hash_join()),
        ("NL+SM+INL", |o| o.with_index_nested_loop()),
    ];

    println!("# F6 — measured page reads by estimator × join-method repertoire");
    println!("query: {SECTION8_SQL}\n");
    println!(
        "| {:<14} | {:>14} | {:>14} | {:>14} |",
        "estimator", "NL+SM", "NL+SM+HASH", "NL+SM+INL"
    );
    println!("|{}|{}|{}|{}|", "-".repeat(16), "-".repeat(16), "-".repeat(16), "-".repeat(16));

    let mut table: Vec<(String, Vec<u64>)> = Vec::new();
    for preset in [EstimatorPreset::Sm, EstimatorPreset::Sss, EstimatorPreset::Els] {
        let mut row = Vec::new();
        for (_, configure) in repertoires {
            let options = configure(OptimizerOptions::preset(preset));
            let optimized = optimize_bound(&bound, &catalog, &options)?;
            let out = execute_plan(&optimized.plan, &tables)?;
            assert_eq!(out.count, 100, "{} must compute the true answer", preset.label());
            row.push(out.metrics.pages_read);
        }
        println!("| {:<14} | {:>14} | {:>14} | {:>14} |", preset.label(), row[0], row[1], row[2]);
        table.push((preset.label().to_owned(), row));
    }

    let els = table.last().expect("ELS row present").1.clone();
    println!("\nslowdown vs ELS within each repertoire:");
    for (label, row) in &table {
        let ratios: Vec<String> =
            row.iter().zip(&els).map(|(r, e)| format!("{:.1}x", *r as f64 / *e as f64)).collect();
        println!("  {:<14} {}", label, ratios.join("  "));
    }
    Ok(())
}
