//! EXPLAIN: show what the optimizer sees and decides, step by step.
//!
//! Parses a query, shows the predicate set before and after the
//! transitive-closure rewrite (the paper's Section 4, Step 2), the
//! equivalence classes, the effective statistics after local predicates
//! (Steps 3–5), and the final plan with its estimated intermediate sizes.
//!
//! Run with: `cargo run --example sql_explain`

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::optimizer::{
    apply_predicate_transitive_closure, optimize_bound, EstimatorPreset, OptimizerOptions,
};
use els::sql::{bind, parse};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A catalog exercising Section 6 as well: table T2 has two columns (y,
    // w) that become j-equivalent through the query's predicates.
    let mut catalog = Catalog::new();
    catalog.register(
        TableSpec::new("T1", 100)
            .column(ColumnSpec::new("x", Distribution::SequentialInt { start: 0 }))
            .generate(1),
        &CollectOptions::default(),
    )?;
    catalog.register(
        TableSpec::new("T2", 1000)
            .column(ColumnSpec::new("y", Distribution::CycleInt { modulus: 10, start: 0 }))
            .column(ColumnSpec::new("w", Distribution::CycleInt { modulus: 50, start: 0 }))
            .generate(2),
        &CollectOptions::default(),
    )?;

    let sql = "SELECT COUNT(*) FROM T1, T2 WHERE T1.x = T2.y AND T1.x = T2.w";
    println!("SQL: {sql}\n");

    let bound = bind(&parse(sql)?, &catalog)?;
    println!("Predicates as written:");
    for p in &bound.predicates {
        println!("  {p}");
    }

    let closed = apply_predicate_transitive_closure(&bound);
    println!("\nAfter predicate transitive closure (note the implied T2.y = T2.w):");
    for p in &closed.predicates {
        println!("  {p}");
    }

    let optimized =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els))?;

    println!("\nEquivalence classes:");
    for (id, members) in optimized.els.classes().iter() {
        let names: Vec<String> = members.iter().map(|m| m.to_string()).collect();
        println!("  {id}: {{{}}}", names.join(", "));
    }

    println!("\nSection 6 same-table adjustments:");
    for a in optimized.els.same_table_adjustments() {
        println!(
            "  table R{}: ||R||' {} -> {} , effective join column cardinality {}",
            a.table, a.cardinality_before, a.cardinality_after, a.join_distinct
        );
    }

    println!("\nEffective statistics after Steps 3-5:");
    for (t, table) in optimized.els.effective_stats().tables.iter().enumerate() {
        println!(
            "  R{t}: ||R|| {} -> {:.1}, d' = {:?}",
            table.original_cardinality, table.cardinality, table.column_distinct
        );
    }

    println!("\nChosen plan (estimated sizes {:?}):", optimized.estimated_sizes);
    println!("{}", optimized.plan.root.explain());
    Ok(())
}
