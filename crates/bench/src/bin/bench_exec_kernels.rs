//! Execution-kernel microbenchmark: row-at-a-time oracle vs vectorized
//! kernels vs morsel-parallel probing, on identical plans over the
//! Section 8 tables.
//!
//! Each workload query is optimized once, then the *same physical plan* is
//! interpreted under three [`ExecMode`]s:
//!
//! 1. **row** — the tuple-at-a-time reference oracle (the seed's executor).
//! 2. **vectorized** — typed whole-column kernels, selection vectors, late
//!    materialization, one worker.
//! 3. **vectorized_parallel** — same, with hash joins radix-partitioned
//!    (big builds) or morsel-split over a work-stealing scheduler (small
//!    builds) across `available_parallelism()` workers.
//!
//! Any disagreement in result counts between modes prints a `REGRESSION`
//! line and exits non-zero — `scripts/check.sh` greps for that marker in
//! its smoke run (`--smoke`: scaled-down tables, no JSON written). On
//! multi-core runners the smoke run also gates on the parallel joins not
//! losing to the serial vectorized path; on one core the gate is skipped
//! with a printed notice. `--samples N` widens the accuracy / feedback /
//! bake-off workload to `N` chain variants of increasing filter cut. The
//! full run writes `BENCH_exec_kernels.json`.

// Tooling/timing layer: measuring wall clocks (and exiting non-zero) is
// this crate's job, so the workspace-wide `disallowed-methods` bans from
// clippy.toml do not apply here.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use els_bench::accuracy::{
    accuracy_json, feedback_json, preset_accuracy, preset_feedback_accuracy,
};
use els_bench::bakeoff::{bakeoff_json, bakeoff_regressions, estimator_bakeoff};
use els_catalog::collect::CollectOptions;
use els_catalog::Catalog;
use els_exec::{execute_plan_with, ExecMode, JoinMethod, PlanNode, QueryPlan};
use els_sql::{bind, parse};
use els_storage::datagen::{starburst_experiment_tables, starburst_experiment_tables_sized};
use els_storage::Table;

const SEED: u64 = 42;

/// The pinned smoke-gate threshold for the ELS median q-error on the
/// Section 8 chain: the model assumptions hold by construction there, so
/// anything above this means an estimator regression, not noise.
const ELS_MEDIAN_Q_LIMIT: f64 = 2.0;

/// The Section 8 schema at a reduced scale for the smoke gate (the full
/// tables are S/M/B/G at 1k/10k/50k/100k rows).
fn smoke_tables(seed: u64) -> Vec<Table> {
    starburst_experiment_tables_sized(seed, &[50, 500, 2_000, 4_000])
}

/// Force every join in the tree to one method, keeping shape and keys.
fn force_method(node: &mut PlanNode, m: JoinMethod) {
    if let PlanNode::Join { method, left, right, .. } = node {
        *method = m;
        force_method(left, m);
        force_method(right, m);
    }
}

/// Optimize `sql` against the catalog, then pin the join method so the
/// benchmark compares executors, not plan choices. Returns the plan with
/// its tables in FROM-list order (the coordinate system plans use).
fn plan_for(
    sql: &str,
    catalog: &Catalog,
    method: Option<JoinMethod>,
) -> (QueryPlan, Vec<std::sync::Arc<Table>>) {
    let bound = bind(&parse(sql).expect("bench SQL parses"), catalog).expect("bench SQL binds");
    let tables = els_optimizer::bound_query_tables(&bound, catalog).expect("bench tables resolve");
    let optimized =
        els_optimizer::optimize_bound(&bound, catalog, &els_optimizer::OptimizerOptions::default())
            .expect("bench SQL optimizes");
    let mut plan = optimized.plan;
    if let Some(m) = method {
        force_method(&mut plan.root, m);
    }
    (plan, tables)
}

struct Measurement {
    count: u64,
    best: Duration,
    kernel_rows: u64,
    morsels: u64,
    partitions: u64,
    steals: u64,
}

/// Best-of-`repeats` wall time for one plan under one mode.
fn measure(
    plan: &QueryPlan,
    tables: &[std::sync::Arc<Table>],
    mode: ExecMode,
    repeats: usize,
) -> Measurement {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let o = execute_plan_with(plan, tables, mode).expect("bench plans execute");
        best = best.min(t0.elapsed());
        out = Some(o);
    }
    let out = out.expect("at least one repeat");
    Measurement {
        count: out.count,
        best,
        kernel_rows: out.metrics.kernel_rows,
        morsels: out.metrics.morsels,
        partitions: out.metrics.partitions,
        steals: out.metrics.steals,
    }
}

/// Parse `--samples N` (workload rounds for the accuracy / feedback /
/// bake-off passes); `default` when absent or malformed.
fn samples_arg(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(default, |n| n.max(1))
}

/// The estimation workload: `samples` variants of the Section 8 chain with
/// a widening local filter (`s < 100`, `s < 200`, …), so multi-round runs
/// measure the estimators across different selectivities instead of
/// repeating one identical query.
fn accuracy_workload(samples: usize) -> Vec<String> {
    (0..samples)
        .map(|i| {
            format!(
                "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < {}",
                100 * (i as i64 + 1)
            )
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = cpus.max(2); // exercise the morsel path even on 1 CPU
    let repeats = if smoke { 2 } else { 5 };
    let samples = samples_arg(if smoke { 1 } else { 3 });

    let base_tables = if smoke { smoke_tables(SEED) } else { starburst_experiment_tables(SEED) };
    let mut catalog = Catalog::new();
    for t in &base_tables {
        catalog
            .register(t.clone(), &CollectOptions::default())
            .expect("fresh catalog accepts the bench tables");
    }

    // The workload: the Section 8 chain under both vectorizable join
    // methods, a wide-output variant (exercises late materialization), and
    // a selective single-table scan (pure filter kernels).
    let chain_where = "s = m AND m = b AND b = g AND s < 100";
    let queries: Vec<(&str, String, Option<JoinMethod>)> = vec![
        (
            "hash_chain_count",
            format!("SELECT COUNT(*) FROM S, M, B, G WHERE {chain_where}"),
            Some(JoinMethod::Hash),
        ),
        (
            "sort_merge_chain_count",
            format!("SELECT COUNT(*) FROM S, M, B, G WHERE {chain_where}"),
            Some(JoinMethod::SortMerge),
        ),
        (
            "hash_chain_star",
            format!("SELECT * FROM S, M, B, G WHERE {chain_where}"),
            Some(JoinMethod::Hash),
        ),
        // No local filter: the closure can't shrink the probe side, so the
        // 100k-row probe of G actually splits into morsels.
        (
            "hash_big_probe_count",
            "SELECT COUNT(*) FROM M, G WHERE m = g".to_owned(),
            Some(JoinMethod::Hash),
        ),
        ("filter_scan", "SELECT * FROM G WHERE g < 500000 AND payload < 500000".to_owned(), None),
    ];

    let modes = [
        ("row", ExecMode::RowAtATime),
        ("vectorized", ExecMode::Vectorized { workers: 1 }),
        ("vectorized_parallel", ExecMode::Vectorized { workers }),
    ];
    println!(
        "exec kernels: {} queries x {} modes, {repeats} repeats, {samples} accuracy sample(s), \
         {cpus} cpu(s), {workers} workers{}",
        queries.len(),
        modes.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut json = String::from("{\n  \"bench\": \"exec_kernels\",\n");
    let _ = write!(
        json,
        "  \"workload\": \"section8 kernels\", \"smoke\": {smoke}, \"repeats\": {repeats}, \
         \"samples\": {samples}, \"cpus\": {cpus}, \"workers\": {workers},\n  \"queries\": {{\n"
    );

    let mut regression = false;
    let mut join_totals = [0.0f64; 3]; // per-mode seconds over join queries
    let mut all_totals = [0.0f64; 3];
    for (qi, (name, sql, method)) in queries.iter().enumerate() {
        let (plan, tables) = plan_for(sql, &catalog, *method);
        let runs: Vec<Measurement> =
            modes.iter().map(|&(_, mode)| measure(&plan, &tables, mode, repeats)).collect();
        for (i, run) in runs.iter().enumerate() {
            all_totals[i] += run.best.as_secs_f64();
            if method.is_some() {
                join_totals[i] += run.best.as_secs_f64();
            }
            if run.count != runs[0].count {
                regression = true;
                println!(
                    "REGRESSION: {name} under {} returned {} rows, row oracle returned {}",
                    modes[i].0, run.count, runs[0].count
                );
            }
        }
        let speedup = runs[0].best.as_secs_f64() / runs[1].best.as_secs_f64().max(1e-9);
        println!(
            "{name:<24} rows {:>8}  row {:>9.3}ms  vec {:>9.3}ms  vec-par {:>9.3}ms  ({speedup:.2}x)",
            runs[0].count,
            runs[0].best.as_secs_f64() * 1e3,
            runs[1].best.as_secs_f64() * 1e3,
            runs[2].best.as_secs_f64() * 1e3,
        );
        let _ = write!(json, "    \"{name}\": {{ \"rows\": {}, ", runs[0].count);
        for (i, (mode_name, _)) in modes.iter().enumerate() {
            let _ = write!(json, "\"{mode_name}_ms\": {:.4}, ", runs[i].best.as_secs_f64() * 1e3);
        }
        let _ = write!(
            json,
            "\"kernel_rows\": {}, \"morsels\": {}, \"partitions\": {}, \"steals\": {}, \
             \"speedup_vectorized\": {:.2} }}{}\n",
            runs[1].kernel_rows,
            runs[2].morsels,
            runs[2].partitions,
            runs[2].steals,
            speedup,
            if qi + 1 == queries.len() { "" } else { "," }
        );
    }

    // Accuracy pass: the same Section 8 chain analyzed under the paper's
    // four estimator presets, summarized as join q-errors. In smoke mode
    // this doubles as the estimator-regression gate for scripts/check.sh.
    let accuracy_queries = accuracy_workload(samples);
    let summaries = preset_accuracy(&base_tables, &accuracy_queries);
    for s in &summaries {
        println!(
            "accuracy {:<14} rule {:<3} samples {:>2}  median q {:>7.2}  p95 q {:>7.2}  max q {:>7.2}",
            s.label, s.rule, s.samples, s.median_q, s.p95_q, s.max_q
        );
    }
    let els = summaries.iter().find(|s| s.label == "Orig. ELS").expect("ELS preset measured");
    if !(els.median_q <= ELS_MEDIAN_Q_LIMIT) {
        regression = true;
        println!(
            "ACCURACY REGRESSION: ELS median q-error {:.2} exceeds the pinned limit {:.1}",
            els.median_q, ELS_MEDIAN_Q_LIMIT
        );
    }

    // Feedback pass: a workload run twice under FeedbackMode::Apply; the
    // second (corrected) pass's median must never exceed the first. In
    // smoke mode this gates the estimation feedback loop the same way the
    // accuracy pass gates the raw estimators. The never-regress guarantee
    // is about *replaying* queries the loop has seen, so this pass repeats
    // the pinned chain `samples` times instead of using the widened
    // variants (a correction learned at one filter cut is allowed to miss
    // at another).
    let feedback_queries = vec![els_bench::SECTION8_SQL.to_owned(); samples];
    let feedback = preset_feedback_accuracy(&base_tables, &feedback_queries);
    for s in &feedback {
        println!(
            "feedback {:<14} rule {:<3} samples {:>2}  median q {:>7.2} -> {:>7.2}  \
             max q {:>7.2} -> {:>7.2}  learned {:>3}  published {}",
            s.label,
            s.rule,
            s.samples,
            s.median_q_before,
            s.median_q_after,
            s.max_q_before,
            s.max_q_after,
            s.learned,
            s.published
        );
        if !(s.median_q_after <= s.median_q_before) {
            regression = true;
            println!(
                "FEEDBACK REGRESSION: {} replay median q-error rose {:.2} -> {:.2}",
                s.label, s.median_q_before, s.median_q_after
            );
        }
    }

    // Bake-off pass: five estimator contenders (ELS, Rule-M, feedback-
    // corrected ELS, the UES upper bound, and the Simpli-Squared
    // no-estimates baseline) each plan AND execute the workload — q-error
    // tells how wrong the estimates were, runtime what the plans cost. In
    // smoke mode the gate fails on a UES under-estimate (it claims to be
    // an upper bound) or a degraded ELS median.
    let bakeoff = estimator_bakeoff(&base_tables, &accuracy_queries, workers);
    for e in &bakeoff {
        println!(
            "bakeoff {:<15} rule {:<11} samples {:>2}  median q {:>9.2}  max q {:>9.2}  \
             under-est {:>2}  runtime {:>8.3}ms",
            e.label, e.rule, e.samples, e.median_q, e.max_q, e.underestimates, e.runtime_ms
        );
    }
    for msg in bakeoff_regressions(&bakeoff) {
        regression = true;
        println!("BAKE-OFF REGRESSION: {msg}");
    }

    let join_speedup = join_totals[0] / join_totals[1].max(1e-9);
    let parallel_speedup = join_totals[1] / join_totals[2].max(1e-9);
    let overall_speedup = all_totals[0] / all_totals[1].max(1e-9);
    let _ = write!(
        json,
        "  }},\n  \"accuracy\": {},\n  \"feedback\": {},\n  \"bakeoff\": {},\n  \
         \"join_speedup_vectorized_vs_row\": {join_speedup:.2},\n  \
         \"join_speedup_parallel_vs_vectorized\": {parallel_speedup:.2},\n  \
         \"overall_speedup_vectorized_vs_row\": {overall_speedup:.2}\n}}\n",
        accuracy_json(&summaries),
        feedback_json(&feedback),
        bakeoff_json(&bakeoff)
    );

    println!("join workload: vectorized {join_speedup:.2}x over row-at-a-time");
    println!("join workload: parallel(x{workers}) {parallel_speedup:.2}x over vectorized");
    println!("overall      : vectorized {overall_speedup:.2}x over row-at-a-time");
    // Parallel gate: with real cores available the radix/stealing probe
    // must never lose to the serial vectorized path on the join workload.
    // On a single-CPU runner `workers = 2` only adds scheduling overhead,
    // so the gate would measure the runner, not the code — skip loudly.
    if cpus > 1 {
        if smoke && parallel_speedup < 1.0 {
            regression = true;
            println!(
                "PARALLEL REGRESSION: parallel joins ran {parallel_speedup:.2}x vs serial \
                 vectorized on {cpus} cpus"
            );
        }
    } else {
        println!("parallel gate skipped: single-cpu runner ({workers} workers on 1 core)");
    }
    if !smoke {
        let ok = join_speedup >= 3.0;
        println!("target: join vectorized speedup >= 3x {}", if ok { "PASS" } else { "FAIL" });
        if cpus > 1 {
            let ok = parallel_speedup >= 1.5;
            println!("target: parallel join speedup >= 1.5x {}", if ok { "PASS" } else { "FAIL" });
        }
        std::fs::write("BENCH_exec_kernels.json", &json).expect("write BENCH_exec_kernels.json");
        println!("wrote BENCH_exec_kernels.json");
    }
    if regression {
        println!("REGRESSION: results diverged from the row oracle or accuracy gate");
        std::process::exit(1);
    }
}
