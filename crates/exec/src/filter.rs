//! Local predicate evaluation during scans.

use els_core::predicate::{CmpOp, Predicate};
use els_core::ColumnRef;
use els_storage::Value;

use crate::chunk::Chunk;
use crate::error::{ExecError, ExecResult};
use crate::metrics::ExecMetrics;

/// A local predicate compiled against one scan: either `column op constant`
/// or `column = column` within the same table.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledFilter {
    /// `column op value`.
    Cmp {
        /// The restricted column.
        column: ColumnRef,
        /// Operator.
        op: CmpOp,
        /// Constant.
        value: Value,
    },
    /// `left = right` with both columns in the scanned table.
    ColEq {
        /// First column.
        left: ColumnRef,
        /// Second column.
        right: ColumnRef,
    },
    /// `column IS NULL` / `column IS NOT NULL`.
    IsNull {
        /// The tested column.
        column: ColumnRef,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl CompiledFilter {
    /// Compile a local [`Predicate`]; join predicates are rejected.
    pub fn from_predicate(p: &Predicate) -> ExecResult<CompiledFilter> {
        match p {
            Predicate::LocalCmp { column, op, value } => {
                Ok(CompiledFilter::Cmp { column: *column, op: *op, value: value.clone() })
            }
            Predicate::LocalColEq { left, right } => {
                Ok(CompiledFilter::ColEq { left: *left, right: *right })
            }
            Predicate::IsNull { column, negated } => {
                Ok(CompiledFilter::IsNull { column: *column, negated: *negated })
            }
            Predicate::JoinEq { .. } => Err(ExecError::InvalidPlan(format!(
                "join predicate `{p}` cannot run as a scan filter"
            ))),
        }
    }

    /// Evaluate against one row of a chunk (SQL semantics: NULL comparisons
    /// are false).
    pub fn matches(&self, chunk: &Chunk, row: usize) -> ExecResult<bool> {
        match self {
            CompiledFilter::Cmp { column, op, value } => {
                let pos = chunk.require(*column)?;
                let v = chunk.data.column(pos)?.get(row)?;
                Ok(v.sql_cmp(value).map(|ord| op.eval(ord)).unwrap_or(false))
            }
            CompiledFilter::ColEq { left, right } => {
                let lp = chunk.require(*left)?;
                let rp = chunk.require(*right)?;
                let lv = chunk.data.column(lp)?.get(row)?;
                let rv = chunk.data.column(rp)?.get(row)?;
                Ok(lv.sql_eq(&rv))
            }
            CompiledFilter::IsNull { column, negated } => {
                let pos = chunk.require(*column)?;
                let is_null = chunk.data.column(pos)?.get(row)?.is_null();
                Ok(is_null != *negated)
            }
        }
    }
}

/// Apply a conjunction of filters to a chunk, counting comparisons.
pub fn apply_filters(
    chunk: &Chunk,
    filters: &[CompiledFilter],
    metrics: &mut ExecMetrics,
) -> ExecResult<Chunk> {
    if filters.is_empty() {
        return Ok(chunk.clone());
    }
    let mut keep = Vec::new();
    for row in 0..chunk.num_rows() {
        let mut ok = true;
        for f in filters {
            metrics.comparisons += 1;
            if !f.matches(chunk, row)? {
                ok = false;
                break;
            }
        }
        if ok {
            keep.push(row);
        }
    }
    chunk.filter_rows(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::{DataType, Table};

    fn chunk() -> Chunk {
        let mut t = Table::empty("t", &[("a", DataType::Int), ("b", DataType::Int)]);
        for (a, b) in [(1, 1), (2, 5), (3, 3), (4, 0)] {
            t.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        Chunk::from_base_table(0, t)
    }

    fn c(col: usize) -> ColumnRef {
        ColumnRef::new(0, col)
    }

    #[test]
    fn cmp_filter_selects() {
        let ch = chunk();
        let f = CompiledFilter::Cmp { column: c(0), op: CmpOp::Ge, value: Value::Int(3) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(m.comparisons, 4);
    }

    #[test]
    fn col_eq_filter_selects_agreeing_rows() {
        let ch = chunk();
        let f = CompiledFilter::ColEq { left: c(0), right: c(1) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        assert_eq!(out.num_rows(), 2); // (1,1) and (3,3)
    }

    #[test]
    fn conjunction_short_circuits() {
        let ch = chunk();
        let f1 = CompiledFilter::Cmp { column: c(0), op: CmpOp::Gt, value: Value::Int(100) };
        let f2 = CompiledFilter::Cmp { column: c(1), op: CmpOp::Gt, value: Value::Int(0) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f1, f2], &mut m).unwrap();
        assert_eq!(out.num_rows(), 0);
        // First filter fails every row; second never evaluated.
        assert_eq!(m.comparisons, 4);
    }

    #[test]
    fn null_comparisons_are_false() {
        let mut t = Table::empty("t", &[("a", DataType::Int)]);
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let ch = Chunk::from_base_table(0, t);
        let f = CompiledFilter::Cmp { column: c(0), op: CmpOp::Ne, value: Value::Int(5) };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        // NULL <> 5 is unknown -> filtered out; 1 <> 5 is true.
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn join_predicates_rejected() {
        let p = Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0));
        assert!(CompiledFilter::from_predicate(&p).is_err());
        let p = Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(0, 1));
        assert!(CompiledFilter::from_predicate(&p).is_ok());
    }

    #[test]
    fn empty_filter_list_is_identity() {
        let ch = chunk();
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[], &mut m).unwrap();
        assert_eq!(out.num_rows(), ch.num_rows());
        assert_eq!(m.comparisons, 0);
    }

    #[test]
    fn is_null_filter_selects_null_rows() {
        let mut t = Table::empty("t", &[("a", DataType::Int)]);
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Int(1)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let ch = Chunk::from_base_table(0, t);
        let mut m = ExecMetrics::default();
        let nulls =
            apply_filters(&ch, &[CompiledFilter::IsNull { column: c(0), negated: false }], &mut m)
                .unwrap();
        assert_eq!(nulls.num_rows(), 2);
        let non_nulls =
            apply_filters(&ch, &[CompiledFilter::IsNull { column: c(0), negated: true }], &mut m)
                .unwrap();
        assert_eq!(non_nulls.num_rows(), 1);
    }

    #[test]
    fn is_null_predicate_compiles() {
        let p = Predicate::is_not_null(ColumnRef::new(0, 0));
        assert_eq!(
            CompiledFilter::from_predicate(&p).unwrap(),
            CompiledFilter::IsNull { column: ColumnRef::new(0, 0), negated: true }
        );
    }

    #[test]
    fn string_filters_work() {
        let mut t = Table::empty("t", &[("s", DataType::Str)]);
        for s in ["apple", "banana", "cherry"] {
            t.push_row(vec![Value::from(s)]).unwrap();
        }
        let ch = Chunk::from_base_table(0, t);
        let f = CompiledFilter::Cmp { column: c(0), op: CmpOp::Eq, value: Value::from("banana") };
        let mut m = ExecMetrics::default();
        let out = apply_filters(&ch, &[f], &mut m).unwrap();
        assert_eq!(out.num_rows(), 1);
    }
}
