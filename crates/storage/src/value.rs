//! Dynamically typed cell values.
//!
//! The engine is dynamically typed at the cell level: a [`Value`] is an
//! integer, a float, a string, or NULL. Comparison semantics follow SQL for
//! predicates (any comparison involving NULL is *unknown*, treated as false by
//! conjunctive filters) while [`Value::total_cmp`] provides the total order
//! needed by sort-merge joins and histogram construction.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Approximate width in bytes of one cell of this type, used by the page
    /// model ([`crate::Table::estimated_row_bytes`]). Strings are charged a
    /// fixed 24 bytes (pointer + small payload), which mirrors the fixed-width
    /// CHAR columns of 1990s benchmark schemas closely enough for cost
    /// purposes.
    pub fn estimated_width(self) -> usize {
        match self {
            DataType::Int | DataType::Float => 8,
            DataType::Str => 24,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A single dynamically typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The [`DataType`] of this value, or `None` for NULL (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable, otherwise the ordering. Int and Float compare
    /// numerically with each other.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order over all values, used for sorting. NULL sorts first, then
    /// numeric values (Int and Float interleaved by numeric value, with Int
    /// before an equal Float so the order is antisymmetric), then strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL equality: `false` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    /// Extract an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float; integers are widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types_report_widths() {
        assert_eq!(DataType::Int.estimated_width(), 8);
        assert_eq!(DataType::Float.estimated_width(), 8);
        assert_eq!(DataType::Str.estimated_width(), 24);
    }

    #[test]
    fn null_is_typeless_and_never_equal() {
        assert_eq!(Value::Null.data_type(), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(1.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(2.5).sql_cmp(&Value::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(Value::from("apple").sql_cmp(&Value::from("banana")), Some(Ordering::Less));
        assert!(Value::from("x").sql_eq(&Value::from("x")));
    }

    #[test]
    fn incomparable_types_yield_none() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::from("1")), None);
        assert!(!Value::Int(1).sql_eq(&Value::from("1")));
    }

    #[test]
    fn total_order_sorts_null_first_then_numbers_then_strings() {
        let mut vals =
            vec![Value::from("a"), Value::Int(3), Value::Null, Value::Float(1.5), Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![Value::Null, Value::Int(1), Value::Float(1.5), Value::Int(3), Value::from("a"),]
        );
    }

    #[test]
    fn total_order_is_antisymmetric_for_equal_int_float() {
        // Int(2) and Float(2.0) must order consistently in both directions.
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(b.total_cmp(&a), Ordering::Greater);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::from("s").as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
    }
}
