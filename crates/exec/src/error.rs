//! Error type for the executor.

use std::fmt;

use els_core::ColumnRef;

/// Errors raised while building or executing a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A plan node referenced a table id with no registered data.
    UnknownTable(usize),
    /// A column reference did not resolve in an intermediate schema.
    ColumnNotInSchema(ColumnRef),
    /// Several column references did not resolve when binding an operator's
    /// filters; lists *every* missing column so a malformed plan is
    /// diagnosable in one pass.
    ColumnsNotInSchema(Vec<ColumnRef>),
    /// Underlying storage failure.
    Storage(String),
    /// A plan was structurally invalid (e.g. join key columns on the wrong
    /// side).
    InvalidPlan(String),
    /// An input has more rows than a `u32` selection vector can address.
    /// Row ids are `u32` throughout the vectorized path (selection
    /// vectors, join pair lists); beyond `u32::MAX` rows they would
    /// silently alias, so the executor refuses instead.
    SelectionOverflow {
        /// The offending row count.
        rows: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "no data registered for table {t}"),
            ExecError::ColumnNotInSchema(c) => {
                write!(f, "column {c} not present in intermediate schema")
            }
            ExecError::ColumnsNotInSchema(cs) => {
                let list: Vec<String> = cs.iter().map(ToString::to_string).collect();
                write!(f, "columns [{}] not present in intermediate schema", list.join(", "))
            }
            ExecError::Storage(m) => write!(f, "storage error: {m}"),
            ExecError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            ExecError::SelectionOverflow { rows } => write!(
                f,
                "input has {rows} rows but row ids are u32: the vectorized executor \
                 addresses at most {} rows per input",
                u32::MAX
            ),
        }
    }
}

/// Guard for every place that builds `u32` row ids over an input of `rows`
/// rows (selection vectors, identity selections, pair lists). In release
/// builds an unchecked cast would silently alias row ids beyond
/// `u32::MAX`; this returns the typed error instead. Callable without
/// allocating anything, so the boundary is testable.
pub fn check_rowid_range(rows: usize) -> ExecResult<()> {
    if rows > u32::MAX as usize {
        Err(ExecError::SelectionOverflow { rows })
    } else {
        Ok(())
    }
}

/// Narrow a row index to a `u32` row id. This is the executor's single
/// sanctioned `usize → u32` narrowing: every caller sits downstream of a
/// [`check_rowid_range`] guard on its input's row count, so the cast is
/// provably lossless there — the debug assert re-states (and the tests
/// exercise) that contract.
#[inline]
pub fn rowid(i: usize) -> u32 {
    debug_assert!(i <= u32::MAX as usize, "row index {i} escaped check_rowid_range");
    // els-lint: allow(numeric-discipline, "the one sanctioned usize->u32 narrowing: callers are downstream of check_rowid_range on their input's row count, and debug builds assert it")
    i as u32
}

impl std::error::Error for ExecError {}

impl From<els_storage::StorageError> for ExecError {
    fn from(e: els_storage::StorageError) -> Self {
        ExecError::Storage(e.to_string())
    }
}

/// Result alias for this crate.
pub type ExecResult<T> = Result<T, ExecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(ExecError::UnknownTable(2).to_string().contains('2'));
        assert!(ExecError::ColumnNotInSchema(ColumnRef::new(0, 1)).to_string().contains("R0.c1"));
        let multi = ExecError::ColumnsNotInSchema(vec![ColumnRef::new(0, 1), ColumnRef::new(2, 3)]);
        let text = multi.to_string();
        assert!(text.contains("R0.c1") && text.contains("R2.c3"), "{text}");
        let overflow = ExecError::SelectionOverflow { rows: 5_000_000_000 };
        assert!(overflow.to_string().contains("5000000000"), "{overflow}");
    }

    #[test]
    fn rowid_range_guard_is_exact_at_the_u32_boundary() {
        // No 4-billion-row table needed: the guard is a pure function of
        // the row count.
        assert!(check_rowid_range(0).is_ok());
        assert!(check_rowid_range(u32::MAX as usize).is_ok());
        assert_eq!(
            check_rowid_range(u32::MAX as usize + 1),
            Err(ExecError::SelectionOverflow { rows: u32::MAX as usize + 1 })
        );
    }

    #[test]
    fn rowid_is_exact_over_the_guarded_range() {
        assert_eq!(rowid(0), 0);
        assert_eq!(rowid(7), 7);
        assert_eq!(rowid(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "escaped check_rowid_range")]
    #[cfg(debug_assertions)]
    fn rowid_catches_unguarded_overflow_in_debug_builds() {
        let _ = rowid(u32::MAX as usize + 1);
    }
}
