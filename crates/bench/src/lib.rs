//! # els-bench
//!
//! Shared harness code for the experiment drivers and criterion benchmarks.
//! Each binary under `src/bin/` regenerates one table or figure of
//! `EXPERIMENTS.md`; see `DESIGN.md` for the experiment index.

// Tooling/timing layer: measuring wall clocks (and exiting non-zero) is
// this crate's job, so the workspace-wide `disallowed-methods` bans from
// clippy.toml do not apply here.
#![allow(clippy::disallowed_methods)]

pub mod accuracy;
pub mod bakeoff;
pub mod driver;
pub mod server_load;
pub mod workload;

use els_catalog::collect::CollectOptions;
use els_catalog::Catalog;
use els_core::{ColumnStatistics, QueryStatistics, TableStatistics};
use els_storage::datagen::starburst_experiment_tables;

/// The Section 8 query.
pub const SECTION8_SQL: &str =
    "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100";

/// Build the Section 8 catalog (S/M/B/G with key join columns + payload).
pub fn section8_catalog(seed: u64) -> Catalog {
    let mut catalog = Catalog::new();
    for t in starburst_experiment_tables(seed) {
        catalog
            .register(t, &CollectOptions::default())
            .expect("fresh catalog accepts the experiment tables");
    }
    catalog
}

/// Statistics-only version of a single-class chain query: `dims[i]` is
/// `(cardinality, join-column distinct count)` of table `i`.
pub fn chain_statistics(dims: &[(f64, f64)]) -> QueryStatistics {
    QueryStatistics::new(
        dims.iter()
            .map(|&(rows, d)| TableStatistics::new(rows, vec![ColumnStatistics::with_distinct(d)]))
            .collect(),
    )
}

/// The chain's join predicates (adjacent equalities, one class).
pub fn chain_predicates(n: usize) -> Vec<els_core::Predicate> {
    (1..n)
        .map(|i| {
            els_core::Predicate::join_eq(
                els_core::ColumnRef::new(i - 1, 0),
                els_core::ColumnRef::new(i, 0),
            )
        })
        .collect()
}

/// Geometric mean of strictly positive samples.
pub fn geometric_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = samples.iter().map(|s| s.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

/// Format a float compactly for report tables (scientific when extreme).
pub fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if !(0.001..=1e6).contains(&v.abs()) {
        format!("{v:.2e}")
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section8_catalog_has_the_four_tables() {
        let c = section8_catalog(42);
        assert_eq!(c.table_names(), vec!["S", "M", "B", "G"]);
        assert_eq!(c.table_stats("G").unwrap().row_count, 100_000);
    }

    #[test]
    fn chain_helpers_are_consistent() {
        let dims = [(10.0, 2.0), (20.0, 4.0), (30.0, 6.0)];
        let stats = chain_statistics(&dims);
        assert_eq!(stats.num_tables(), 3);
        let preds = chain_predicates(3);
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(100.0), "100");
        assert_eq!(fmt_num(0.25), "0.250");
        assert_eq!(fmt_num(4e-8), "4.00e-8");
    }
}
