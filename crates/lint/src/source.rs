//! Per-file model: token stream, `#[cfg(test)]` exclusion spans, and
//! parsed `// els-lint: allow(...)` suppressions.
//!
//! The passes only ever see *library code*: test modules inside library
//! files are located by walking the token stream (`#[cfg(test)]` attribute
//! followed by an item, brace-matched) and masked out. Brace matching on
//! tokens is exact because the lexer has already removed braces hidden in
//! strings, chars and comments.

use crate::lexer::{tokenize, Token, TokenKind};

/// A suppression comment: `// els-lint: allow(<lint>, "<reason>")`.
#[derive(Debug, Clone, PartialEq)]
pub struct Suppression {
    /// The lint being allowed (validated against the registry by the
    /// driver).
    pub lint: String,
    /// The mandatory human justification. Never empty.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// The line of code this suppression covers: its own line when the
    /// comment trails code, otherwise the next line holding a code token.
    pub applies_to: u32,
}

/// A malformed suppression or test-exclusion problem. These are hard
/// errors: a suppression without a justification must fail the run, not
/// silently suppress nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceError {
    /// Line of the offending comment.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

/// One library source file, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes
    /// (e.g. `crates/core/src/estimator.rs`).
    pub rel_path: String,
    /// Token stream, comments included.
    pub tokens: Vec<Token>,
    /// `excluded[i]` — token `i` is inside a `#[cfg(test)]` item.
    pub excluded: Vec<bool>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppressions found while parsing.
    pub errors: Vec<SourceError>,
}

impl SourceFile {
    /// Lex and annotate one file.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let tokens = tokenize(text);
        let excluded = mark_cfg_test_items(&tokens);
        let (suppressions, errors) = parse_suppressions(&tokens);
        SourceFile { rel_path: rel_path.to_string(), tokens, excluded, suppressions, errors }
    }

    /// Indices of tokens that are code *and* outside test modules — the
    /// stream every pass walks.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len()).filter(|&i| self.tokens[i].is_code() && !self.excluded[i]).collect()
    }
}

/// Mark every token belonging to a `#[cfg(test)]` item (attribute
/// included). Handles stacked attributes between the cfg and the item, and
/// items ending at either a top-level `;` or a brace-matched `}`.
fn mark_cfg_test_items(tokens: &[Token]) -> Vec<bool> {
    let mut excluded = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
    let is = |ci: usize, kind: TokenKind, text: &str| -> bool {
        code.get(ci)
            .is_some_and(|&i| tokens[i].kind == kind && (text.is_empty() || tokens[i].text == text))
    };
    let mut ci = 0usize;
    while ci < code.len() {
        let pat = is(ci, TokenKind::Punct('#'), "")
            && is(ci + 1, TokenKind::Punct('['), "")
            && is(ci + 2, TokenKind::Ident, "cfg")
            && is(ci + 3, TokenKind::Punct('('), "")
            && is(ci + 4, TokenKind::Ident, "test")
            && is(ci + 5, TokenKind::Punct(')'), "")
            && is(ci + 6, TokenKind::Punct(']'), "");
        if !pat {
            ci += 1;
            continue;
        }
        let start = ci;
        let mut j = ci + 7;
        // Skip any further attributes stacked on the same item.
        while is(j, TokenKind::Punct('#'), "") && is(j + 1, TokenKind::Punct('['), "") {
            let mut depth = 0i32;
            j += 1;
            while j < code.len() {
                match tokens[code[j]].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        // Consume one item: to a top-level `;`, or through matched braces.
        let mut depth = 0i32;
        while j < code.len() {
            match tokens[code[j]].kind {
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end = j.min(code.len().saturating_sub(1));
        for &ti in &code[start..=end] {
            excluded[ti] = true;
        }
        ci = j + 1;
    }
    excluded
}

/// Parse every `// els-lint:` comment in the stream. Well-formed ones
/// become [`Suppression`]s; anything else starting with the marker is a
/// [`SourceError`] — a typo in a suppression must not silently lint.
fn parse_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<SourceError>) {
    let mut sups = Vec::new();
    let mut errs = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("els-lint:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((lint, reason)) => {
                let trails_code = tokens[..i]
                    .iter()
                    .rev()
                    .take_while(|t| t.line == tok.line)
                    .any(|t| t.is_code());
                let applies_to = if trails_code {
                    tok.line
                } else {
                    tokens[i + 1..].iter().find(|t| t.is_code()).map_or(tok.line, |t| t.line)
                };
                sups.push(Suppression { lint, reason, line: tok.line, applies_to });
            }
            Err(msg) => errs.push(SourceError { line: tok.line, message: msg }),
        }
    }
    (sups, errs)
}

/// Parse `allow(<lint>, "<reason>")`. The reason is mandatory and must be
/// a non-empty string literal.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let inner = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| {
            format!("malformed els-lint comment: expected `allow(<lint>, \"<reason>\")`, got `{s}`")
        })?;
    let (lint, rest) = inner.split_once(',').ok_or_else(|| {
        format!(
            "suppression for `{}` is missing its justification: \
             write `allow({}, \"why this is safe\")`",
            inner.trim(),
            inner.trim()
        )
    })?;
    let lint = lint.trim().to_string();
    let rest = rest.trim();
    let reason = rest
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("suppression reason must be a quoted string, got `{rest}`"))?;
    if reason.trim().is_empty() {
        return Err(format!("suppression for `{lint}` has an empty justification"));
    }
    if lint.is_empty() {
        return Err("suppression names no lint".to_string());
    }
    Ok((lint, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_masked_out() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn lib2() { z.unwrap(); }";
        let f = SourceFile::parse("a.rs", src);
        let visible: Vec<&str> = f
            .code_indices()
            .into_iter()
            .map(|i| f.tokens[i].text.as_str())
            .filter(|t| *t == "x" || *t == "y" || *t == "z")
            .collect();
        assert_eq!(visible, ["x", "z"]);
    }

    #[test]
    fn cfg_test_on_a_use_statement_ends_at_the_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { a.unwrap(); }";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.code_indices().iter().any(|&i| f.tokens[i].text == "unwrap"));
        assert!(!f.code_indices().iter().any(|&i| f.tokens[i].text == "HashMap"));
    }

    #[test]
    fn stacked_attributes_stay_attached_to_the_test_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { y.unwrap(); } }";
        let f = SourceFile::parse("a.rs", src);
        assert!(!f.code_indices().iter().any(|&i| f.tokens[i].text == "y"));
    }

    #[test]
    fn trailing_suppression_applies_to_its_own_line() {
        let src = "let a = x.unwrap(); // els-lint: allow(panic-freedom, \"checked above\")";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.errors, vec![]);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].applies_to, 1);
        assert_eq!(f.suppressions[0].lint, "panic-freedom");
        assert_eq!(f.suppressions[0].reason, "checked above");
    }

    #[test]
    fn standalone_suppression_applies_to_the_next_code_line() {
        let src = "// els-lint: allow(determinism, \"bench-only module\")\n\n// other\nlet t = Instant::now();";
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.errors, vec![]);
        assert_eq!(f.suppressions[0].applies_to, 4);
    }

    #[test]
    fn missing_or_empty_justification_is_a_hard_error() {
        for src in [
            "// els-lint: allow(panic-freedom)",
            "// els-lint: allow(panic-freedom, \"\")",
            "// els-lint: allow(panic-freedom, \"   \")",
            "// els-lint: allow(panic-freedom, unquoted)",
            "// els-lint: permit(panic-freedom, \"x\")",
        ] {
            let f = SourceFile::parse("a.rs", src);
            assert_eq!(f.suppressions.len(), 0, "{src}");
            assert_eq!(f.errors.len(), 1, "{src}");
        }
    }

    #[test]
    fn suppression_marker_inside_a_raw_string_is_not_a_suppression() {
        let src = "let s = r#\"// els-lint: allow(panic-freedom, \"fake\")\"#;";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.suppressions.is_empty());
        assert!(f.errors.is_empty());
    }
}
