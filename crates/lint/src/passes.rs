//! The lint passes.
//!
//! Each token pass walks the code tokens of one library source file and
//! emits [`Violation`]s; the layering pass reads `Cargo.toml` manifests
//! instead. Passes are deliberately syntactic — they ban *spellings*, not
//! semantics — because a spelling ban plus a justification-carrying
//! suppression syntax is auditable in review, while a semantic analysis of
//! this size would itself become the thing nobody checks.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// The lints, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// No `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library
    /// code; additionally no slice indexing inside els-core, the estimator
    /// path the paper requires to degrade gracefully (typed `ElsError`s,
    /// never aborts) on degenerate statistics.
    PanicFreedom,
    /// Clock reads (`Instant`, `SystemTime`) confined to the carved-out
    /// timing module, keeping the differential tests timing-blind.
    Determinism,
    /// `println!`/`eprintln!`/`dbg!`/`process::exit` banned in library
    /// crates — output goes through `MetricsRegistry`.
    MetricsIo,
    /// `Ordering::Relaxed` only in the allowlisted counter modules.
    Atomics,
    /// `thread::spawn`/`thread::scope` confined to the work-stealing
    /// scheduler module, so every parallel code path shares one panic and
    /// determinism policy.
    ParallelismSeam,
    /// Crate dependencies must respect the layer order and add no new
    /// external dependencies.
    Layering,
    /// Inter-procedural: a panic site (assert, slice index, unwrap) is
    /// reachable from a public entry point (`Database::execute`,
    /// `serve_connection`, ...) through the workspace call graph. Reported
    /// at the panic site with the shortest call path, ratcheted per file.
    PanicReachability,
    /// Inter-procedural: the held-while-acquiring graph over the
    /// `els_core::sync` lock classes must agree with the committed
    /// `LOCK_ORDER` total order; a cycle is a hard error.
    LockOrder,
    /// Numeric-cast and float-comparison discipline in els-core/els-exec:
    /// no silent narrowing `as` casts, no unguarded float-to-int rounding
    /// casts, no float `==`/`!=` outside `els_core::float`, no silent
    /// numeric-literal `unwrap_or` defaults in the estimator path.
    NumericDiscipline,
}

impl Lint {
    /// All lints, in report order.
    pub fn all() -> [Lint; 9] {
        [
            Lint::PanicFreedom,
            Lint::Determinism,
            Lint::MetricsIo,
            Lint::Atomics,
            Lint::ParallelismSeam,
            Lint::Layering,
            Lint::PanicReachability,
            Lint::LockOrder,
            Lint::NumericDiscipline,
        ]
    }

    /// The name used in reports, baselines and suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            Lint::PanicFreedom => "panic-freedom",
            Lint::Determinism => "determinism",
            Lint::MetricsIo => "metrics-only-io",
            Lint::Atomics => "atomics-discipline",
            Lint::ParallelismSeam => "parallelism-seam",
            Lint::Layering => "layering",
            Lint::PanicReachability => "panic-reachability",
            Lint::LockOrder => "lock-order",
            Lint::NumericDiscipline => "numeric-discipline",
        }
    }

    /// Parse a suppression-comment lint name.
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::all().into_iter().find(|l| l.name() == name)
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation.
    pub message: String,
    /// Set by the driver when a justified suppression covers this line.
    pub suppressed: bool,
}

/// Files where `Ordering::Relaxed` is legitimate: monotonic counters and
/// the morsel dispenser, where no other memory is published through the
/// atomic. Everything else must spell out an ordering and justify it.
const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/exec/src/metrics.rs",
    "crates/exec/src/scheduler.rs",
    "crates/exec/src/vectorized.rs",
    "crates/catalog/src/feedback.rs",
    "crates/optimizer/src/plan_cache.rs",
];

/// The library modules allowed to spawn threads: the work-stealing
/// scheduler and the server's acceptor/worker pool. Confining parallelism
/// to named seams gives every parallel code path a written panic policy
/// (the scheduler re-raises so batch results never truncate; the server
/// pool isolates so one connection's panic never kills the pool) and
/// keeps each determinism argument in one reviewable place.
const THREAD_ALLOWLIST: &[&str] = &["crates/exec/src/scheduler.rs", "crates/server/src/pool.rs"];

/// The only module allowed to read wall clocks. PR 3 made Observations
/// compare timing-blind; keeping clock reads behind one seam keeps it so.
const CLOCK_ALLOWLIST: &[&str] = &["crates/exec/src/timing.rs"];

/// Keywords that can directly precede a `[` that is *not* an index
/// expression (slice patterns, array types in expression position, ...).
/// Shared with the panic-reachability pass, which applies the same index
/// heuristic workspace-wide.
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move", "as",
    "const", "static", "dyn", "impl", "for", "where", "while", "loop", "use", "pub", "fn", "enum",
    "struct", "trait", "type", "unsafe", "crate", "super", "mod", "extern", "box", "await",
    "async", "yield",
];

/// Run every token pass over one file.
pub fn run_token_passes(file: &SourceFile, out: &mut Vec<Violation>) {
    let code = file.code_indices();
    let toks = &file.tokens;
    let at = |ci: usize| -> Option<&Token> { code.get(ci).map(|&i| &toks[i]) };
    let violation = |lint: Lint, tok: &Token, message: String| Violation {
        lint,
        file: file.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        suppressed: false,
    };
    let in_core = file.rel_path.starts_with("crates/core/");

    for ci in 0..code.len() {
        let tok = &toks[code[ci]];
        if tok.kind != TokenKind::Ident {
            // Slice indexing, els-core only: `expr[...]` panics on
            // out-of-range and the estimator path must return typed errors
            // instead.
            if in_core && tok.kind == TokenKind::Punct('[') && ci > 0 {
                let indexable = match at(ci - 1) {
                    Some(p) if p.kind == TokenKind::Ident => {
                        !NON_INDEX_KEYWORDS.contains(&p.text.as_str())
                    }
                    Some(p) => matches!(p.kind, TokenKind::Punct(')') | TokenKind::Punct(']')),
                    None => false,
                };
                if indexable {
                    out.push(violation(
                        Lint::PanicFreedom,
                        tok,
                        "slice index in estimator path: use `.get()` and return a typed \
                         `ElsError` so degenerate inputs degrade instead of aborting"
                            .to_string(),
                    ));
                }
            }
            continue;
        }
        let prev_is_dot = ci > 0 && at(ci - 1).is_some_and(|p| p.kind == TokenKind::Punct('.'));
        let next_is = |kind: TokenKind| at(ci + 1).is_some_and(|n| n.kind == kind);

        // panic-freedom: `.unwrap()` / `.expect(` and aborting macros.
        if prev_is_dot
            && (tok.text == "unwrap" || tok.text == "expect")
            && next_is(TokenKind::Punct('('))
        {
            out.push(violation(
                Lint::PanicFreedom,
                tok,
                format!(
                    "`.{}()` in library code: return a typed error (or use the \
                     `els_core::sync` poison-policy helpers for locks)",
                    tok.text
                ),
            ));
        }
        if !prev_is_dot
            && matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
            && next_is(TokenKind::Punct('!'))
        {
            out.push(violation(
                Lint::PanicFreedom,
                tok,
                format!("`{}!` in library code: return a typed error instead", tok.text),
            ));
        }

        // determinism: clock reads outside the timing seam.
        if matches!(tok.text.as_str(), "Instant" | "SystemTime")
            && !CLOCK_ALLOWLIST.contains(&file.rel_path.as_str())
        {
            out.push(violation(
                Lint::Determinism,
                tok,
                format!(
                    "`{}` outside `els_exec::timing`: clock reads live behind the \
                     Stopwatch seam so differential tests stay timing-blind",
                    tok.text
                ),
            ));
        }

        // metrics-only I/O: stdio macros and process exits.
        if matches!(tok.text.as_str(), "println" | "eprintln" | "print" | "eprint" | "dbg")
            && next_is(TokenKind::Punct('!'))
        {
            out.push(violation(
                Lint::MetricsIo,
                tok,
                format!(
                    "`{}!` in library code: route output through `MetricsRegistry` \
                     (tooling crates els-bench/els-lint may print)",
                    tok.text
                ),
            ));
        }
        if matches!(tok.text.as_str(), "exit" | "abort")
            && ci >= 3
            && at(ci - 1).is_some_and(|p| p.kind == TokenKind::Punct(':'))
            && at(ci - 2).is_some_and(|p| p.kind == TokenKind::Punct(':'))
            && at(ci - 3).is_some_and(|p| p.kind == TokenKind::Ident && p.text == "process")
        {
            out.push(violation(
                Lint::MetricsIo,
                tok,
                format!("`process::{}` in library code: surface an error instead", tok.text),
            ));
        }

        // parallelism seam: thread spawns outside the scheduler module.
        if matches!(tok.text.as_str(), "spawn" | "scope")
            && ci >= 3
            && at(ci - 1).is_some_and(|p| p.kind == TokenKind::Punct(':'))
            && at(ci - 2).is_some_and(|p| p.kind == TokenKind::Punct(':'))
            && at(ci - 3).is_some_and(|p| p.kind == TokenKind::Ident && p.text == "thread")
            && !THREAD_ALLOWLIST.contains(&file.rel_path.as_str())
        {
            out.push(violation(
                Lint::ParallelismSeam,
                tok,
                format!(
                    "`thread::{}` outside the scheduler module: route parallel work \
                     through `els_exec::scheduler::run_tasks` so it shares the one \
                     panic/determinism seam",
                    tok.text
                ),
            ));
        }

        // atomics discipline: Relaxed outside the counter allowlist.
        if tok.text == "Relaxed" && !RELAXED_ALLOWLIST.contains(&file.rel_path.as_str()) {
            out.push(violation(
                Lint::Atomics,
                tok,
                "`Ordering::Relaxed` outside the counter allowlist: pick an ordering \
                 that publishes what the readers need, or extend the allowlist in review"
                    .to_string(),
            ));
        }
    }
}

/// The engine's layer order, lowest first. A library crate may depend only
/// on crates strictly earlier in this list (plus the vendored `rand` shim).
pub const LAYER_ORDER: &[&str] = &[
    "els-storage",
    "els-core",
    "els-catalog",
    "els-sql",
    "els-exec",
    "els-optimizer",
    "els",
    "els-server",
];

/// External dependencies library crates may use: the vendored std-only
/// `rand` shim. Everything else (including `proptest`/`criterion`) is
/// dev-only; the offline build has no registry, so a new name here means
/// someone is about to break the build.
const ALLOWED_EXTERNAL: &[&str] = &["rand"];

/// Check one library crate manifest. `crate_name` is the `els-*` package
/// the manifest belongs to; `rel_path` is the manifest's workspace-relative
/// path (used for reporting).
pub fn run_layering_pass(
    crate_name: &str,
    rel_path: &str,
    manifest: &str,
    out: &mut Vec<Violation>,
) {
    let Some(layer) = LAYER_ORDER.iter().position(|c| *c == crate_name) else {
        return;
    };
    let mut section = String::new();
    for (lineno, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section != "dependencies" || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `els-core.workspace = true` or `rand = { path = "..." }`.
        let dep = line.split(['=', '.', ' ']).next().unwrap_or("").trim();
        if dep.is_empty() {
            continue;
        }
        let mut push = |message: String| {
            out.push(Violation {
                lint: Lint::Layering,
                file: rel_path.to_string(),
                line: lineno as u32 + 1,
                col: 1,
                message,
                suppressed: false,
            })
        };
        match LAYER_ORDER.iter().position(|c| *c == dep) {
            Some(dep_layer) if dep_layer >= layer => push(format!(
                "`{crate_name}` depends on `{dep}`, which is not below it in the layer \
                 order ({})",
                LAYER_ORDER.join(" -> ")
            )),
            Some(_) => {}
            None if ALLOWED_EXTERNAL.contains(&dep) => {}
            None => push(format!(
                "`{crate_name}` adds external dependency `{dep}`: library crates are \
                 std + vendored shims only (offline build)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("crates/exec/src/x.rs", src);
        let mut out = Vec::new();
        run_token_passes(&f, &mut out);
        out
    }

    fn lint_core(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        run_token_passes(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_expect_and_aborting_macros_fire() {
        let v = lint_src("fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); todo!() }");
        let names: Vec<_> = v.iter().map(|v| v.message.clone()).collect();
        assert_eq!(v.len(), 4, "{names:?}");
        assert!(v.iter().all(|v| v.lint == Lint::PanicFreedom));
    }

    #[test]
    fn unwrap_or_and_own_expect_methods_do_not_fire() {
        let v = lint_src("fn f() { a.unwrap_or(0); a.unwrap_or_else(g); self.expect_token(t); }");
        assert_eq!(v, vec![]);
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_ignored() {
        let v = lint_src("#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }");
        assert_eq!(v, vec![]);
    }

    #[test]
    fn unwrap_in_comments_and_strings_is_ignored() {
        let v = lint_src(
            "//! let x = a.unwrap();\nfn f() { let s = \"b.unwrap()\"; let r = r#\"c.unwrap()\"#; }",
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn slice_index_fires_only_in_core() {
        let src = "fn f(v: &[f64], i: usize) -> f64 { v[i] }";
        assert_eq!(lint_src(src), vec![]);
        let v = lint_core(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::PanicFreedom);
    }

    #[test]
    fn non_index_brackets_do_not_fire_in_core() {
        let v = lint_core(
            "#[derive(Debug)]\nstruct S;\nfn f() { let a = [1, 2]; let b = vec![3]; \
             let [x, y] = a; let _: [u8; 2] = a; let _ = &a[..1]; }",
        );
        // `&a[..1]` is a real index expression and should fire; the rest not.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, Lint::PanicFreedom);
    }

    #[test]
    fn clock_reads_fire_outside_the_timing_module() {
        let v = lint_src("use std::time::Instant; fn f() { let t = Instant::now(); }");
        assert_eq!(v.iter().filter(|v| v.lint == Lint::Determinism).count(), 2);
        let f = SourceFile::parse("crates/exec/src/timing.rs", "fn f() { Instant::now(); }");
        let mut out = Vec::new();
        run_token_passes(&f, &mut out);
        assert_eq!(out, vec![]);
    }

    #[test]
    fn stdio_and_process_exit_fire() {
        let v = lint_src(
            "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); std::process::exit(1); }",
        );
        assert_eq!(v.iter().filter(|v| v.lint == Lint::MetricsIo).count(), 4);
    }

    #[test]
    fn relaxed_fires_outside_the_allowlist() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let v = lint_src(src); // exec/x.rs is not allowlisted
        assert_eq!(v.iter().filter(|v| v.lint == Lint::Atomics).count(), 1);
        let f = SourceFile::parse("crates/exec/src/metrics.rs", src);
        let mut out = Vec::new();
        run_token_passes(&f, &mut out);
        assert_eq!(out, vec![]);
    }

    #[test]
    fn thread_spawns_fire_outside_the_scheduler_module() {
        let src = "fn f() { std::thread::spawn(|| {}); thread::scope(|s| { s.spawn(|| {}); }); }";
        let v = lint_src(src);
        assert_eq!(v.iter().filter(|v| v.lint == Lint::ParallelismSeam).count(), 2, "{v:?}");
        let f = SourceFile::parse("crates/exec/src/scheduler.rs", src);
        let mut out = Vec::new();
        run_token_passes(&f, &mut out);
        assert_eq!(out.iter().filter(|v| v.lint == Lint::ParallelismSeam).count(), 0);
        // Method calls named `spawn` (not through `thread::`) are fine.
        let v = lint_src("fn f(s: &Scope) { s.spawn(|| {}); pool.scope(|x| x); }");
        assert_eq!(v, vec![]);
    }

    #[test]
    fn layering_catches_inversions_and_new_external_deps() {
        let manifest = "[package]\nname = \"els-core\"\n[dependencies]\nels-storage.workspace = true\nels-exec.workspace = true\nserde = \"1\"\nrand.workspace = true\n[dev-dependencies]\nproptest.workspace = true\n";
        let mut out = Vec::new();
        run_layering_pass("els-core", "crates/core/Cargo.toml", manifest, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("els-exec"));
        assert!(out[1].message.contains("serde"));
    }

    #[test]
    fn layering_accepts_the_legal_shape() {
        let manifest =
            "[dependencies]\nels-storage.workspace = true\nels-core.workspace = true\nrand.workspace = true\n";
        let mut out = Vec::new();
        run_layering_pass("els-catalog", "crates/catalog/Cargo.toml", manifest, &mut out);
        assert_eq!(out, vec![]);
    }
}
