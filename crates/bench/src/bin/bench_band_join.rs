//! Band-join (inequality join) estimation benchmark.
//!
//! The equi-join benches measure the paper's selectivity rules on the
//! predicates Section 4 was written for; this one measures the histogram
//! inequality extension on the predicates it was *not*: column-vs-column
//! range comparisons (`r.k < s.k`), executed by the sort + binary-search
//! band-join operator. Three data families stress the estimator from
//! different directions:
//!
//! * **uniform** — independent uniform keys on a shared domain, where the
//!   histogram-fraction model is near-exact (plus one equi-join query with
//!   an inequality *residual*).
//! * **zipf** — θ=1.0 Zipf keys on both sides: the per-bucket uniformity
//!   assumption is violated, the histogram's skew capture is what keeps
//!   the q-error bounded.
//! * **offset** — sequential keys with the inner shifted by half a table
//!   (correlated offsets): the band fraction is far from the coin-flip
//!   ½ a moment-only model would guess, so only the histograms get it.
//!
//! Three contenders estimate every query: **ELS** (histogram fractions),
//! the **UES bound** (cross-product fallback — a band join has no
//! per-key bound, so the claim it must keep is *never under-estimate*),
//! and the **No-estimates** baseline. Per contender we pool the
//! join-operator q-errors from `explain_analyze` (truth by execution).
//!
//! In `--smoke` mode (scaled-down tables, no JSON) the run exits non-zero
//! and prints a `REGRESSION` line — grepped by `scripts/check.sh` — if the
//! pooled ELS median q-error exceeds [`BAND_ELS_MEDIAN_Q_LIMIT`], if the
//! UES bound under-estimates any band join, or if any two contenders
//! disagree on an executed result count. The full run writes
//! `BENCH_band_join.json`.

// Tooling layer: printing tables and exiting non-zero is this binary's
// job, so the workspace-wide clippy.toml bans do not apply here.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;

use els::engine::Database;
use els_bench::workload::quantile;
use els_optimizer::{EstimatorPreset, EstimatorStrategy, OptimizerOptions};
use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els_storage::Table;

/// The pinned smoke-gate threshold on the pooled ELS median q-error over
/// the band-join families. Inequality estimates lean on histogram
/// resolution, so the bar is looser than the equi-join gate's 2.0 — but
/// anything above this is an estimator regression, not noise.
const BAND_ELS_MEDIAN_Q_LIMIT: f64 = 4.0;

/// One band-join data family: a generator and the queries asked over it.
struct Family {
    name: &'static str,
    make: fn(u64, usize) -> Vec<Table>,
    queries: &'static [&'static str],
}

/// Independent uniform keys over a shared `0..rows` domain.
fn uniform_tables(seed: u64, rows: usize) -> Vec<Table> {
    let hi = rows as i64 - 1;
    let key = |s| {
        TableSpec::new(if s % 2 == 1 { "r" } else { "s" }, rows)
            .column(ColumnSpec::new("k", Distribution::UniformInt { lo: 0, hi }))
            .column(ColumnSpec::new("p", Distribution::UniformInt { lo: 0, hi: 9 }))
            .generate(s)
    };
    vec![key(seed * 2 + 1), key(seed * 2 + 2)]
}

/// Zipf(θ=1.0) keys on both sides: heavy head, long tail.
fn zipf_tables(seed: u64, rows: usize) -> Vec<Table> {
    let n = (rows / 2).max(8) as u64;
    let key = |s| {
        TableSpec::new(if s % 2 == 1 { "r" } else { "s" }, rows)
            .column(ColumnSpec::new("k", Distribution::ZipfInt { n, theta: 1.0, start: 0 }))
            .column(ColumnSpec::new("p", Distribution::UniformInt { lo: 0, hi: 9 }))
            .generate(s)
    };
    vec![key(seed * 2 + 1), key(seed * 2 + 2)]
}

/// Sequential keys with the inner shifted by half a table — correlated
/// offsets, so the true band fraction is far from ½.
fn offset_tables(seed: u64, rows: usize) -> Vec<Table> {
    let make = |name, start, s| {
        TableSpec::new(name, rows)
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start }))
            .column(ColumnSpec::new("p", Distribution::UniformInt { lo: 0, hi: 9 }))
            .generate(s)
    };
    vec![make("r", 0, seed * 2 + 1), make("s", rows as i64 / 2, seed * 2 + 2)]
}

const FAMILIES: [Family; 3] = [
    Family {
        name: "uniform",
        make: uniform_tables,
        queries: &[
            "SELECT COUNT(*) FROM r, s WHERE r.k < s.k",
            "SELECT COUNT(*) FROM r, s WHERE r.k >= s.k",
            // Equi-join with an inequality residual: the range predicate
            // rides on a keyed join instead of the band operator.
            "SELECT COUNT(*) FROM r, s WHERE r.k = s.k AND r.p <= s.p",
        ],
    },
    Family {
        name: "zipf",
        make: zipf_tables,
        queries: &[
            "SELECT COUNT(*) FROM r, s WHERE r.k <= s.k",
            "SELECT COUNT(*) FROM r, s WHERE r.k > s.k",
        ],
    },
    Family {
        name: "offset",
        make: offset_tables,
        queries: &[
            "SELECT COUNT(*) FROM r, s WHERE r.k < s.k",
            "SELECT COUNT(*) FROM r, s WHERE r.k >= s.k",
        ],
    },
];

/// The estimation contenders. All plan through the ELS preset's plan
/// space; only the selectivity strategy differs.
const CONTENDERS: [(&str, EstimatorStrategy); 3] = [
    ("ELS", EstimatorStrategy::Els),
    ("UES bound", EstimatorStrategy::UpperBound),
    ("No-estimates", EstimatorStrategy::NoEstimates),
];

/// Pooled per-contender, per-family measurements.
#[derive(Default, Clone)]
struct Cell {
    rule: String,
    qerrs: Vec<f64>,
    underestimates: usize,
    /// Join operators executed by the band operator (RANGE method).
    range_plans: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rows, trials) = if smoke { (240usize, 2u64) } else { (1_200, 6) };
    println!(
        "band join: {} families x {} contenders, {rows} rows/table, {trials} seed(s){}",
        FAMILIES.len(),
        CONTENDERS.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut regression = false;
    // cells[family][contender]
    let mut cells: Vec<Vec<Cell>> = vec![vec![Cell::default(); CONTENDERS.len()]; FAMILIES.len()];

    for (fi, family) in FAMILIES.iter().enumerate() {
        for seed in 0..trials {
            let tables = (family.make)(seed, rows);
            // truth[query] from the first contender: estimation strategy
            // must never change the executed result.
            let mut truth: Vec<u64> = Vec::new();
            for (ci, &(label, strategy)) in CONTENDERS.iter().enumerate() {
                let mut db = Database::new();
                db.set_optimizer_options(OptimizerOptions::preset(EstimatorPreset::Els));
                db.set_strategy(strategy);
                for t in &tables {
                    db.register(t.clone()).expect("band fixture tables register");
                }
                for (qi, sql) in family.queries.iter().enumerate() {
                    let report = db.explain_analyze(sql).expect("band workload queries execute");
                    let cell = &mut cells[fi][ci];
                    cell.rule = report.rule.clone();
                    for op in report.join_operators() {
                        cell.qerrs.push(op.q_error());
                        if op.estimated < op.actual as f64 {
                            cell.underestimates += 1;
                        }
                        if op.label.contains("RANGE") {
                            cell.range_plans += 1;
                        }
                    }
                    if ci == 0 {
                        truth.push(report.result_rows);
                    } else if report.result_rows != truth[qi] {
                        regression = true;
                        println!(
                            "BAND RESULT REGRESSION: {label} returned {} rows on \
                             `{sql}` ({} seed {seed}), {} returned {}",
                            report.result_rows, family.name, CONTENDERS[0].0, truth[qi]
                        );
                    }
                }
            }
        }
    }

    // Per-family table + JSON rows.
    let mut json = String::from("{\n  \"bench\": \"band_join\",\n");
    let _ = write!(
        json,
        "  \"smoke\": {smoke}, \"rows_per_table\": {rows}, \"trials\": {trials}, \
         \"els_median_q_limit\": {BAND_ELS_MEDIAN_Q_LIMIT},\n  \"results\": [\n"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (fi, family) in FAMILIES.iter().enumerate() {
        for (ci, &(label, _)) in CONTENDERS.iter().enumerate() {
            let cell = &mut cells[fi][ci];
            cell.qerrs.sort_by(f64::total_cmp);
            let (median_q, p95_q, max_q) = if cell.qerrs.is_empty() {
                (1.0, 1.0, 1.0)
            } else {
                (
                    quantile(&cell.qerrs, 0.5),
                    quantile(&cell.qerrs, 0.95),
                    *cell.qerrs.last().unwrap(),
                )
            };
            println!(
                "{:<8} {:<13} rule {:<11} samples {:>2}  median q {:>9.2}  p95 q {:>9.2}  \
                 max q {:>9.2}  under-est {:>2}  range plans {:>2}",
                family.name,
                label,
                cell.rule,
                cell.qerrs.len(),
                median_q,
                p95_q,
                max_q,
                cell.underestimates,
                cell.range_plans
            );
            let num = |v: f64| {
                if v.is_finite() {
                    format!("{v:.4}")
                } else {
                    "\"inf\"".to_owned()
                }
            };
            json_rows.push(format!(
                "    {{\"family\": \"{}\", \"label\": \"{label}\", \"rule\": \"{}\", \
                 \"samples\": {}, \"median_q\": {}, \"p95_q\": {}, \"max_q\": {}, \
                 \"underestimates\": {}, \"range_plans\": {}}}",
                family.name,
                cell.rule,
                cell.qerrs.len(),
                num(median_q),
                num(p95_q),
                num(max_q),
                cell.underestimates,
                cell.range_plans
            ));
        }
    }
    let _ = write!(json, "{}\n  ]\n}}\n", json_rows.join(",\n"));

    // Gates, pooled across families. The band operator must actually have
    // been exercised — a plan-space regression that stops choosing RANGE
    // would otherwise silently hollow out the accuracy numbers.
    let pool = |ci: usize| {
        let mut qs: Vec<f64> = cells.iter().flat_map(|f| f[ci].qerrs.iter().copied()).collect();
        qs.sort_by(f64::total_cmp);
        qs
    };
    let els_qs = pool(0);
    let els_median = quantile(&els_qs, 0.5);
    println!("pooled ELS band median q-error: {els_median:.2} (limit {BAND_ELS_MEDIAN_Q_LIMIT})");
    if !(els_median <= BAND_ELS_MEDIAN_Q_LIMIT) {
        regression = true;
        println!(
            "BAND ACCURACY REGRESSION: ELS median q-error {els_median:.2} exceeds the pinned \
             limit {BAND_ELS_MEDIAN_Q_LIMIT}"
        );
    }
    let ues_under: usize = cells.iter().map(|f| f[1].underestimates).sum();
    if ues_under > 0 {
        regression = true;
        println!(
            "BAND BOUND REGRESSION: UES bound under-estimated {ues_under} band join operator(s) \
             — not an upper bound"
        );
    }
    let els_range: usize = cells.iter().map(|f| f[0].range_plans).sum();
    if els_range == 0 {
        regression = true;
        println!("BAND PLAN REGRESSION: no query executed through the RANGE band-join operator");
    }

    if !smoke {
        std::fs::write("BENCH_band_join.json", &json).expect("write BENCH_band_join.json");
        println!("wrote BENCH_band_join.json");
    }
    if regression {
        println!("REGRESSION: band-join accuracy or bound gate failed");
        std::process::exit(1);
    }
}
