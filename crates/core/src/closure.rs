//! Predicate transitive closure (Algorithm ELS, Step 2).
//!
//! Equality predicates imply further predicates by transitivity. The paper
//! lists five variations (Section 4, rules 2.a–2.e):
//!
//! * **a.** join + join → join: `(R1.x = R2.y) ∧ (R2.y = R3.z) ⇒ (R1.x = R3.z)`
//! * **b.** join + join → local: `(R1.x = R2.y) ∧ (R1.x = R2.w) ⇒ (R2.y = R2.w)`
//! * **c.** local + local → local: `(R1.x = R1.y) ∧ (R1.y = R1.z) ⇒ (R1.x = R1.z)`
//! * **d.** join + local → join: `(R1.x = R2.y) ∧ (R1.x = R1.v) ⇒ (R2.y = R1.v)`
//! * **e.** join + local-constant → local-constant:
//!   `(R1.x = R2.y) ∧ (R1.x op c) ⇒ (R2.y op c)`
//!
//! Rules a–d together say exactly: *within a j-equivalence class, every pair
//! of columns is linked by an (implied) equality*; rule e says every
//! constant comparison on a class member applies to every other member.
//! [`transitive_closure`] computes the closure directly from the equivalence
//! classes in one pass, which is the production implementation.
//! [`pairwise_fixpoint`] is a literal rule-by-rule reference implementation
//! used to cross-check it (the two are property-tested to agree).

use crate::equivalence::EquivalenceClasses;
use crate::predicate::{dedup_predicates, Predicate};

/// Compute the full transitive closure of `predicates`.
///
/// The result contains the (deduplicated) input predicates first, followed
/// by the implied predicates in deterministic order. Constant comparisons
/// are propagated to every j-equivalent column (rule e), and every pair of
/// j-equivalent columns is linked by an equality predicate (rules a–d).
/// # Examples
///
/// The paper's Example 1a: two join predicates imply a third.
///
/// ```
/// use els_core::{closure::transitive_closure, ColumnRef, Predicate};
/// let x = ColumnRef::new(0, 0);
/// let y = ColumnRef::new(1, 0);
/// let z = ColumnRef::new(2, 0);
/// let closed = transitive_closure(&[Predicate::col_eq(x, y), Predicate::col_eq(y, z)]);
/// assert!(closed.contains(&Predicate::col_eq(x, z)));
/// ```
pub fn transitive_closure(predicates: &[Predicate]) -> Vec<Predicate> {
    let mut out = dedup_predicates(predicates);
    let classes = EquivalenceClasses::from_predicates(&out);

    // Rules a–d: all pairs within each class.
    let mut implied: Vec<Predicate> = Vec::new();
    for (_, members) in classes.iter() {
        for (i, &a) in members.iter().enumerate() {
            for &b in members.iter().skip(i + 1) {
                implied.push(Predicate::col_eq(a, b));
            }
        }
    }

    // Rule e: propagate constant comparisons across each class.
    for p in out.clone() {
        if let Predicate::LocalCmp { column, op, value } = p {
            if let Some(class) = classes.class_of(column) {
                for &other in classes.members(class) {
                    if other != column {
                        implied.push(Predicate::LocalCmp {
                            column: other,
                            op,
                            value: value.clone(),
                        });
                    }
                }
            }
        }
    }

    out.extend(implied);
    dedup_predicates(&out)
}

/// Literal pairwise fixpoint over the five implication rules — a reference
/// implementation for testing [`transitive_closure`]. Quadratic per round;
/// do not use on large predicate sets.
pub fn pairwise_fixpoint(predicates: &[Predicate]) -> Vec<Predicate> {
    let mut set = dedup_predicates(predicates);
    loop {
        let mut new: Vec<Predicate> = Vec::new();
        for (i, a) in set.iter().enumerate() {
            for (j, b) in set.iter().enumerate() {
                if i == j {
                    continue;
                }
                if let Some(p) = imply(a, b) {
                    if !set.contains(&p) && !new.contains(&p) {
                        new.push(p);
                    }
                }
            }
        }
        if new.is_empty() {
            return set;
        }
        set.extend(new);
    }
}

/// Apply whichever of rules a–e fires for the ordered pair `(p, q)`.
fn imply(p: &Predicate, q: &Predicate) -> Option<Predicate> {
    use Predicate::{JoinEq, LocalCmp, LocalColEq};
    // Column-equality + column-equality sharing a column (rules a, b, c, d):
    // the shared column links the other two ends.
    if let (Some((a1, a2)), Some((b1, b2))) = (eq_sides(p), eq_sides(q)) {
        for (shared, x, y) in
            [(a1 == b1, a2, b2), (a1 == b2, a2, b1), (a2 == b1, a1, b2), (a2 == b2, a1, b1)]
        {
            if shared && x != y {
                return Some(Predicate::col_eq(x, y));
            }
        }
        return None;
    }
    // Rule e: column equality + constant comparison.
    match (p, q) {
        (JoinEq { left, right } | LocalColEq { left, right }, LocalCmp { column, op, value }) => {
            if column == left {
                Some(Predicate::LocalCmp { column: *right, op: *op, value: value.clone() })
            } else if column == right {
                Some(Predicate::LocalCmp { column: *left, op: *op, value: value.clone() })
            } else {
                None
            }
        }
        _ => None,
    }
}

fn eq_sides(p: &Predicate) -> Option<(crate::ids::ColumnRef, crate::ids::ColumnRef)> {
    match p {
        Predicate::LocalColEq { left, right } | Predicate::JoinEq { left, right } => {
            Some((*left, *right))
        }
        // `IS [NOT] NULL` never participates in closure: a satisfied
        // column equality already implies both sides are non-NULL, and
        // propagating nullness tests adds nothing the estimator uses.
        // Range joins are inequalities — they never merge classes.
        Predicate::LocalCmp { .. } | Predicate::IsNull { .. } | Predicate::JoinRange { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ColumnRef;
    use crate::predicate::CmpOp;

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    fn as_sorted_strings(ps: &[Predicate]) -> Vec<String> {
        let mut v: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn rule_a_join_join_implies_join() {
        // Example 1a: (R0.x = R1.y) ∧ (R1.y = R2.z) ⇒ (R0.x = R2.z).
        let input = vec![Predicate::col_eq(c(0, 0), c(1, 0)), Predicate::col_eq(c(1, 0), c(2, 0))];
        let out = transitive_closure(&input);
        assert!(out.contains(&Predicate::col_eq(c(0, 0), c(2, 0))));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn rule_b_join_join_implies_local() {
        // (R0.x = R1.y) ∧ (R0.x = R1.w) ⇒ (R1.y = R1.w).
        let input = vec![Predicate::col_eq(c(0, 0), c(1, 0)), Predicate::col_eq(c(0, 0), c(1, 1))];
        let out = transitive_closure(&input);
        assert!(out.contains(&Predicate::col_eq(c(1, 0), c(1, 1))));
    }

    #[test]
    fn rule_c_local_local_implies_local() {
        let input = vec![Predicate::col_eq(c(0, 0), c(0, 1)), Predicate::col_eq(c(0, 1), c(0, 2))];
        let out = transitive_closure(&input);
        assert!(out.contains(&Predicate::col_eq(c(0, 0), c(0, 2))));
    }

    #[test]
    fn rule_d_join_local_implies_join() {
        // (R0.x = R1.y) ∧ (R0.x = R0.v) ⇒ (R1.y = R0.v).
        let input = vec![Predicate::col_eq(c(0, 0), c(1, 0)), Predicate::col_eq(c(0, 0), c(0, 1))];
        let out = transitive_closure(&input);
        assert!(out.contains(&Predicate::col_eq(c(0, 1), c(1, 0))));
    }

    #[test]
    fn rule_e_propagates_constant_comparisons() {
        // (R0.x = R1.y) ∧ (R0.x < 100) ⇒ (R1.y < 100).
        let input = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
        ];
        let out = transitive_closure(&input);
        assert!(out.contains(&Predicate::local_cmp(c(1, 0), CmpOp::Lt, 100i64)));
    }

    #[test]
    fn section8_query_closure() {
        // s = m AND m = b AND b = g AND s < 100 over tables 0..4 (S, M, B, G)
        // must imply s=b, s=g, m=g and the filters m<100, b<100, g<100.
        let input = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
            Predicate::col_eq(c(2, 0), c(3, 0)),
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
        ];
        let out = transitive_closure(&input);
        // 6 join predicates (all pairs of 4 columns) + 4 local filters.
        assert_eq!(out.len(), 10);
        for (a, b) in [(0, 2), (0, 3), (1, 3)] {
            assert!(out.contains(&Predicate::col_eq(c(a, 0), c(b, 0))), "missing join {a}-{b}");
        }
        for t in 1..4 {
            assert!(
                out.contains(&Predicate::local_cmp(c(t, 0), CmpOp::Lt, 100i64)),
                "missing filter on table {t}"
            );
        }
    }

    #[test]
    fn closure_is_idempotent() {
        let input = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
        ];
        let once = transitive_closure(&input);
        let twice = transitive_closure(&once);
        assert_eq!(as_sorted_strings(&once), as_sorted_strings(&twice));
    }

    #[test]
    fn closure_matches_pairwise_fixpoint_on_section8() {
        let input = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
            Predicate::col_eq(c(2, 0), c(3, 0)),
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
        ];
        assert_eq!(
            as_sorted_strings(&transitive_closure(&input)),
            as_sorted_strings(&pairwise_fixpoint(&input))
        );
    }

    #[test]
    fn unrelated_predicates_pass_through() {
        let input = vec![
            Predicate::local_cmp(c(0, 0), CmpOp::Gt, 5i64),
            Predicate::col_eq(c(1, 0), c(2, 0)),
        ];
        let out = transitive_closure(&input);
        assert_eq!(as_sorted_strings(&out), as_sorted_strings(&input));
    }

    #[test]
    fn duplicate_inputs_are_removed() {
        let p = Predicate::local_cmp(c(0, 0), CmpOp::Gt, 500i64);
        let out = transitive_closure(&[p.clone(), p.clone()]);
        assert_eq!(out.len(), 1);
    }

    proptest::proptest! {
        /// The class-based closure and the literal pairwise fixpoint agree on
        /// arbitrary small predicate sets.
        #[test]
        fn closure_equals_fixpoint(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut preds = Vec::new();
            for _ in 0..rng.gen_range(1..7) {
                let a = c(rng.gen_range(0..3), rng.gen_range(0..2));
                if rng.gen_bool(0.3) {
                    preds.push(Predicate::local_cmp(
                        a,
                        *[CmpOp::Eq, CmpOp::Lt, CmpOp::Gt].get(rng.gen_range(0..3usize)).unwrap(),
                        rng.gen_range(0i64..100),
                    ));
                } else {
                    let b = c(rng.gen_range(0..3), rng.gen_range(0..2));
                    if a != b {
                        preds.push(Predicate::col_eq(a, b));
                    }
                }
            }
            proptest::prop_assert_eq!(
                as_sorted_strings(&transitive_closure(&preds)),
                as_sorted_strings(&pairwise_fixpoint(&preds))
            );
        }
    }
}
