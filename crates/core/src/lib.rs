//! # els-core — Algorithm ELS
//!
//! Faithful implementation of **Algorithm ELS** (*Equivalence and Largest
//! Selectivity*) from:
//!
//! > Arun Swami and K. Bernhard Schiefer. *On the Estimation of Join Result
//! > Sizes.* EDBT 1994.
//!
//! Algorithm ELS incrementally estimates the result sizes of multi-way joins
//! for a query optimizer. Its six steps (paper, Section 4) map onto the
//! modules of this crate:
//!
//! | Step | Paper | Module |
//! |---|---|---|
//! | 1 | deduplicate predicates, build equivalence classes | [`predicate`], [`equivalence`] |
//! | 2 | predicate transitive closure (five implication rules) | [`closure`] |
//! | 3 | local-predicate selectivities (incl. multiple predicates per column) | [`selectivity`] |
//! | 4 | effective table/column cardinalities after local predicates (urn model) | [`local_effects`], [`urn`] |
//! | 5 | join selectivities, incl. j-equivalent columns in a single table | [`join_sel`], [`same_table`] |
//! | 6 | incremental result sizes with rule **LS** (largest selectivity) | [`estimator`], [`rules`] |
//!
//! The crate also implements the *incorrect* alternatives the paper compares
//! against — the multiplicative rule **M** of System R [13], the smallest
//! selectivity rule **SS**, the representative-selectivity proposal, and the
//! "standard" pre-processing that ignores the effect of local predicates on
//! join-column cardinalities — so that the paper's experiments can be
//! replayed. Closed-form ground truth under the paper's model assumptions
//! (Equations 1–3) lives in [`exact`].
//!
//! # Model assumptions
//!
//! As in the paper (Section 2), estimates assume *independence* between join
//! columns in different equivalence classes, *uniformity* of values within
//! join columns, and *containment* of the smaller join-column domain in the
//! larger. Local predicates may use arbitrary distribution information via
//! the [`selectivity::SelectivityOracle`] hook.
//!
//! # Quickstart
//!
//! Reproduce the paper's Example 1b / 2 / 3 (three tables, one equivalence
//! class):
//!
//! ```
//! use els_core::prelude::*;
//!
//! // ||R1||=100, ||R2||=1000, ||R3||=1000; d_x=10, d_y=100, d_z=1000.
//! let stats = QueryStatistics::new(vec![
//!     TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(10.0)]),
//!     TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(100.0)]),
//!     TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(1000.0)]),
//! ]);
//! let predicates = vec![
//!     Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)), // R1.x = R2.y
//!     Predicate::join_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)), // R2.y = R3.z
//! ];
//!
//! let els = Els::prepare(&predicates, &stats, &ElsOptions::default()).unwrap();
//!
//! // Join R2 with R3 first, then R1 — the order of the paper's Example 2/3.
//! let s0 = els.initial_state(1).unwrap();
//! let s1 = els.join(&s0, 2).unwrap();
//! assert_eq!(s1.cardinality().round(), 1000.0);       // ||R2 ⋈ R3||
//! let s2 = els.join(&s1, 0).unwrap();
//! assert_eq!(s2.cardinality().round(), 1000.0);       // correct (Rule LS)
//!
//! // Rule M on the same join order dramatically underestimates (Example 2).
//! let m = Els::prepare(&predicates, &stats,
//!     &ElsOptions::default().with_rule(SelectivityRule::Multiplicative)).unwrap();
//! let m2 = m.join(&m.join(&m.initial_state(1).unwrap(), 2).unwrap(), 0).unwrap();
//! assert_eq!(m2.cardinality().round(), 1.0);
//! ```

// Clippy-level twin of the els-lint panic-freedom and metrics-only-io
// passes (scripts/check.sh runs clippy with `-D warnings`, so these warn
// levels are bans on non-test library code).
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)
)]

pub mod algorithm;
pub mod cardinality;
pub mod closure;
pub mod correction;
pub mod equivalence;
pub mod error;
pub mod error_model;
pub mod estimator;
pub mod exact;
pub mod explain;
pub mod float;
pub mod ids;
pub mod join_sel;
pub mod local_effects;
pub mod predicate;
pub mod rules;
pub mod same_table;
pub mod selectivity;
pub mod stats;
pub mod sync;
pub mod urn;

pub use algorithm::{Els, ElsOptions, Preprocessing};
pub use cardinality::{CardinalityEstimator, NoEstimatesEstimator, UpperBoundEstimator};
pub use correction::{scan_fingerprint, CorrectionSource, NoCorrections};
pub use error::{ElsError, ElsResult};
pub use error_model::q_error;
pub use estimator::{JoinState, PreparedQuery};
pub use explain::EstimationReport;
pub use ids::{ClassId, ColumnRef, TableId};
pub use predicate::{CmpOp, Predicate};
pub use rules::SelectivityRule;
pub use stats::{ColumnStatistics, QueryStatistics, TableStatistics};

/// One-stop imports for typical users.
pub mod prelude {
    pub use crate::algorithm::{Els, ElsOptions, Preprocessing};
    pub use crate::cardinality::{CardinalityEstimator, NoEstimatesEstimator, UpperBoundEstimator};
    pub use crate::error::{ElsError, ElsResult};
    pub use crate::estimator::JoinState;
    pub use crate::ids::{ColumnRef, TableId};
    pub use crate::predicate::{CmpOp, Predicate};
    pub use crate::rules::SelectivityRule;
    pub use crate::stats::{ColumnStatistics, QueryStatistics, TableStatistics};
    pub use els_storage::Value;
}
