//! Random workload generation for estimator-quality studies.
//!
//! Produces `(catalog, query)` pairs over seeded synthetic data: chain and
//! star join shapes with optional local filters, small enough that ground
//! truth can be obtained by executing the query. Used by the q-error study
//! (experiment F9) and reusable from tests.

use els_catalog::collect::CollectOptions;
use els_catalog::Catalog;
use els_sql::{bind, parse, BoundQuery};
use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The join shape of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `t0 ⋈ t1 ⋈ … ⋈ tn` on adjacent keys.
    Chain,
    /// `t0 ⋈ ti` for every i (t0 is the hub).
    Star,
}

/// Parameters of one random workload family.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of joined tables (>= 2).
    pub tables: usize,
    /// Join shape.
    pub shape: Shape,
    /// Probability that each table receives a range filter.
    pub filter_probability: f64,
    /// Rows per table are drawn from `min_rows..=max_rows`.
    pub min_rows: usize,
    /// Upper bound on rows per table.
    pub max_rows: usize,
    /// Zipf skew of join columns (0 = uniform-cyclic, the model-exact case).
    pub theta: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            tables: 3,
            shape: Shape::Chain,
            filter_probability: 0.5,
            min_rows: 50,
            max_rows: 400,
            theta: 0.0,
        }
    }
}

/// One generated instance: a catalog and a bound COUNT(*) query over it.
#[derive(Debug, Clone)]
pub struct WorkloadInstance {
    /// The catalog holding the generated tables.
    pub catalog: Catalog,
    /// The SQL text (for reports).
    pub sql: String,
    /// The bound query.
    pub bound: BoundQuery,
}

/// Generate one instance of the family, deterministically from `seed`.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> WorkloadInstance {
    assert!(spec.tables >= 2, "a join workload needs at least two tables");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut catalog = Catalog::new();

    // Per-table key domains 0..domain_i: containment holds by construction
    // (smaller domains are prefixes of larger ones), while differing
    // column cardinalities make the selectivity-choice rules diverge.
    let mut names = Vec::new();
    for i in 0..spec.tables {
        let rows = rng.gen_range(spec.min_rows..=spec.max_rows);
        let domain = rng.gen_range(8..64u64);
        let name = format!("w{i}");
        let key_dist = if spec.theta > 0.0 {
            Distribution::ZipfInt { n: domain, theta: spec.theta, start: 0 }
        } else {
            Distribution::CycleInt { modulus: domain.min(rows as u64), start: 0 }
        };
        catalog
            .register(
                TableSpec::new(&name, rows)
                    .column(ColumnSpec::new("k", key_dist))
                    .column(ColumnSpec::new("f", Distribution::UniformInt { lo: 0, hi: 99 }))
                    .generate(seed.wrapping_mul(31).wrapping_add(i as u64)),
                &CollectOptions::default(),
            )
            .expect("fresh catalog accepts generated tables");
        names.push(name);
    }

    let mut conjuncts: Vec<String> = Vec::new();
    match spec.shape {
        Shape::Chain => {
            for i in 1..spec.tables {
                conjuncts.push(format!("{}.k = {}.k", names[i - 1], names[i]));
            }
        }
        Shape::Star => {
            for i in 1..spec.tables {
                conjuncts.push(format!("{}.k = {}.k", names[0], names[i]));
            }
        }
    }
    for name in &names {
        if rng.gen::<f64>() < spec.filter_probability {
            let cut = rng.gen_range(5..95);
            conjuncts.push(format!("{name}.f < {cut}"));
        }
    }
    let sql =
        format!("SELECT COUNT(*) FROM {} WHERE {}", names.join(", "), conjuncts.join(" AND "));
    let bound = bind(&parse(&sql).expect("generator emits valid SQL"), &catalog)
        .expect("generator emits bindable SQL");
    WorkloadInstance { catalog, sql, bound }
}

/// The q-error of an estimate against a truth: `max(est/true, true/est)`,
/// with both sides floored at 1 tuple so empty results stay finite. q = 1
/// is perfect; q grows symmetrically for over- and under-estimation.
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    // Canonical definition lives in the core crate (shared with
    // `explain_analyze` and the metrics registry).
    els_core::q_error(estimate, truth)
}

/// Quantiles of a sample (p in `[0, 1]`, nearest-rank).
pub fn quantile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        let a = generate(&spec, 7);
        let b = generate(&spec, 7);
        assert_eq!(a.sql, b.sql);
        let c = generate(&spec, 8);
        assert_ne!(a.sql, c.sql);
    }

    #[test]
    fn shapes_produce_expected_join_edges() {
        let chain = generate(&WorkloadSpec { tables: 4, ..Default::default() }, 1);
        assert!(chain.sql.contains("w0.k = w1.k"));
        assert!(chain.sql.contains("w2.k = w3.k"));
        let star =
            generate(&WorkloadSpec { tables: 4, shape: Shape::Star, ..Default::default() }, 1);
        assert!(star.sql.contains("w0.k = w1.k"));
        assert!(star.sql.contains("w0.k = w3.k"));
        assert!(!star.sql.contains("w1.k = w2.k"));
    }

    #[test]
    fn instances_execute_end_to_end() {
        for seed in 0..5 {
            let inst = generate(&WorkloadSpec::default(), seed);
            let tables = els_optimizer::bound_query_tables(&inst.bound, &inst.catalog).unwrap();
            let optimized = els_optimizer::optimize_bound(
                &inst.bound,
                &inst.catalog,
                &els_optimizer::OptimizerOptions::default(),
            )
            .unwrap();
            let out = els_exec::execute_plan(&optimized.plan, &tables).unwrap();
            // Sanity: finite result, metrics populated.
            assert!(out.metrics.tuples_scanned > 0, "seed {seed}");
        }
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        // Zero truth stays finite.
        assert_eq!(q_error(5.0, 0.0), 5.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert!(quantile(&[], 0.5).is_nan());
    }
}
