//! Engine throughput: single-shot serial baseline vs the concurrent
//! cache-fronted engine, on the mixed-depth Section 8 workload.
//!
//! Three measured phases, all over identical queries and data:
//!
//! 1. **serial uncached** — one thread, plan cache disabled: every query
//!    pays parse + bind + optimize + execute. This is the engine the seed
//!    shipped (and the "serial" of the headline speedup).
//! 2. **serial cached** — one thread, warm plan cache: the second replay of
//!    the identical workload; used to verify the ≥90% hit-rate target and
//!    that cache hits skip `enumerate()` entirely.
//! 3. **parallel cached** — 8 scoped threads sharing one engine and its
//!    cache.
//!
//! Writes `BENCH_engine_throughput.json` and prints a summary. Run with
//! `cargo run --release -p els-bench --bin bench_engine_throughput`.

// Tooling/timing layer: measuring wall clocks (and exiting non-zero) is
// this crate's job, so the workspace-wide `disallowed-methods` bans from
// clippy.toml do not apply here.
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;

use els_bench::accuracy::{
    accuracy_json, feedback_json, preset_accuracy, preset_feedback_accuracy,
};
use els_bench::bakeoff::{bakeoff_json, bakeoff_regressions, estimator_bakeoff};
use els_bench::driver::{
    replay_parallel, replay_serial, section8_engine, section8_throughput_workload, Replay,
};
use els_exec::metrics::enumerations;
use els_storage::datagen::starburst_experiment_tables;

const THREADS: usize = 8;
const REPEATS: usize = 2;

fn json_phase(out: &mut String, key: &str, replay: &Replay) {
    let _ = write!(
        out,
        "  \"{key}\": {{ \"queries\": {}, \"seconds\": {:.4}, \"qps\": {:.2}, \
         \"latency_p50_ms\": {:.3}, \"latency_p95_ms\": {:.3} }},\n",
        replay.queries,
        replay.elapsed.as_secs_f64(),
        replay.qps(),
        replay.latency_percentile(50.0).as_secs_f64() * 1e3,
        replay.latency_percentile(95.0).as_secs_f64() * 1e3,
    );
}

fn main() {
    let queries = section8_throughput_workload();
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "engine throughput: {} distinct queries, {THREADS} threads, {REPEATS} repeats, {cpus} cpu(s)",
        queries.len()
    );

    // Phase 1: the pre-cache engine — serial, no plan reuse.
    let uncached_engine = section8_engine(42, 0);
    let enums_before = enumerations();
    let serial_uncached = replay_serial(&uncached_engine, &queries, REPEATS);
    let serial_uncached_enums = enumerations() - enums_before;

    // Phases 2 and 3 share one cache-fronted engine.
    let engine = section8_engine(42, 256);
    let enums_before = enumerations();
    let cold = replay_serial(&engine, &queries, 1);
    let cold_enums = enumerations() - enums_before;
    assert_eq!(cold.counts, serial_uncached.counts, "cache must not change results");

    let stats_before = engine.cache_stats();
    let enums_before = enumerations();
    let serial_cached = replay_serial(&engine, &queries, 1);
    let second_replay_enums = enumerations() - enums_before;
    let stats_after = engine.cache_stats();
    let second_replay_hits = stats_after.hits - stats_before.hits;
    let second_replay_lookups = second_replay_hits + (stats_after.misses - stats_before.misses);
    let second_replay_hit_rate = second_replay_hits as f64 / second_replay_lookups as f64;
    assert_eq!(serial_cached.counts, serial_uncached.counts);

    let stats_before = engine.cache_stats();
    let enums_before = enumerations();
    let parallel = replay_parallel(&engine, &queries, THREADS, REPEATS);
    let parallel_enums = enumerations() - enums_before;
    let stats_after = engine.cache_stats();
    let parallel_hits = stats_after.hits - stats_before.hits;
    let parallel_lookups = parallel_hits + (stats_after.misses - stats_before.misses);
    let parallel_hit_rate = parallel_hits as f64 / parallel_lookups as f64;
    assert_eq!(parallel.counts, serial_uncached.counts);

    let speedup_parallel = parallel.qps() / serial_uncached.qps();
    let speedup_serial_cached = serial_cached.qps() / serial_uncached.qps();

    // Accuracy section: estimated-vs-actual q-errors for the paper's four
    // presets on the 4-table Section 8 queries of this workload (the deep
    // self-join chains are an optimizer stress, not an estimation fixture).
    let accuracy_queries: Vec<String> = queries.iter().take(4).cloned().collect();
    let accuracy_tables = starburst_experiment_tables(42);
    let summaries = preset_accuracy(&accuracy_tables, &accuracy_queries);
    for s in &summaries {
        println!(
            "accuracy {:<14} rule {:<3} samples {:>2}  median q {:>7.2}  p95 q {:>7.2}  max q {:>7.2}",
            s.label, s.rule, s.samples, s.median_q, s.p95_q, s.max_q
        );
    }

    // Feedback section: the same queries replayed twice per preset under
    // FeedbackMode::Apply — the before/after medians show how much of the
    // estimation error the correction loop recovers on repeated queries.
    let feedback = preset_feedback_accuracy(&accuracy_tables, &accuracy_queries);
    for s in &feedback {
        println!(
            "feedback {:<14} rule {:<3} samples {:>2}  median q {:>7.2} -> {:>7.2}  \
             learned {:>3}  published {}",
            s.label, s.rule, s.samples, s.median_q_before, s.median_q_after, s.learned, s.published
        );
    }

    // Bake-off section: the five estimator contenders (ELS, Rule-M,
    // feedback-corrected ELS, the UES upper bound, Simpli-Squared) plan
    // and execute the accuracy workload, pairing each contender's q-error
    // with the runtime of the plans it chose. A UES under-estimate is a
    // correctness bug (it claims to be a guaranteed bound), so it fails
    // the run like a result divergence would.
    let bakeoff = estimator_bakeoff(&accuracy_tables, &accuracy_queries, cpus);
    for e in &bakeoff {
        println!(
            "bakeoff {:<15} rule {:<11} samples {:>2}  median q {:>9.2}  max q {:>9.2}  \
             under-est {:>2}  runtime {:>8.3}ms",
            e.label, e.rule, e.samples, e.median_q, e.max_q, e.underestimates, e.runtime_ms
        );
    }
    let bakeoff_failures = bakeoff_regressions(&bakeoff);
    for msg in &bakeoff_failures {
        println!("BAKE-OFF REGRESSION: {msg}");
    }

    let mut json = String::from("{\n  \"bench\": \"engine_throughput\",\n");
    let _ = write!(
        json,
        "  \"workload\": \"section8 mixed-depth chains\", \"distinct_queries\": {}, \
         \"threads\": {THREADS}, \"repeats\": {REPEATS}, \"cpus\": {cpus},\n",
        queries.len()
    );
    json_phase(&mut json, "serial_uncached", &serial_uncached);
    json_phase(&mut json, "serial_cached_second_replay", &serial_cached);
    json_phase(&mut json, "parallel_8_threads_cached", &parallel);
    let _ = write!(json, "  \"accuracy\": {},\n", accuracy_json(&summaries));
    let _ = write!(json, "  \"feedback\": {},\n", feedback_json(&feedback));
    let _ = write!(json, "  \"bakeoff\": {},\n", bakeoff_json(&bakeoff));
    let _ = write!(
        json,
        "  \"speedup_parallel_cached_vs_serial_uncached\": {speedup_parallel:.2},\n  \
         \"speedup_serial_cached_vs_serial_uncached\": {speedup_serial_cached:.2},\n  \
         \"second_replay_hit_rate\": {second_replay_hit_rate:.4},\n  \
         \"parallel_hit_rate\": {parallel_hit_rate:.4},\n  \
         \"enumerations\": {{ \"serial_uncached\": {serial_uncached_enums}, \
         \"cold_replay\": {cold_enums}, \"second_replay\": {second_replay_enums}, \
         \"parallel\": {parallel_enums} }}\n}}\n"
    );
    std::fs::write("BENCH_engine_throughput.json", &json)
        .expect("write BENCH_engine_throughput.json");

    println!(
        "serial uncached: {:.1} qps ({} enumerations)",
        serial_uncached.qps(),
        serial_uncached_enums
    );
    println!(
        "serial cached  : {:.1} qps ({} enumerations, hit rate {:.1}%)",
        serial_cached.qps(),
        second_replay_enums,
        second_replay_hit_rate * 100.0
    );
    println!(
        "parallel x{THREADS}    : {:.1} qps ({} enumerations, hit rate {:.1}%)",
        parallel.qps(),
        parallel_enums,
        parallel_hit_rate * 100.0
    );
    println!("speedup parallel-cached vs serial-uncached: {speedup_parallel:.2}x");
    println!(
        "per-query latency p50/p95: uncached {:.2}/{:.2} ms, parallel {:.2}/{:.2} ms",
        serial_uncached.latency_percentile(50.0).as_secs_f64() * 1e3,
        serial_uncached.latency_percentile(95.0).as_secs_f64() * 1e3,
        parallel.latency_percentile(50.0).as_secs_f64() * 1e3,
        parallel.latency_percentile(95.0).as_secs_f64() * 1e3,
    );
    let ok_speedup = speedup_parallel >= 2.0;
    let ok_hits = second_replay_hit_rate >= 0.9;
    let ok_enums = second_replay_enums == 0;
    println!(
        "targets: speedup>=2x {} | second-replay hit rate>=90% {} | hits skip enumerate() {}",
        if ok_speedup { "PASS" } else { "FAIL" },
        if ok_hits { "PASS" } else { "FAIL" },
        if ok_enums { "PASS" } else { "FAIL" },
    );
    println!("wrote BENCH_engine_throughput.json");
    if !bakeoff_failures.is_empty() {
        println!("REGRESSION: estimator bake-off gate failed");
        std::process::exit(1);
    }
}
