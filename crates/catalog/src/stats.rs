//! Statistics containers.

use els_storage::Value;

use crate::histogram::{Histogram, MostCommonValues};

/// Statistics for one column, as maintained by the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Exact distinct non-NULL value count (column cardinality d_x).
    pub distinct: f64,
    /// Minimum non-NULL value.
    pub min: Option<Value>,
    /// Maximum non-NULL value.
    pub max: Option<Value>,
    /// Fraction of NULL rows.
    pub null_fraction: f64,
    /// Optional histogram (numeric columns only).
    pub histogram: Option<Histogram>,
    /// Optional most-common-values list (numeric columns only).
    pub mcv: Option<MostCommonValues>,
    /// Frequency of the most common non-NULL value — the MF(x) statistic
    /// of UES-style upper-bound estimation. Collected exactly on full
    /// scans; `None` under sampling (a sample cannot upper-bound it, and
    /// a wrong MF would break the bound guarantee).
    pub max_frequency: Option<f64>,
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Exact row count ‖R‖.
    pub row_count: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl ColumnStats {
    /// Convert to the positional statistics consumed by `els-core`. Min/max
    /// survive only when numeric.
    pub fn to_core(&self) -> els_core::ColumnStatistics {
        els_core::ColumnStatistics {
            distinct: self.distinct,
            min: self.min.as_ref().and_then(Value::as_f64),
            max: self.max.as_ref().and_then(Value::as_f64),
            null_fraction: self.null_fraction,
            max_frequency: self.max_frequency,
        }
    }
}

impl TableStats {
    /// Convert to the positional statistics consumed by `els-core`.
    pub fn to_core(&self) -> els_core::TableStatistics {
        els_core::TableStatistics {
            cardinality: self.row_count as f64,
            columns: self.columns.iter().map(ColumnStats::to_core).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_to_core_preserves_numerics() {
        let ts = TableStats {
            row_count: 42,
            columns: vec![ColumnStats {
                distinct: 7.0,
                min: Some(Value::Int(1)),
                max: Some(Value::Int(9)),
                null_fraction: 0.1,
                histogram: None,
                mcv: None,
                max_frequency: Some(6.0),
            }],
        };
        let core = ts.to_core();
        assert_eq!(core.cardinality, 42.0);
        assert_eq!(core.columns[0].distinct, 7.0);
        assert_eq!(core.columns[0].min, Some(1.0));
        assert_eq!(core.columns[0].max, Some(9.0));
        assert_eq!(core.columns[0].null_fraction, 0.1);
        assert_eq!(core.columns[0].max_frequency, Some(6.0));
    }

    #[test]
    fn string_bounds_do_not_convert() {
        let cs = ColumnStats {
            distinct: 2.0,
            min: Some(Value::from("a")),
            max: Some(Value::from("z")),
            null_fraction: 0.0,
            histogram: None,
            mcv: None,
            max_frequency: None,
        };
        let core = cs.to_core();
        assert_eq!(core.min, None);
        assert_eq!(core.max, None);
    }
}
