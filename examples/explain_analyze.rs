//! EXPLAIN ANALYZE: estimated vs actual cardinalities, side by side.
//!
//! Runs the paper's Section 8 query under Algorithm SM and Algorithm ELS
//! and prints, for every join the plan performs, the optimizer's estimate
//! next to the measured result size — the view that makes the paper's
//! entire argument visible in one screen.
//!
//! Run with: `cargo run --release --example explain_analyze`

use els::engine::Database;
use els::optimizer::EstimatorPreset;
use els::storage::datagen::starburst_experiment_tables;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    for t in starburst_experiment_tables(42) {
        db.register(t)?;
    }
    let sql = "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100";

    for preset in [EstimatorPreset::Sm, EstimatorPreset::Els] {
        db.set_estimator(preset);
        println!("=== {} ===", preset.label());
        println!("{}", db.explain_analyze(sql)?);
    }
    Ok(())
}
