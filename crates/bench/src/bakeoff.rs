//! Estimator bake-off: accuracy *and* plan quality, side by side.
//!
//! The `accuracy` module answers "how wrong are the estimates"; this one
//! adds the question the estimates exist to answer — "how good is the plan
//! they chose". Each contender plans and executes the same workload:
//!
//! * **ELS** — the paper's full pipeline (`EstimatorPreset::Els`).
//! * **Rule-M** — the standard multiplicative baseline
//!   (`EstimatorPreset::Sm`).
//! * **ELS+feedback** — ELS under [`FeedbackMode::Apply`], measured on the
//!   replay pass after one learning pass over the workload.
//! * **UES bound** — the sketch-style guaranteed upper bound
//!   ([`EstimatorStrategy::UpperBound`]); its `underestimates` count must
//!   be zero on every workload, by construction.
//! * **Simpli-Squared** — the no-estimates baseline
//!   ([`EstimatorStrategy::NoEstimates`]).
//!
//! Per contender we pool the join-operator q-errors (via
//! `explain_analyze`) and separately time plain `execute` over the
//! workload, so the JSON carries both the estimation error and the
//! runtime of the plans that error bought. The timed pass runs the
//! vectorized executor with the caller's worker count — and tells the
//! cost model about it (`CostParams::probe_parallelism`) — so contenders
//! are compared on the engine configuration a real deployment would run.

use std::time::Instant;

use els::engine::Database;
use els_catalog::FeedbackMode;
use els_exec::ExecMode;
use els_optimizer::{EstimatorPreset, EstimatorStrategy, OptimizerOptions};
use els_storage::Table;

use crate::workload::quantile;

/// One contender's row of the bake-off table.
#[derive(Debug, Clone)]
pub struct BakeoffEntry {
    /// Contender label, e.g. `UES bound`.
    pub label: String,
    /// The planning estimator's short name as reported by
    /// `explain_analyze` ("LS", "M", "upper-bound", …).
    pub rule: String,
    /// Number of join-operator q-error samples.
    pub samples: usize,
    /// Median q-error (nearest-rank).
    pub median_q: f64,
    /// 95th-percentile q-error.
    pub p95_q: f64,
    /// Worst q-error.
    pub max_q: f64,
    /// Join operators whose estimate fell below the observed actual.
    /// Must be 0 for the UES bound contender.
    pub underestimates: usize,
    /// Wall time executing the workload with this contender's plans.
    pub runtime_ms: f64,
}

/// How a contender configures its database.
struct Contender {
    label: &'static str,
    preset: EstimatorPreset,
    strategy: EstimatorStrategy,
    feedback: bool,
}

const CONTENDERS: [Contender; 5] = [
    Contender {
        label: "ELS",
        preset: EstimatorPreset::Els,
        strategy: EstimatorStrategy::Els,
        feedback: false,
    },
    Contender {
        label: "Rule-M",
        preset: EstimatorPreset::Sm,
        strategy: EstimatorStrategy::Els,
        feedback: false,
    },
    Contender {
        label: "ELS+feedback",
        preset: EstimatorPreset::Els,
        strategy: EstimatorStrategy::Els,
        feedback: true,
    },
    Contender {
        label: "UES bound",
        preset: EstimatorPreset::Els,
        strategy: EstimatorStrategy::UpperBound,
        feedback: false,
    },
    Contender {
        label: "Simpli-Squared",
        preset: EstimatorPreset::Els,
        strategy: EstimatorStrategy::NoEstimates,
        feedback: false,
    },
];

/// Run the bake-off: every contender plans and executes `queries` over its
/// own database built from `tables`, executing with `exec_workers`
/// vectorized workers (clamped to at least 1). Panics if a workload query
/// fails — these are benchmark fixtures, not user input.
pub fn estimator_bakeoff(
    tables: &[Table],
    queries: &[String],
    exec_workers: usize,
) -> Vec<BakeoffEntry> {
    let workers = exec_workers.max(1);
    CONTENDERS
        .iter()
        .map(|c| {
            let mut db = Database::new();
            let mut options =
                OptimizerOptions::preset(c.preset).with_bushy_trees().with_hash_join();
            options.cost.probe_parallelism = workers as f64;
            if c.feedback {
                options = options.with_feedback(FeedbackMode::Apply);
            }
            db.set_optimizer_options(options);
            db.set_strategy(c.strategy);
            db.set_exec_mode(ExecMode::Vectorized { workers });
            for table in tables {
                db.register(table.clone()).expect("bake-off fixture tables register");
            }
            if c.feedback {
                // Learning pass: harvest residuals so the measured pass
                // replays the workload against corrected estimates.
                for sql in queries {
                    db.explain_analyze(sql).expect("bake-off learning pass executes");
                }
            }
            let mut qerrs: Vec<f64> = Vec::new();
            let mut underestimates = 0usize;
            let mut rule = String::new();
            for sql in queries {
                let report = db.explain_analyze(sql).expect("bake-off workload queries execute");
                rule = report.rule.clone();
                for op in report.join_operators() {
                    qerrs.extend([op.q_error()]);
                    if op.estimated < op.actual as f64 {
                        underestimates += 1;
                    }
                }
            }
            qerrs.sort_by(f64::total_cmp);
            let (median_q, p95_q, max_q) = if qerrs.is_empty() {
                (1.0, 1.0, 1.0)
            } else {
                (quantile(&qerrs, 0.5), quantile(&qerrs, 0.95), *qerrs.last().unwrap())
            };
            // Chosen-plan runtime: plain execution (no observation
            // overhead) of the same workload, planned by this contender.
            let start = Instant::now();
            for sql in queries {
                db.execute(sql).expect("bake-off timed pass executes");
            }
            let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
            BakeoffEntry {
                label: c.label.to_owned(),
                rule,
                samples: qerrs.len(),
                median_q,
                p95_q,
                max_q,
                underestimates,
                runtime_ms,
            }
        })
        .collect()
}

/// The smoke-gate regression threshold on the ELS contender's median
/// q-error.
pub const ELS_MEDIAN_Q_LIMIT: f64 = 2.0;

/// The gate conditions the smoke runs enforce. Returns one message per
/// violated invariant (empty = healthy):
///
/// * the UES contender under-estimated a measured join (it claims to be an
///   upper bound, so a single miss is a correctness bug, not noise), or
/// * the ELS contender's median q-error exceeded [`ELS_MEDIAN_Q_LIMIT`].
pub fn bakeoff_regressions(entries: &[BakeoffEntry]) -> Vec<String> {
    let mut msgs = Vec::new();
    for e in entries {
        if e.label == "UES bound" && e.underestimates > 0 {
            msgs.push(format!(
                "UES bound under-estimated {} join operator(s) — not an upper bound",
                e.underestimates
            ));
        }
        if e.label == "ELS" && e.median_q > ELS_MEDIAN_Q_LIMIT {
            msgs.push(format!(
                "ELS median q-error {:.3} exceeds the {ELS_MEDIAN_Q_LIMIT} gate",
                e.median_q
            ));
        }
    }
    msgs
}

/// Render the bake-off entries as a JSON array (hand-rolled; infinities
/// become the string `"inf"` to stay valid JSON).
pub fn bakeoff_json(entries: &[BakeoffEntry]) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "\"inf\"".to_owned()
        }
    }
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "{{\"label\": \"{}\", \"rule\": \"{}\", \"samples\": {}, \
                 \"median_q\": {}, \"p95_q\": {}, \"max_q\": {}, \
                 \"underestimates\": {}, \"runtime_ms\": {}}}",
                e.label,
                e.rule,
                e.samples,
                num(e.median_q),
                num(e.p95_q),
                num(e.max_q),
                e.underestimates,
                num(e.runtime_ms)
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::starburst_experiment_tables_sized;

    fn fixture() -> (Vec<Table>, Vec<String>) {
        let tables = starburst_experiment_tables_sized(7, &[50, 500, 2_000, 4_000usize]);
        (tables, vec![crate::SECTION8_SQL.to_owned()])
    }

    #[test]
    fn bakeoff_covers_all_five_contenders() {
        let (tables, queries) = fixture();
        let entries = estimator_bakeoff(&tables, &queries, 2);
        let labels: Vec<&str> = entries.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["ELS", "Rule-M", "ELS+feedback", "UES bound", "Simpli-Squared"]);
        for e in &entries {
            assert_eq!(e.samples, 3, "{}: three joins in the 4-table chain", e.label);
            assert!(e.runtime_ms > 0.0, "{}: timed pass did not run", e.label);
        }
    }

    #[test]
    fn ues_bound_never_underestimates_and_gate_is_quiet() {
        let (tables, queries) = fixture();
        let entries = estimator_bakeoff(&tables, &queries, 1);
        let ues = entries.iter().find(|e| e.label == "UES bound").unwrap();
        assert_eq!(ues.underestimates, 0, "UES produced a below-actual estimate");
        // An upper bound over-estimates by construction, so its q-error is
        // its over-estimation factor — finite and at least 1.
        assert!(ues.median_q >= 1.0 && ues.median_q.is_finite());
        assert!(bakeoff_regressions(&entries).is_empty(), "{:?}", bakeoff_regressions(&entries));
    }

    #[test]
    fn feedback_contender_beats_or_matches_raw_els() {
        let (tables, queries) = fixture();
        let entries = estimator_bakeoff(&tables, &queries, 2);
        let els = entries.iter().find(|e| e.label == "ELS").unwrap();
        let fed = entries.iter().find(|e| e.label == "ELS+feedback").unwrap();
        assert!(
            fed.median_q <= els.median_q * 1.0001,
            "feedback replay regressed: {} -> {}",
            els.median_q,
            fed.median_q
        );
    }

    #[test]
    fn gate_flags_a_lying_bound_and_a_degraded_els() {
        let entries = vec![
            BakeoffEntry {
                label: "UES bound".to_owned(),
                rule: "upper-bound".to_owned(),
                samples: 3,
                median_q: 5.0,
                p95_q: 9.0,
                max_q: 9.0,
                underestimates: 2,
                runtime_ms: 1.0,
            },
            BakeoffEntry {
                label: "ELS".to_owned(),
                rule: "LS".to_owned(),
                samples: 3,
                median_q: 3.5,
                p95_q: 4.0,
                max_q: 4.0,
                underestimates: 0,
                runtime_ms: 1.0,
            },
        ];
        let msgs = bakeoff_regressions(&entries);
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("not an upper bound"));
        assert!(msgs[1].contains("exceeds"));
    }

    #[test]
    fn bakeoff_json_is_stable_and_inf_safe() {
        let entries = vec![BakeoffEntry {
            label: "UES bound".to_owned(),
            rule: "upper-bound".to_owned(),
            samples: 3,
            median_q: 4.0,
            p95_q: f64::INFINITY,
            max_q: f64::INFINITY,
            underestimates: 0,
            runtime_ms: 12.5,
        }];
        let json = bakeoff_json(&entries);
        assert_eq!(
            json,
            "[{\"label\": \"UES bound\", \"rule\": \"upper-bound\", \"samples\": 3, \
             \"median_q\": 4.0000, \"p95_q\": \"inf\", \"max_q\": \"inf\", \
             \"underestimates\": 0, \"runtime_ms\": 12.5000}]"
        );
    }
}
