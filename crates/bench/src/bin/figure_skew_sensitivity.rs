//! **F3** — sensitivity of the estimates to skew (Zipf data).
//!
//! The paper's assumptions include uniformity of join-column values; its
//! Section 9 names Zipfian distributions as the important violation. This
//! figure quantifies the damage: a fact table whose join column is
//! Zipf(θ)-distributed is joined with a uniform dimension table, with and
//! without a local predicate on the fact table's hot value, and the ELS
//! estimate is compared with the executed truth.
//!
//! Expected shape: at θ = 0 the ratio is ~1 (assumptions hold); as θ grows
//! the pure uniformity estimate degrades, and supplying distribution
//! statistics (equi-depth histogram + MCV) repairs the *local-predicate*
//! part of the error while the join-uniformity error remains — exactly the
//! division of labour the paper describes in Section 5.

use els_catalog::collect::CollectOptions;
use els_catalog::Catalog;
use els_exec::execute_plan;
use els_optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els_sql::{bind, parse};
use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

fn run_case(theta: f64, with_filter: bool) -> (f64, f64) {
    let rows = 20_000usize;
    let dim_rows = 500usize;
    let mut catalog = Catalog::new();
    catalog
        .register(
            TableSpec::new("FACT", rows)
                .column(ColumnSpec::new(
                    "key",
                    Distribution::ZipfInt { n: dim_rows as u64, theta, start: 0 },
                ))
                .generate(11),
            &CollectOptions::full(),
        )
        .unwrap();
    catalog
        .register(
            TableSpec::new("DIM", dim_rows)
                .column(ColumnSpec::new("id", Distribution::SequentialInt { start: 0 }))
                .generate(12),
            &CollectOptions::default(),
        )
        .unwrap();

    let sql = if with_filter {
        "SELECT COUNT(*) FROM FACT, DIM WHERE FACT.key = DIM.id AND FACT.key = 0"
    } else {
        "SELECT COUNT(*) FROM FACT, DIM WHERE FACT.key = DIM.id"
    };
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els)).unwrap();
    let truth = execute_plan(&optimized.plan, &tables).unwrap().count as f64;
    let estimate = *optimized.estimated_sizes.last().unwrap();
    (estimate, truth)
}

/// The case where uniformity genuinely bites: both join columns are
/// Zipf(θ) over the same domain, so the true size Σᵢ fᵢ·gᵢ concentrates on
/// the hot ranks while Equation 2 assumes it spreads evenly.
fn run_zipf_zipf(theta: f64) -> (f64, f64) {
    let rows = 5_000usize;
    let domain = 500u64;
    let mut catalog = Catalog::new();
    for (name, seed) in [("ZA", 21u64), ("ZB", 22)] {
        catalog
            .register(
                TableSpec::new(name, rows)
                    .column(ColumnSpec::new(
                        "key",
                        Distribution::ZipfInt { n: domain, theta, start: 0 },
                    ))
                    .generate(seed),
                &CollectOptions::full(),
            )
            .unwrap();
    }
    let sql = "SELECT COUNT(*) FROM ZA, ZB WHERE ZA.key = ZB.key";
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized = optimize_bound(
        &bound,
        &catalog,
        &OptimizerOptions::preset(EstimatorPreset::Els).with_hash_join(),
    )
    .unwrap();
    let truth = execute_plan(&optimized.plan, &tables).unwrap().count as f64;
    (*optimized.estimated_sizes.last().unwrap(), truth)
}

fn main() {
    println!("# F3 — ELS estimate/truth under Zipf(θ) join columns");
    println!("(FACT 20000 rows ⋈ DIM 500 rows; histograms + MCV collected on FACT)\n");
    println!(
        "| {:>4} | {:<26} | {:>10} | {:>10} | {:>9} |",
        "θ", "query", "estimate", "truth", "est/true"
    );
    println!(
        "|{}|{}|{}|{}|{}|",
        "-".repeat(6),
        "-".repeat(28),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(11)
    );
    for theta in [0.0, 0.5, 1.0, 1.5] {
        for with_filter in [false, true] {
            let (estimate, truth) = run_case(theta, with_filter);
            println!(
                "| {:>4.1} | {:<26} | {:>10.1} | {:>10.0} | {:>9.3} |",
                theta,
                if with_filter { "join + hot-value filter" } else { "plain join" },
                estimate,
                truth,
                estimate / truth.max(1.0),
            );
        }
    }
    println!();
    for theta in [0.0, 0.5, 1.0, 1.5] {
        let (estimate, truth) = run_zipf_zipf(theta);
        println!(
            "| {:>4.1} | {:<26} | {:>10.1} | {:>10.0} | {:>9.3} |",
            theta,
            "Zipf ⋈ Zipf (both skewed)",
            estimate,
            truth,
            estimate / truth.max(1.0),
        );
    }
    println!(
        "\nexpected shape: the FK join stays exact even under skew — uniformity is only \
         needed on one side (Rosenthal [12]) — and the hot-value filter case stays accurate \
         because the MCV list repairs the local selectivity (drop CollectOptions::full() and \
         it collapses to 1/d). The Zipf ⋈ Zipf rows are where the uniformity assumption \
         genuinely fails: the true size Σ fᵢ·gᵢ concentrates on hot ranks and Equation 2 \
         underestimates it, increasingly with θ — the future-work case of the paper's \
         Section 9."
    );
}
