//! Canonical query fingerprints for plan caching.
//!
//! Two SQL strings that denote the same conjunctive query should map to the
//! same cache key even when they differ in formatting or in the order of
//! their `WHERE` conjuncts (conjunction is commutative; the optimizer's
//! transitive-closure step makes conjunct order irrelevant anyway). The
//! fingerprint is the [`Query`]'s canonical unparse after:
//!
//! * whitespace/case-of-keyword normalization (free: the AST has neither),
//! * flipping symmetric comparisons (`=`, `<>`) so the lexically smaller
//!   operand is on the left — and column-vs-column *asymmetric*
//!   comparisons too, with the operator flipped alongside (`a.x < b.y` ≡
//!   `b.y > a.x`),
//! * sorting the conjuncts of the `WHERE` clause.
//!
//! Identifiers are *not* case-folded — the binder resolves names exactly,
//! so `t.A` and `t.a` may be different columns. `FROM` order is also kept:
//! table positions are visible in the bound query (and a different `FROM`
//! permutation is a different binding even when the result is the same).

use crate::ast::{Operand, PredicateAst, Query};
use crate::error::SqlResult;
use crate::parser::parse;
use crate::unparse::render_predicate;

/// Canonical text of an already-parsed query (see module docs). The result
/// re-parses to a query with the same meaning and the same fingerprint.
pub fn canonical_sql(query: &Query) -> String {
    let mut canonical = query.clone();
    for p in &mut canonical.predicates {
        orient_comparison(p);
    }
    canonical.predicates.sort_by_key(render_predicate);
    canonical.to_string()
}

/// Parse `sql` and return its canonical fingerprint.
pub fn fingerprint(sql: &str) -> SqlResult<String> {
    Ok(canonical_sql(&parse(sql)?))
}

/// Put the lexically smaller operand first: symmetric operators (`=`,
/// `<>`) swap freely, and an asymmetric comparison between two *columns*
/// swaps with the operator flipped — `a.x < b.y` and `b.y > a.x` are the
/// same predicate read in either direction, and without the flip they
/// fingerprinted differently (two cache entries, split feedback). A
/// column-vs-literal comparison is left alone: flipping it here would only
/// duplicate the binder's literal-first normalization.
fn orient_comparison(p: &mut PredicateAst) {
    let PredicateAst::Cmp { left, op, right } = p else { return };
    let swappable = op.is_symmetric()
        || (matches!(left, Operand::Column(_)) && matches!(right, Operand::Column(_)));
    if !swappable {
        return;
    }
    // Compare rendered forms so the orientation agrees with the sort that
    // follows.
    if operand_key(left) > operand_key(right) {
        std::mem::swap(left, right);
        if !op.is_symmetric() {
            *op = op.flip();
        }
    }
}

fn operand_key(o: &Operand) -> String {
    match o {
        Operand::Column(c) => c.to_string(),
        Operand::Literal(v) => v.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_and_conjunct_order_do_not_matter() {
        let a = fingerprint("SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100").unwrap();
        let b = fingerprint("select   count(*) from S, M where s < 100 and s = m").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_comparisons_are_oriented() {
        let a = fingerprint("SELECT COUNT(*) FROM S, M WHERE s = m").unwrap();
        let b = fingerprint("SELECT COUNT(*) FROM S, M WHERE m = s").unwrap();
        assert_eq!(a, b);
        let c = fingerprint("SELECT COUNT(*) FROM S, M WHERE m <> s").unwrap();
        let d = fingerprint("SELECT COUNT(*) FROM S, M WHERE s != m").unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn asymmetric_comparisons_are_left_alone() {
        let a = fingerprint("SELECT COUNT(*) FROM S WHERE s < 100").unwrap();
        assert!(a.contains("s < 100"), "{a}");
    }

    #[test]
    fn column_inequalities_orient_by_flipping_the_operator() {
        // Regression: these are one predicate read in two directions, but
        // the old orientation skipped every asymmetric comparison, so they
        // fingerprinted (and cached) separately.
        let a = fingerprint("SELECT COUNT(*) FROM S, M WHERE s < m").unwrap();
        let b = fingerprint("SELECT COUNT(*) FROM S, M WHERE m > s").unwrap();
        assert_eq!(a, b);
        assert!(a.contains("m > s"), "lexically smaller column first: {a}");
        // The opposite inequality stays a different query.
        let c = fingerprint("SELECT COUNT(*) FROM S, M WHERE s > m").unwrap();
        assert_ne!(a, c);
        // Inclusive variants flip too, and stay distinct from strict ones.
        let d = fingerprint("SELECT COUNT(*) FROM S, M WHERE s <= m").unwrap();
        let e = fingerprint("SELECT COUNT(*) FROM S, M WHERE m >= s").unwrap();
        assert_eq!(d, e);
        assert_ne!(a, d);
    }

    #[test]
    fn different_queries_differ() {
        let a = fingerprint("SELECT COUNT(*) FROM S WHERE s < 100").unwrap();
        let b = fingerprint("SELECT COUNT(*) FROM S WHERE s < 101").unwrap();
        assert_ne!(a, b);
        // FROM order is binding-relevant and therefore preserved.
        let c = fingerprint("SELECT COUNT(*) FROM S, M WHERE s = m").unwrap();
        let d = fingerprint("SELECT COUNT(*) FROM M, S WHERE s = m").unwrap();
        assert_ne!(c, d);
    }

    #[test]
    fn fingerprint_is_idempotent_and_reparses() {
        let sql = "SELECT a, COUNT(*) FROM t WHERE b = a AND a IS NOT NULL \
                   GROUP BY a ORDER BY a DESC LIMIT 5";
        let fp = fingerprint(sql).unwrap();
        assert_eq!(fingerprint(&fp).unwrap(), fp);
    }
}
