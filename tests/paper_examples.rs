//! Every numeric example in the paper, checked through the public API.
//!
//! Paper: Swami & Schiefer, "On the Estimation of Join Result Sizes",
//! EDBT 1994. Section references below are to the paper.

use els::core::prelude::*;
use els::core::{exact, urn};

/// Example 1a/1b statistics: ||R1||=100, ||R2||=1000, ||R3||=1000,
/// d_x=10, d_y=100, d_z=1000, one equivalence class {x, y, z}.
fn example_1b(rule: SelectivityRule) -> Els {
    let stats = QueryStatistics::new(vec![
        TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(10.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(100.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(1000.0)]),
    ]);
    let predicates = vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::join_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
    ];
    Els::prepare(&predicates, &stats, &ElsOptions::default().with_rule(rule)).unwrap()
}

#[test]
fn example_1b_selectivities_and_sizes() {
    // S_J1 = 0.01, S_J2 = 0.001, S_J3 = 0.001.
    let els = example_1b(SelectivityRule::LargestSelectivity);
    let mut sels: Vec<f64> =
        els.prepared().join_predicates().iter().map(|p| p.selectivity).collect();
    sels.sort_by(f64::total_cmp);
    assert_eq!(sels, vec![0.001, 0.001, 0.01]);
    // ||R2 ⋈ R3|| = 1000; ||R1 ⋈ R2 ⋈ R3|| = 1000.
    assert_eq!(els.estimate_order(&[1, 2]).unwrap(), vec![1000.0]);
    assert_eq!(exact::n_way(&[(100.0, 10.0), (1000.0, 100.0), (1000.0, 1000.0)]), 1000.0);
}

#[test]
fn example_2_rule_m_estimates_1() {
    let els = example_1b(SelectivityRule::Multiplicative);
    let sizes = els.estimate_order(&[1, 2, 0]).unwrap();
    assert_eq!(sizes, vec![1000.0, 1.0]);
}

#[test]
fn example_3_rule_ss_estimates_100_rule_ls_estimates_1000() {
    let ss = example_1b(SelectivityRule::SmallestSelectivity);
    assert_eq!(ss.estimate_order(&[1, 2, 0]).unwrap(), vec![1000.0, 100.0]);
    let ls = example_1b(SelectivityRule::LargestSelectivity);
    assert_eq!(ls.estimate_order(&[1, 2, 0]).unwrap(), vec![1000.0, 1000.0]);
}

#[test]
fn section_3_3_representative_rule_has_no_correct_value() {
    // Representative 0.01 -> 10000 (too high); 0.001 -> 100 (too low).
    use els::core::rules::RepresentativeStrategy;
    let stats = QueryStatistics::new(vec![
        TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(10.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(100.0)]),
        TableStatistics::new(1000.0, vec![ColumnStatistics::with_distinct(1000.0)]),
    ]);
    let predicates = vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::join_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
    ];
    let high = Els::prepare(
        &predicates,
        &stats,
        &ElsOptions::default()
            .with_rule(SelectivityRule::Representative)
            .with_representative(RepresentativeStrategy::LargestInClass),
    )
    .unwrap();
    assert_eq!(high.estimate_final(&[1, 2, 0]).unwrap(), 10_000.0);
    let low = Els::prepare(
        &predicates,
        &stats,
        &ElsOptions::default()
            .with_rule(SelectivityRule::Representative)
            .with_representative(RepresentativeStrategy::SmallestInClass),
    )
    .unwrap();
    assert_eq!(low.estimate_final(&[1, 2, 0]).unwrap(), 100.0);
}

#[test]
fn section_5_urn_example() {
    // d_x = 10000, ||R|| = 100000, ||R||' = 50000: urn gives 9933,
    // proportional gives 5000; with ||R||' = ||R|| the urn gives 10000.
    assert_eq!(urn::expected_distinct_rounded(10_000.0, 50_000.0).unwrap(), 9933.0);
    assert_eq!(urn::proportional_distinct(10_000.0, 50_000.0, 100_000.0).unwrap(), 5000.0);
    assert_eq!(urn::expected_distinct_rounded(10_000.0, 100_000.0).unwrap(), 10_000.0);
}

#[test]
fn section_6_same_table_example() {
    // ||R1||=100, d_x=100; ||R2||=1000, d_y=10, d_w=50;
    // R1.x = R2.y AND R1.x = R2.w.
    let stats = QueryStatistics::new(vec![
        TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(100.0)]),
        TableStatistics::new(
            1000.0,
            vec![ColumnStatistics::with_distinct(10.0), ColumnStatistics::with_distinct(50.0)],
        ),
    ]);
    let predicates = vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 1)),
    ];
    let els = Els::prepare(&predicates, &stats, &ElsOptions::default()).unwrap();
    let adj = els.same_table_adjustments();
    assert_eq!(adj.len(), 1);
    assert_eq!(adj[0].cardinality_after, 20.0); // ||R2||' = 1000/50
    assert_eq!(adj[0].join_distinct, 9.0); // ceil(10 * (1 - 0.9^20))
}

#[test]
fn section_8_estimates_rows_2_and_3_exactly() {
    // Statistics of the S/M/B/G experiment; order M ⋈ B ⋈ S ⋈ G as in the
    // paper's table.
    let mk = |rows: f64| {
        TableStatistics::new(rows, vec![ColumnStatistics::with_domain(rows, 0.0, rows - 1.0)])
    };
    let stats = QueryStatistics::new(vec![mk(1000.0), mk(10_000.0), mk(50_000.0), mk(100_000.0)]);
    let predicates = vec![
        Predicate::col_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::col_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
        Predicate::col_eq(ColumnRef::new(2, 0), ColumnRef::new(3, 0)),
        Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, 100i64),
    ];
    let order = [1usize, 2, 0, 3];

    let sm = Els::prepare(&predicates, &stats, &ElsOptions::algorithm_sm()).unwrap();
    let sizes = sm.estimate_order(&order).unwrap();
    assert!((sizes[0] - 0.2).abs() < 1e-12);
    assert!((sizes[1] - 4e-8).abs() < 1e-20);
    assert!((sizes[2] - 4e-21).abs() < 1e-33);

    let sss = Els::prepare(&predicates, &stats, &ElsOptions::algorithm_sss()).unwrap();
    let sizes = sss.estimate_order(&order).unwrap();
    assert!((sizes[0] - 0.2).abs() < 1e-12);
    assert!((sizes[1] - 4e-4).abs() < 1e-16);
    assert!((sizes[2] - 4e-7).abs() < 1e-19);

    // ELS: every intermediate is 100 in any order (correct answer).
    let els = Els::prepare(&predicates, &stats, &ElsOptions::algorithm_els()).unwrap();
    for order in [[2usize, 3, 1, 0], [0, 1, 2, 3], [1, 2, 0, 3]] {
        let sizes = els.estimate_order(&order).unwrap();
        assert!(sizes.iter().all(|s| (s - 100.0).abs() < 1e-9), "{sizes:?}");
    }
}

#[test]
fn section_4_step1_duplicate_predicates_are_dropped() {
    // Queries like (R1.x > 500) AND (R1.x > 500).
    let stats = QueryStatistics::new(vec![TableStatistics::new(
        1000.0,
        vec![ColumnStatistics::with_domain(1000.0, 0.0, 999.0)],
    )]);
    let p = Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Gt, 500i64);
    let once = Els::prepare(std::slice::from_ref(&p), &stats, &ElsOptions::default()).unwrap();
    let twice = Els::prepare(&[p.clone(), p], &stats, &ElsOptions::default()).unwrap();
    assert_eq!(once.effective_cardinality(0).unwrap(), twice.effective_cardinality(0).unwrap());
    assert_eq!(twice.predicates().len(), 1);
}
