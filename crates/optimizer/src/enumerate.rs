//! Dynamic-programming enumeration of left-deep join trees.
//!
//! The classic System R algorithm [13]: the best plan for every subset of
//! tables is kept, and subsets are extended one table at a time. At each
//! extension the estimator supplies the intermediate result size — this is
//! precisely the "incremental estimation" loop the paper's Algorithm ELS
//! serves — and the cost model prices each available join method; the
//! cheapest (plan, method) combination survives.
//!
//! Cartesian products are permitted but naturally priced out whenever a
//! connected extension exists. Ties keep the earlier (lower table id)
//! candidate so results are deterministic.

use els_core::estimator::JoinState;
use els_core::predicate::{CmpOp, Predicate};
use els_core::{CardinalityEstimator, ColumnRef};
use els_exec::filter::CompiledFilter;
use els_exec::{JoinMethod, PlanNode};

use crate::cost::CostParams;
use crate::error::{OptimizerError, OptimizerResult};
use crate::profile::TableProfile;

/// Hard cap on query size: the DP table is dense over `2^n` subsets.
pub const MAX_DP_TABLES: usize = 16;

/// The space of join trees the DP explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TreeShape {
    /// Left-deep trees only: every join's inner is a base table (System R
    /// [13], and the shape the paper's incremental estimation addresses).
    #[default]
    LeftDeep,
    /// All bushy trees: both join inputs may be intermediates. An
    /// extension beyond the paper; estimation uses the set-vs-set form of
    /// Step 6 ([`Els::join_sets`]), under which Rule LS remains consistent
    /// with Equation 3.
    Bushy,
}

/// The winning plan for the full table set.
#[derive(Debug, Clone)]
pub struct EnumerationResult {
    /// The chosen operator tree (no output node).
    pub root: PlanNode,
    /// Join order: tables in the sequence the left-deep tree touches them.
    pub join_order: Vec<usize>,
    /// Estimated result size after each join step (`join_order.len() - 1`
    /// entries) — the numbers the paper's experiment table reports.
    pub estimated_sizes: Vec<f64>,
    /// Total estimated cost in page units.
    pub estimated_cost: f64,
}

#[derive(Debug, Clone)]
struct Entry {
    cost: f64,
    state: JoinState,
    node: PlanNode,
    /// Combined tuple width of covered tables (for intermediate sizing by
    /// future cost extensions).
    width: usize,
}

/// Scan filters for one table: every local predicate of the (possibly
/// closed) predicate set that touches only this table.
pub fn scan_filters(
    predicates: &[Predicate],
    table: usize,
) -> OptimizerResult<Vec<CompiledFilter>> {
    predicates
        .iter()
        .filter(|p| p.is_local() && p.columns().iter().all(|c| c.table == table))
        .map(|p| CompiledFilter::from_predicate(p).map_err(OptimizerError::from))
        .collect()
}

/// Join keys linking the tables of `mask` to `table`: `(left, right)` pairs
/// with `left` inside the mask and `right` on the new table.
pub fn join_keys(predicates: &[Predicate], mask: u64, table: usize) -> Vec<(ColumnRef, ColumnRef)> {
    join_keys_between(predicates, mask, 1u64 << table)
}

/// Join keys between two disjoint table sets: `(left, right)` pairs with
/// `left` in `left_mask` and `right` in `right_mask`.
pub fn join_keys_between(
    predicates: &[Predicate],
    left_mask: u64,
    right_mask: u64,
) -> Vec<(ColumnRef, ColumnRef)> {
    let in_left = |t: usize| left_mask & (1 << t) != 0;
    let in_right = |t: usize| right_mask & (1 << t) != 0;
    let mut keys = Vec::new();
    for p in predicates {
        if let Predicate::JoinEq { left, right } = p {
            if in_left(left.table) && in_right(right.table) {
                keys.push((*left, *right));
            } else if in_left(right.table) && in_right(left.table) {
                keys.push((*right, *left));
            }
        }
    }
    keys
}

/// Inequality predicates linking the tables of `mask` to `table`, oriented
/// left-side-in-mask (flipping the operator when the stored orientation is
/// the other way round).
pub fn range_keys(
    predicates: &[Predicate],
    mask: u64,
    table: usize,
) -> Vec<(ColumnRef, CmpOp, ColumnRef)> {
    range_keys_between(predicates, mask, 1u64 << table)
}

/// Inequality predicates between two disjoint table sets, oriented
/// `(left in left_mask, op, right in right_mask)`.
pub fn range_keys_between(
    predicates: &[Predicate],
    left_mask: u64,
    right_mask: u64,
) -> Vec<(ColumnRef, CmpOp, ColumnRef)> {
    let in_left = |t: usize| left_mask & (1 << t) != 0;
    let in_right = |t: usize| right_mask & (1 << t) != 0;
    let mut ranges = Vec::new();
    for p in predicates {
        if let Predicate::JoinRange { left, op, right } = p {
            if in_left(left.table) && in_right(right.table) {
                ranges.push((*left, *op, *right));
            } else if in_left(right.table) && in_right(left.table) {
                ranges.push((*right, op.flip(), *left));
            }
        }
    }
    ranges
}

/// Run the DP over left-deep trees. `els` must have been prepared over the
/// same table numbering as `profiles`.
pub fn enumerate_left_deep(
    els: &dyn CardinalityEstimator,
    profiles: &[TableProfile],
    methods: &[JoinMethod],
    params: &CostParams,
) -> OptimizerResult<EnumerationResult> {
    enumerate(els, profiles, methods, params, TreeShape::LeftDeep)
}

/// Post-order estimated sizes of every join node in a plan tree (for a
/// left-deep tree this equals the step-by-step sizes of
/// [`CardinalityEstimator::estimate_order`]).
fn node_sizes(
    els: &dyn CardinalityEstimator,
    node: &PlanNode,
    sizes: &mut Vec<f64>,
) -> OptimizerResult<els_core::estimator::JoinState> {
    match node {
        PlanNode::Scan { table_id, .. } => Ok(els.initial_state(*table_id)?),
        PlanNode::Join { left, right, .. } => {
            let l = node_sizes(els, left, sizes)?;
            let r = node_sizes(els, right, sizes)?;
            let s = els.join_sets(&l, &r)?;
            sizes.push(s.cardinality());
            Ok(s)
        }
    }
}

/// Run the DP over any [`CardinalityEstimator`] (the paper's ELS, the
/// UES-style upper bound, the no-estimates baseline, ...). `shape` selects
/// left-deep (System R) or bushy exploration.
pub fn enumerate(
    els: &dyn CardinalityEstimator,
    profiles: &[TableProfile],
    methods: &[JoinMethod],
    params: &CostParams,
    shape: TreeShape,
) -> OptimizerResult<EnumerationResult> {
    // Observable from the outside so cache effectiveness ("hits skip
    // enumeration") can be asserted; see `els_exec::metrics::enumerations`.
    els_exec::metrics::record_enumeration();
    let n = profiles.len();
    if n == 0 {
        return Err(OptimizerError::Unsupported("query with no tables".into()));
    }
    if n > MAX_DP_TABLES {
        return Err(OptimizerError::Unsupported(format!(
            "{n} tables exceeds the DP limit of {MAX_DP_TABLES}"
        )));
    }
    if methods.is_empty() {
        return Err(OptimizerError::Unsupported("no join methods enabled".into()));
    }
    let predicates = els.predicates();

    let mut best: Vec<Option<Entry>> = vec![None; 1usize << n];
    for (t, profile) in profiles.iter().enumerate() {
        let state = els.initial_state(t)?;
        let node = PlanNode::Scan { table_id: t, filters: scan_filters(predicates, t)? };
        best[1usize << t] =
            Some(Entry { cost: params.scan(profile), state, node, width: profile.row_bytes });
    }

    // Extend subsets in increasing mask order (all proper submasks of m are
    // numerically smaller than m, so they are final when m is built).
    for mask in 1usize..(1 << n) {
        let Some(entry) = best[mask].clone() else { continue };

        // Left-deep transitions: extend by one base table.
        #[allow(clippy::needless_range_loop)] // `t` is a table id, not just an index
        for t in 0..n {
            if mask & (1 << t) != 0 {
                continue;
            }
            let new_state = els.join(&entry.state, t)?;
            let outer_rows = entry.state.cardinality();
            let inner_eff = els.effective_cardinality(t)?;
            let out_rows = new_state.cardinality();
            let keys = join_keys(predicates, mask as u64, t);
            let ranges = range_keys(predicates, mask as u64, t);

            // The band join is not part of the configured method list: it
            // becomes a candidate exactly when it is executable — no
            // equi-keys but at least one inequality edge. Keyed joins treat
            // the inequalities as residual filters instead.
            let band_ok = keys.is_empty() && !ranges.is_empty();
            // Keyless methods materialize the full cross product before the
            // residual inequality filter; only the band join prunes while
            // probing, so only it is charged the filtered output.
            let emit_rows = if band_ok { outer_rows * inner_eff } else { out_rows };
            let mut best_method: Option<(JoinMethod, f64)> = None;
            for &m in methods.iter().chain(band_ok.then_some(&JoinMethod::Range)) {
                // Indexed nested loops needs at least one key to probe on.
                if m == JoinMethod::IndexNestedLoop && keys.is_empty() {
                    continue;
                }
                if m == JoinMethod::Range && !band_ok {
                    continue;
                }
                let join_cost = match m {
                    JoinMethod::NestedLoop => params.nested_loop(outer_rows, &profiles[t]),
                    JoinMethod::SortMerge => {
                        params.sort_merge(outer_rows, &profiles[t], inner_eff, emit_rows)
                    }
                    JoinMethod::Hash => params.hash(outer_rows, &profiles[t], inner_eff, emit_rows),
                    JoinMethod::IndexNestedLoop => {
                        params.index_nested_loop(outer_rows, &profiles[t], emit_rows)
                    }
                    JoinMethod::Range => {
                        params.range_join(outer_rows, &profiles[t], inner_eff, out_rows)
                    }
                };
                if best_method.is_none_or(|(_, c)| join_cost < c) {
                    best_method = Some((m, join_cost));
                }
            }
            let Some((method, join_cost)) = best_method else { continue };
            let total = entry.cost + join_cost;

            let new_mask = mask | (1 << t);
            if best[new_mask].as_ref().is_none_or(|e| total < e.cost) {
                let node = PlanNode::Join {
                    method,
                    left: Box::new(entry.node.clone()),
                    right: Box::new(PlanNode::Scan {
                        table_id: t,
                        filters: scan_filters(predicates, t)?,
                    }),
                    keys,
                    ranges,
                };
                best[new_mask] = Some(Entry {
                    cost: total,
                    state: new_state,
                    node,
                    width: entry.width + profiles[t].row_bytes,
                });
            }
        }

        // Bushy transitions: pair this subtree with every disjoint,
        // already-final subtree of size >= 2 (size-1 partners are covered
        // by the left-deep transitions above, with their cheaper
        // base-inner cost structure).
        if shape == TreeShape::Bushy && mask + 1 < (1 << n) {
            let universe = (1usize << n) - 1;
            let rest = universe & !mask;
            // Iterate non-empty submasks of `rest`. A pair {A, B} is
            // evaluated at iteration A with best[B] and at iteration B with
            // best[A]; at iteration max(A, B) both entries are final (every
            // push into a mask comes from a numerically smaller mask), so
            // the optimal combination is always considered.
            let mut sub = rest;
            while sub > 0 {
                if sub.count_ones() >= 2 {
                    if let Some(partner) = best[sub].clone() {
                        let new_state = els.join_sets(&entry.state, &partner.state)?;
                        let out_rows = new_state.cardinality();
                        let outer_rows = entry.state.cardinality();
                        let inner_rows = partner.state.cardinality();

                        let keys = join_keys_between(predicates, mask as u64, sub as u64);
                        let ranges = range_keys_between(predicates, mask as u64, sub as u64);
                        let band_ok = keys.is_empty() && !ranges.is_empty();
                        let emit_rows = if band_ok { outer_rows * inner_rows } else { out_rows };
                        let mut best_method: Option<(JoinMethod, f64)> = None;
                        for &m in methods.iter().chain(band_ok.then_some(&JoinMethod::Range)) {
                            // Indexes exist on stored tables only.
                            if m == JoinMethod::IndexNestedLoop {
                                continue;
                            }
                            if m == JoinMethod::Range && !band_ok {
                                continue;
                            }
                            let join_cost = match m {
                                JoinMethod::NestedLoop => params.nested_loop_intermediate(
                                    outer_rows,
                                    inner_rows,
                                    partner.width,
                                ),
                                JoinMethod::SortMerge => params
                                    .sort_merge_intermediate(outer_rows, inner_rows, emit_rows),
                                JoinMethod::Hash => {
                                    params.hash_intermediate(outer_rows, inner_rows, emit_rows)
                                }
                                JoinMethod::Range => {
                                    params.range_join_intermediate(outer_rows, inner_rows, out_rows)
                                }
                                JoinMethod::IndexNestedLoop => unreachable!("skipped above"),
                            };
                            if best_method.is_none_or(|(_, c)| join_cost < c) {
                                best_method = Some((m, join_cost));
                            }
                        }
                        // All enabled methods may have been skipped (e.g.
                        // IndexNestedLoop-only configurations): no bushy
                        // candidate for this pair, not a panic.
                        let Some((method, join_cost)) = best_method else {
                            sub = (sub - 1) & rest;
                            continue;
                        };
                        let total = entry.cost + partner.cost + join_cost;
                        let new_mask = mask | sub;
                        if best[new_mask].as_ref().is_none_or(|e| total < e.cost) {
                            let node = PlanNode::Join {
                                method,
                                left: Box::new(entry.node.clone()),
                                right: Box::new(partner.node.clone()),
                                keys,
                                ranges,
                            };
                            best[new_mask] = Some(Entry {
                                cost: total,
                                state: new_state,
                                node,
                                width: entry.width + partner.width,
                            });
                        }
                    }
                }
                sub = (sub - 1) & rest;
            }
        }
    }

    let full = (1usize << n) - 1;
    // Every subset should be reachable (left-deep transitions alone connect
    // any mask), but a serving thread must degrade to an error — never
    // panic — if that invariant is ever broken by a bad configuration.
    let winner = best[full].clone().ok_or_else(|| {
        OptimizerError::Internal(format!(
            "join enumeration built no plan for the full table set ({n} tables)"
        ))
    })?;
    let join_order = winner.node.join_order();
    let mut estimated_sizes = Vec::new();
    node_sizes(els, &winner.node, &mut estimated_sizes)?;
    Ok(EnumerationResult {
        root: winner.node,
        join_order,
        estimated_sizes,
        estimated_cost: winner.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_core::predicate::CmpOp;
    use els_core::{ColumnStatistics, Els, ElsOptions, QueryStatistics, TableStatistics};

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    /// The paper's Section 8 setup (statistics only).
    fn section8(options: &ElsOptions) -> (Els, Vec<TableProfile>) {
        let mk = |rows: f64| {
            TableStatistics::new(rows, vec![ColumnStatistics::with_domain(rows, 0.0, rows - 1.0)])
        };
        let stats =
            QueryStatistics::new(vec![mk(1000.0), mk(10_000.0), mk(50_000.0), mk(100_000.0)]);
        let preds = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
            Predicate::col_eq(c(2, 0), c(3, 0)),
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
        ];
        let els = Els::prepare(&preds, &stats, options).unwrap();
        let profiles = [1000.0, 10_000.0, 50_000.0, 100_000.0]
            .iter()
            .map(|&r| TableProfile::synthetic(r, 16))
            .collect();
        (els, profiles)
    }

    const NL_SM: [JoinMethod; 2] = [JoinMethod::NestedLoop, JoinMethod::SortMerge];

    #[test]
    fn single_table_is_a_scan() {
        let stats = QueryStatistics::new(vec![TableStatistics::new(
            10.0,
            vec![ColumnStatistics::with_distinct(10.0)],
        )]);
        let els = Els::prepare(&[], &stats, &ElsOptions::default()).unwrap();
        let r = enumerate_left_deep(
            &els,
            &[TableProfile::synthetic(10.0, 8)],
            &NL_SM,
            &CostParams::default(),
        )
        .unwrap();
        assert!(matches!(r.root, PlanNode::Scan { table_id: 0, .. }));
        assert_eq!(r.join_order, vec![0]);
        assert!(r.estimated_sizes.is_empty());
    }

    #[test]
    fn section8_els_avoids_nested_loops_over_giants() {
        let (els, profiles) = section8(&ElsOptions::algorithm_els());
        let r = enumerate_left_deep(&els, &profiles, &NL_SM, &CostParams::default()).unwrap();
        // Every intermediate is estimated at 100.
        for s in &r.estimated_sizes {
            assert!((s - 100.0).abs() < 1e-6, "sizes {:?}", r.estimated_sizes);
        }
        // No nested-loops join may have table G (3) as its inner: an honest
        // 100-tuple outer makes rescanning 100k rows absurd.
        fn nl_inner_tables(node: &PlanNode, out: &mut Vec<usize>) {
            if let PlanNode::Join { method, left, right, .. } = node {
                nl_inner_tables(left, out);
                if *method == JoinMethod::NestedLoop {
                    if let PlanNode::Scan { table_id, .. } = right.as_ref() {
                        out.push(*table_id);
                    }
                }
            }
        }
        let mut nl_inners = Vec::new();
        nl_inner_tables(&r.root, &mut nl_inners);
        assert!(!nl_inners.contains(&3), "ELS plan rescans G: {}", r.root.explain());
    }

    #[test]
    fn section8_sm_is_misled_into_rescanning_a_giant() {
        let (els, profiles) = section8(&ElsOptions::algorithm_sm());
        let r = enumerate_left_deep(&els, &profiles, &NL_SM, &CostParams::default()).unwrap();
        // The final intermediate estimates collapse toward zero...
        assert!(r.estimated_sizes.last().copied().unwrap() < 1e-3, "sizes {:?}", r.estimated_sizes);
        // ...so some nested-loops rescan of a big table looks free. G (or at
        // least B) must appear as an NL inner.
        let text = r.root.explain();
        fn has_nl(node: &PlanNode) -> bool {
            match node {
                PlanNode::Scan { .. } => false,
                PlanNode::Join { method, left, .. } => {
                    *method == JoinMethod::NestedLoop || has_nl(left)
                }
            }
        }
        assert!(has_nl(&r.root), "SM plan unexpectedly avoids NL:\n{text}");
    }

    #[test]
    fn cartesian_products_are_priced_not_forbidden() {
        // Two tables, no predicates: the only plan is a cartesian product.
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(10.0, vec![ColumnStatistics::with_distinct(10.0)]),
            TableStatistics::new(20.0, vec![ColumnStatistics::with_distinct(20.0)]),
        ]);
        let els = Els::prepare(&[], &stats, &ElsOptions::default()).unwrap();
        let profiles = vec![TableProfile::synthetic(10.0, 8), TableProfile::synthetic(20.0, 8)];
        let r = enumerate_left_deep(&els, &profiles, &NL_SM, &CostParams::default()).unwrap();
        assert_eq!(r.estimated_sizes, vec![200.0]);
        if let PlanNode::Join { keys, .. } = &r.root {
            assert!(keys.is_empty());
        } else {
            panic!("expected a join root");
        }
    }

    #[test]
    fn pure_inequality_queries_choose_the_band_join() {
        // Two tables linked only by `R0.x < R1.y`, with nearly disjoint
        // domains (R0's values sit above R1's) so the band output is tiny:
        // sort + log-probe beats rescanning the inner per outer tuple, and
        // the plan carries the range edge.
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(
                1000.0,
                vec![ColumnStatistics::with_domain(1000.0, 1000.0, 1999.0)],
            ),
            TableStatistics::new(5000.0, vec![ColumnStatistics::with_domain(1000.0, 0.0, 999.0)]),
        ]);
        let preds = vec![Predicate::join_range(c(0, 0), CmpOp::Lt, c(1, 0))];
        let els = Els::prepare(&preds, &stats, &ElsOptions::algorithm_els()).unwrap();
        let profiles =
            vec![TableProfile::synthetic(1000.0, 16), TableProfile::synthetic(5000.0, 16)];
        let r = enumerate_left_deep(&els, &profiles, &NL_SM, &CostParams::default()).unwrap();
        let PlanNode::Join { method, keys, ranges, left, right } = &r.root else {
            panic!("expected a join root");
        };
        assert_eq!(*method, JoinMethod::Range, "{}", r.root.explain());
        assert!(keys.is_empty());
        assert_eq!(ranges.len(), 1);
        // The range is oriented left-column-in-left-subtree regardless of
        // which table the DP put on the outer side.
        let (lc, _, rc) = ranges[0];
        let left_tables = left.tables();
        assert!(left_tables.contains(&lc.table), "{}", r.root.explain());
        assert!(right.tables().contains(&rc.table), "{}", r.root.explain());
    }

    #[test]
    fn range_keys_between_flips_the_operator_with_the_sides() {
        let preds = vec![Predicate::join_range(c(0, 0), CmpOp::Lt, c(1, 0))];
        let fwd = range_keys_between(&preds, 0b01, 0b10);
        assert_eq!(fwd, vec![(c(0, 0), CmpOp::Lt, c(1, 0))]);
        let rev = range_keys_between(&preds, 0b10, 0b01);
        assert_eq!(rev, vec![(c(1, 0), CmpOp::Gt, c(0, 0))]);
        // Edges internal to one side never leak out.
        assert!(range_keys_between(&preds, 0b11, 0b100).is_empty());
    }

    #[test]
    fn keyed_joins_carry_ranges_as_residuals() {
        // Equi-key plus inequality on the same table pair: the plan keeps a
        // keyed method and attaches the range as a residual.
        let mk = |rows: f64| {
            TableStatistics::new(
                rows,
                vec![
                    ColumnStatistics::with_domain(rows, 0.0, rows - 1.0),
                    ColumnStatistics::with_domain(rows, 0.0, rows - 1.0),
                ],
            )
        };
        let stats = QueryStatistics::new(vec![mk(1000.0), mk(1000.0)]);
        let preds = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::join_range(c(0, 1), CmpOp::Le, c(1, 1)),
        ];
        let els = Els::prepare(&preds, &stats, &ElsOptions::algorithm_els()).unwrap();
        let profiles =
            vec![TableProfile::synthetic(1000.0, 16), TableProfile::synthetic(1000.0, 16)];
        let r = enumerate_left_deep(&els, &profiles, &NL_SM, &CostParams::default()).unwrap();
        let PlanNode::Join { method, keys, ranges, .. } = &r.root else {
            panic!("expected a join root");
        };
        assert_ne!(*method, JoinMethod::Range, "{}", r.root.explain());
        assert_eq!(keys.len(), 1);
        assert_eq!(ranges.len(), 1);
    }

    #[test]
    fn join_keys_collects_all_closure_edges() {
        let preds = els_core::closure::transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
        ]);
        // Mask {0, 1}, new table 2: keys from both s=... and m=...
        let keys = join_keys(&preds, 0b011, 2);
        assert_eq!(keys.len(), 2);
        for (l, r) in keys {
            assert_eq!(r.table, 2);
            assert!(l.table < 2);
        }
    }

    #[test]
    fn scan_filters_pick_only_this_tables_locals() {
        let preds = vec![
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
            Predicate::local_cmp(c(1, 0), CmpOp::Gt, 5i64),
            Predicate::col_eq(c(0, 0), c(1, 0)),
        ];
        let f0 = scan_filters(&preds, 0).unwrap();
        assert_eq!(f0.len(), 1);
        let f2 = scan_filters(&preds, 2).unwrap();
        assert!(f2.is_empty());
    }

    #[test]
    fn bushy_space_never_costs_more_than_left_deep() {
        let (els, profiles) = section8(&ElsOptions::algorithm_els());
        let ld = enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::LeftDeep)
            .unwrap();
        let bushy =
            enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::Bushy).unwrap();
        assert!(
            bushy.estimated_cost <= ld.estimated_cost + 1e-9,
            "bushy {} > left-deep {}",
            bushy.estimated_cost,
            ld.estimated_cost
        );
        // The bushy winner still estimates 100 at every join node.
        for s in &bushy.estimated_sizes {
            assert!((s - 100.0).abs() < 1e-6, "sizes {:?}", bushy.estimated_sizes);
        }
    }

    #[test]
    fn bushy_helps_disconnected_pair_queries() {
        // Two independent joins (A⋈B) and (C⋈D) linked by nothing until the
        // top: bushy can join the two small results; left-deep must push one
        // pair's result through a cartesian step with a base table first.
        let mk = |rows: f64| {
            TableStatistics::new(rows, vec![ColumnStatistics::with_domain(rows, 0.0, rows - 1.0)])
        };
        let stats = QueryStatistics::new(vec![mk(1000.0), mk(1000.0), mk(1000.0), mk(1000.0)]);
        let preds = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(2, 0), c(3, 0)),
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 10i64),
            Predicate::local_cmp(c(2, 0), CmpOp::Lt, 10i64),
        ];
        let els = Els::prepare(&preds, &stats, &ElsOptions::algorithm_els()).unwrap();
        let profiles: Vec<TableProfile> =
            (0..4).map(|_| TableProfile::synthetic(1000.0, 16)).collect();
        let ld = enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::LeftDeep)
            .unwrap();
        let bushy =
            enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::Bushy).unwrap();
        assert!(bushy.estimated_cost <= ld.estimated_cost + 1e-9);
        // Final estimate is (10 ⋈ 10) × (10 ⋈ 10) = 100 either way.
        assert!((bushy.estimated_sizes.last().unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn node_sizes_matches_estimate_order_on_left_deep_plans() {
        let (els, profiles) = section8(&ElsOptions::algorithm_sm());
        let r = enumerate(&els, &profiles, &NL_SM, &CostParams::default(), TreeShape::LeftDeep)
            .unwrap();
        let expected = els.estimate_order(&r.join_order).unwrap();
        assert_eq!(r.estimated_sizes.len(), expected.len());
        for (a, b) in r.estimated_sizes.iter().zip(&expected) {
            assert!((a - b).abs() <= b.abs() * 1e-12 + 1e-300, "{a} vs {b}");
        }
    }

    #[test]
    fn errors_on_empty_or_oversized_queries() {
        let stats = QueryStatistics::new(vec![]);
        let els = Els::prepare(&[], &stats, &ElsOptions::default()).unwrap();
        assert!(matches!(
            enumerate_left_deep(&els, &[], &NL_SM, &CostParams::default()),
            Err(OptimizerError::Unsupported(_))
        ));
        let stats =
            QueryStatistics::new((0..20).map(|_| TableStatistics::new(1.0, vec![])).collect());
        let els = Els::prepare(&[], &stats, &ElsOptions::default()).unwrap();
        let profiles: Vec<TableProfile> =
            (0..20).map(|_| TableProfile::synthetic(1.0, 8)).collect();
        assert!(matches!(
            enumerate_left_deep(&els, &profiles, &NL_SM, &CostParams::default()),
            Err(OptimizerError::Unsupported(_))
        ));
        let (els, profiles) = section8(&ElsOptions::default());
        assert!(matches!(
            enumerate_left_deep(&els, &profiles, &[], &CostParams::default()),
            Err(OptimizerError::Unsupported(_))
        ));
    }
}
