//! Recursive-descent parser for the SPJ subset.

use els_core::predicate::CmpOp;
use els_storage::Value;

use crate::ast::{ColRefAst, Operand, OrderItemAst, PredicateAst, Projection, Query, TableRefAst};
use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse one query.
pub fn parse(input: &str) -> SqlResult<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, input_len: input.len() };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn position(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.input_len, |t| t.position)
    }

    fn err<T>(&self, message: impl Into<String>) -> SqlResult<T> {
        Err(SqlError::Parse { position: self.position(), message: message.into() })
    }

    fn expect_keyword(&mut self, kw: &str) -> SqlResult<()> {
        match self.peek() {
            Some(k) if k.is_keyword(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => self.err(format!("expected `{kw}`")),
        }
    }

    fn expect_token(&mut self, kind: &TokenKind, what: &str) -> SqlResult<()> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<String> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => self.err(format!("expected {what}")),
        }
    }

    fn query(&mut self) -> SqlResult<Query> {
        self.expect_keyword("SELECT")?;
        let projection = self.projection()?;
        self.expect_keyword("FROM")?;
        let from = self.table_list()?;
        let predicates = if self.peek().is_some_and(|k| k.is_keyword("WHERE")) {
            self.pos += 1;
            self.conjunction()?
        } else {
            Vec::new()
        };
        let group_by = if self.peek().is_some_and(|k| k.is_keyword("GROUP")) {
            self.pos += 1;
            self.expect_keyword("BY")?;
            let mut cols = vec![self.colref()?];
            while self.peek() == Some(&TokenKind::Comma) {
                self.pos += 1;
                cols.push(self.colref()?);
            }
            cols
        } else {
            Vec::new()
        };
        let order_by = if self.peek().is_some_and(|k| k.is_keyword("ORDER")) {
            self.pos += 1;
            self.expect_keyword("BY")?;
            let mut items = vec![self.order_item()?];
            while self.peek() == Some(&TokenKind::Comma) {
                self.pos += 1;
                items.push(self.order_item()?);
            }
            items
        } else {
            Vec::new()
        };
        let limit = if self.peek().is_some_and(|k| k.is_keyword("LIMIT")) {
            self.pos += 1;
            match self.peek() {
                Some(TokenKind::Int(n)) if *n >= 0 => {
                    let n = *n as u64;
                    self.pos += 1;
                    Some(n)
                }
                _ => return self.err("expected a non-negative integer after LIMIT"),
            }
        } else {
            None
        };
        Ok(Query { projection, from, predicates, group_by, order_by, limit })
    }

    fn order_item(&mut self) -> SqlResult<OrderItemAst> {
        let column = self.colref()?;
        let descending = if self.peek().is_some_and(|k| k.is_keyword("DESC")) {
            self.pos += 1;
            true
        } else {
            if self.peek().is_some_and(|k| k.is_keyword("ASC")) {
                self.pos += 1;
            }
            false
        };
        Ok(OrderItemAst { column, descending })
    }

    /// Parse `COUNT ( * )` with `COUNT` already consumed.
    fn count_star_tail(&mut self) -> SqlResult<()> {
        self.expect_token(&TokenKind::LParen, "`(` after COUNT")?;
        self.expect_token(&TokenKind::Star, "`*` in COUNT(*)")?;
        self.expect_token(&TokenKind::RParen, "`)` after COUNT(*")?;
        Ok(())
    }

    fn projection(&mut self) -> SqlResult<Projection> {
        match self.peek() {
            Some(TokenKind::Star) => {
                self.pos += 1;
                Ok(Projection::Star)
            }
            Some(k) if k.is_keyword("COUNT") => {
                self.pos += 1;
                self.count_star_tail()?;
                Ok(Projection::CountStar)
            }
            _ => {
                let mut cols = vec![self.colref()?];
                while self.peek() == Some(&TokenKind::Comma) {
                    self.pos += 1;
                    if self.peek().is_some_and(|k| k.is_keyword("COUNT")) {
                        self.pos += 1;
                        self.count_star_tail()?;
                        return Ok(Projection::ColumnsAndCount(cols));
                    }
                    cols.push(self.colref()?);
                }
                Ok(Projection::Columns(cols))
            }
        }
    }

    fn table_list(&mut self) -> SqlResult<Vec<TableRefAst>> {
        let mut tables = vec![self.table_ref()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            tables.push(self.table_ref()?);
        }
        Ok(tables)
    }

    fn table_ref(&mut self) -> SqlResult<TableRefAst> {
        let name = self.ident("table name")?;
        // Optional alias, with optional AS, but not before a keyword that
        // continues the query.
        let alias = match self.peek() {
            Some(k) if k.is_keyword("AS") => {
                self.pos += 1;
                Some(self.ident("alias after AS")?)
            }
            Some(TokenKind::Ident(s))
                if !s.eq_ignore_ascii_case("WHERE")
                    && !s.eq_ignore_ascii_case("GROUP")
                    && !s.eq_ignore_ascii_case("ORDER")
                    && !s.eq_ignore_ascii_case("LIMIT") =>
            {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        };
        Ok(TableRefAst { name, alias })
    }

    fn conjunction(&mut self) -> SqlResult<Vec<PredicateAst>> {
        let mut preds = self.predicate()?;
        while self.peek().is_some_and(|k| k.is_keyword("AND")) {
            self.pos += 1;
            preds.extend(self.predicate()?);
        }
        Ok(preds)
    }

    /// Parse one textual predicate; `BETWEEN a AND b` desugars into the two
    /// range conjuncts `>= a` and `<= b`.
    fn predicate(&mut self) -> SqlResult<Vec<PredicateAst>> {
        let left = self.operand()?;
        // `x IS [NOT] NULL`.
        if self.peek().is_some_and(|k| k.is_keyword("IS")) {
            self.pos += 1;
            let negated = if self.peek().is_some_and(|k| k.is_keyword("NOT")) {
                self.pos += 1;
                true
            } else {
                false
            };
            if !self.peek().is_some_and(|k| k.is_keyword("NULL")) {
                return self.err("expected NULL after IS [NOT]");
            }
            self.pos += 1;
            return Ok(vec![PredicateAst::IsNull { operand: left, negated }]);
        }
        // `x BETWEEN a AND b`.
        if self.peek().is_some_and(|k| k.is_keyword("BETWEEN")) {
            self.pos += 1;
            let low = self.operand()?;
            if !self.peek().is_some_and(|k| k.is_keyword("AND")) {
                return self.err("expected AND in BETWEEN");
            }
            self.pos += 1;
            let high = self.operand()?;
            return Ok(vec![
                PredicateAst::Cmp { left: left.clone(), op: CmpOp::Ge, right: low },
                PredicateAst::Cmp { left, op: CmpOp::Le, right: high },
            ]);
        }
        let op = self.cmp_op()?;
        let right = self.operand()?;
        Ok(vec![PredicateAst::Cmp { left, op, right }])
    }

    fn cmp_op(&mut self) -> SqlResult<CmpOp> {
        let op = match self.peek() {
            Some(TokenKind::Eq) => CmpOp::Eq,
            Some(TokenKind::Ne) => CmpOp::Ne,
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            _ => return self.err("expected comparison operator"),
        };
        self.pos += 1;
        Ok(op)
    }

    fn operand(&mut self) -> SqlResult<Operand> {
        match self.peek() {
            Some(TokenKind::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(Operand::Literal(Value::Int(v)))
            }
            Some(TokenKind::Float(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(Operand::Literal(Value::Float(v)))
            }
            Some(TokenKind::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Operand::Literal(Value::Str(s)))
            }
            Some(TokenKind::Ident(_)) => Ok(Operand::Column(self.colref()?)),
            _ => self.err("expected column or literal"),
        }
    }

    fn colref(&mut self) -> SqlResult<ColRefAst> {
        let first = self.ident("column reference")?;
        if self.peek() == Some(&TokenKind::Dot) {
            self.pos += 1;
            let column = self.ident("column name after `.`")?;
            Ok(ColRefAst { table: Some(first), column })
        } else {
            Ok(ColRefAst { table: None, column: first })
        }
    }

    fn expect_end(&mut self) -> SqlResult<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_experiment_query() {
        let q =
            parse("SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100")
                .unwrap();
        assert_eq!(q.projection, Projection::CountStar);
        assert_eq!(q.from.len(), 4);
        assert_eq!(q.from[0], TableRefAst { name: "S".into(), alias: None });
        assert_eq!(q.predicates.len(), 4);
        assert_eq!(
            q.predicates[3],
            PredicateAst::Cmp {
                left: Operand::Column(ColRefAst { table: None, column: "s".into() }),
                op: CmpOp::Lt,
                right: Operand::Literal(Value::Int(100)),
            }
        );
    }

    #[test]
    fn parses_example_1a() {
        let q =
            parse("SELECT R_1.a FROM R_1, R_2, R_3 WHERE R_1.x = R_2.y AND R_2.y = R_3.z").unwrap();
        assert_eq!(
            q.projection,
            Projection::Columns(vec![ColRefAst { table: Some("R_1".into()), column: "a".into() }])
        );
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn parses_star_and_no_where() {
        let q = parse("SELECT * FROM t").unwrap();
        assert_eq!(q.projection, Projection::Star);
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn parses_aliases() {
        let q = parse("SELECT o.id FROM orders AS o, lines l WHERE o.id = l.oid").unwrap();
        assert_eq!(q.from[0].binding_name(), "o");
        assert_eq!(q.from[1].binding_name(), "l");
    }

    #[test]
    fn parses_string_and_float_literals() {
        let q = parse("SELECT * FROM t WHERE name = 'bob' AND score >= 1.5").unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert!(matches!(
            &q.predicates[0],
            PredicateAst::Cmp { right: Operand::Literal(Value::Str(s)), .. } if s == "bob"
        ));
        assert!(matches!(
            q.predicates[1],
            PredicateAst::Cmp { right: Operand::Literal(Value::Float(f)), .. } if f == 1.5
        ));
    }

    #[test]
    fn literal_on_the_left_parses() {
        let q = parse("SELECT * FROM t WHERE 100 > x").unwrap();
        assert!(matches!(
            q.predicates[0],
            PredicateAst::Cmp { left: Operand::Literal(Value::Int(100)), .. }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse("FROM t"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SELECT * FROM"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SELECT * FROM t WHERE"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SELECT * FROM t WHERE x ="), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SELECT * FROM t extra junk here"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SELECT COUNT(x) FROM t"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn parses_is_null_and_is_not_null() {
        let q = parse("SELECT * FROM t WHERE x IS NULL AND y IS NOT NULL").unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert!(matches!(&q.predicates[0], PredicateAst::IsNull { negated: false, .. }));
        assert!(matches!(&q.predicates[1], PredicateAst::IsNull { negated: true, .. }));
        assert!(matches!(parse("SELECT * FROM t WHERE x IS 5"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn between_desugars_into_two_ranges() {
        let q = parse("SELECT * FROM t WHERE x BETWEEN 10 AND 20 AND y = 1").unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert!(matches!(
            q.predicates[0],
            PredicateAst::Cmp { op: CmpOp::Ge, right: Operand::Literal(Value::Int(10)), .. }
        ));
        assert!(matches!(
            q.predicates[1],
            PredicateAst::Cmp { op: CmpOp::Le, right: Operand::Literal(Value::Int(20)), .. }
        ));
        assert!(matches!(
            parse("SELECT * FROM t WHERE x BETWEEN 10 OR 20"),
            Err(SqlError::Parse { .. })
        ));
    }

    #[test]
    fn parses_group_by() {
        let q = parse("SELECT v, COUNT(*) FROM t WHERE v > 2 GROUP BY v").unwrap();
        assert_eq!(
            q.projection,
            Projection::ColumnsAndCount(vec![ColRefAst { table: None, column: "v".into() }])
        );
        assert_eq!(q.group_by, vec![ColRefAst { table: None, column: "v".into() }]);
        // Multi-column grouping.
        let q = parse("SELECT a, b, COUNT(*) FROM t GROUP BY a, b").unwrap();
        assert_eq!(q.group_by.len(), 2);
        // GROUP without BY is an error.
        assert!(matches!(parse("SELECT a, COUNT(*) FROM t GROUP a"), Err(SqlError::Parse { .. })));
        // `GROUP` is not eaten as a table alias.
        let q = parse("SELECT a, COUNT(*) FROM t GROUP BY a").unwrap();
        assert_eq!(q.from[0].alias, None);
    }

    #[test]
    fn parses_order_by_and_limit() {
        let q = parse("SELECT a, b FROM t WHERE a > 1 ORDER BY a DESC, b LIMIT 5").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert_eq!(q.limit, Some(5));
        // ASC is accepted and means not-descending.
        let q = parse("SELECT a FROM t ORDER BY a ASC").unwrap();
        assert!(!q.order_by[0].descending);
        // LIMIT needs a number; ORDER needs BY; `ORDER` is not an alias.
        assert!(matches!(parse("SELECT a FROM t LIMIT x"), Err(SqlError::Parse { .. })));
        assert!(matches!(parse("SELECT a FROM t ORDER a"), Err(SqlError::Parse { .. })));
        let q = parse("SELECT a FROM t ORDER BY a").unwrap();
        assert_eq!(q.from[0].alias, None);
    }

    #[test]
    fn keywords_any_case() {
        let q = parse("select count(*) from t where x = 1 and y = 2").unwrap();
        assert_eq!(q.projection, Projection::CountStar);
        assert_eq!(q.predicates.len(), 2);
    }
}
