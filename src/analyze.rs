//! EXPLAIN ANALYZE: the estimation-observability layer.
//!
//! The paper's whole evaluation (Section 8) is a table of *estimated* join
//! result sizes next to *actual* ones; this module closes that loop at
//! runtime. Executing a plan with observations enabled yields per-operator
//! actual cardinalities and wall times; re-running the prepared
//! [`els_core::Els`] estimator over the *same plan tree shape* yields the
//! per-operator estimates the optimizer believed in (works for bushy trees,
//! not just the left-deep chains `estimated_sizes` covers). Each operator
//! then gets the paper's error ratio (`est/act`) and its symmetric folding,
//! the **q-error** `max(est/act, act/est)` (see [`els_core::q_error`]).
//!
//! Reports are recorded into the process-wide
//! [`els_exec::MetricsRegistry`], keyed by selectivity rule, so a long-run
//! accuracy histogram accumulates across queries and engines.

use std::fmt;
use std::time::Duration;

use std::collections::HashMap;

use els_catalog::{FeedbackKey, QueryCorrections};
use els_core::{
    q_error, scan_fingerprint, CardinalityEstimator, Els, ElsResult, JoinState, Predicate,
    SelectivityRule,
};
use els_exec::{ExecMetrics, ExecMode, JoinMethod, MetricsRegistry, Observations, PlanNode};

/// One operator of the analyzed plan: the estimator's belief next to the
/// executor's observation.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// Display label, e.g. `Scan(a)` or `Join<HASH>`.
    pub label: String,
    /// Depth in the plan tree (root = 0); renders as indentation.
    pub depth: usize,
    /// Query tables covered by this operator's subtree, sorted.
    pub tables: Vec<usize>,
    /// True for join operators (the paper's metric is join sizes; scans are
    /// context).
    pub is_join: bool,
    /// The optimizer's estimated output cardinality.
    pub estimated: f64,
    /// The observed output cardinality.
    pub actual: u64,
    /// Inclusive subtree wall time (zero for rescanned inners, whose cost
    /// is charged to their join).
    pub elapsed: Duration,
    /// True for a rescanned inner (NL/INL over a stored table): its
    /// "actual" is the stored row count, not a post-filter cardinality, so
    /// feedback harvesting must not treat it as a scan observation.
    pub rescan: bool,
}

impl OperatorReport {
    /// `max(est/act, act/est)`, both floored at one tuple.
    pub fn q_error(&self) -> f64 {
        q_error(self.estimated, self.actual as f64)
    }

    /// The paper's raw error ratio `est/act` (`> 1` over-estimates,
    /// `< 1` under-estimates; infinite when the actual was zero but the
    /// estimate was not).
    pub fn error_ratio(&self) -> f64 {
        if self.actual == 0 {
            if self.estimated <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.estimated / self.actual as f64
        }
    }
}

/// The result of [`crate::engine::Engine::explain_analyze`]: the executed
/// query, its operator tree with estimated-vs-actual annotations, and the
/// execution metrics. `Display` renders the stable human-readable report.
#[derive(Debug, Clone)]
pub struct ExplainAnalyzeReport {
    /// The SQL as submitted.
    pub sql: String,
    /// Short name of the selectivity rule the estimates used ("LS", "M", …).
    pub rule: String,
    /// The execution mode the actuals were measured under.
    pub mode: ExecMode,
    /// True when the plan came from the engine's plan cache.
    pub cache_hit: bool,
    /// Published feedback corrections the optimizer folded into this
    /// plan's estimates (0 unless it ran under
    /// [`els_catalog::FeedbackMode::Apply`]).
    pub corrections_applied: u64,
    /// Result row count (the count itself for `COUNT(*)`).
    pub result_rows: u64,
    /// Operators in pre-order (root first).
    pub operators: Vec<OperatorReport>,
    /// Whole-query execution metrics.
    pub metrics: ExecMetrics,
}

impl ExplainAnalyzeReport {
    /// The root operator (None only for a degenerate empty plan).
    pub fn root(&self) -> Option<&OperatorReport> {
        self.operators.first()
    }

    /// q-error of the final result size — the paper's headline metric.
    pub fn query_q_error(&self) -> f64 {
        self.root().map_or(1.0, OperatorReport::q_error)
    }

    /// Worst per-operator q-error in the plan.
    pub fn max_q_error(&self) -> f64 {
        self.operators.iter().map(OperatorReport::q_error).fold(1.0, f64::max)
    }

    /// The join operators only (the observations the paper's Section 8
    /// table is made of).
    pub fn join_operators(&self) -> impl Iterator<Item = &OperatorReport> {
        self.operators.iter().filter(|o| o.is_join)
    }

    /// Fold this report into a [`MetricsRegistry`]: one q-error sample per
    /// join operator under this report's rule (the root scan when the query
    /// had no joins), plus the query's kernel counters.
    pub fn record(&self, registry: &MetricsRegistry) {
        let mut recorded = false;
        for op in self.join_operators() {
            registry.record_q_error(&self.rule, op.q_error());
            recorded = true;
        }
        if !recorded {
            if let Some(root) = self.root() {
                registry.record_q_error(&self.rule, root.q_error());
            }
        }
        registry.record_query(&self.metrics);
    }
}

impl fmt::Display for ExplainAnalyzeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            ExecMode::RowAtATime => "row".to_owned(),
            ExecMode::Vectorized { workers } => format!("vectorized({workers})"),
        };
        write!(
            f,
            "EXPLAIN ANALYZE  rule={}  mode={mode}  cache={}",
            self.rule,
            if self.cache_hit { "hit" } else { "miss" }
        )?;
        if self.corrections_applied > 0 {
            write!(f, "  corrected={}", self.corrections_applied)?;
        }
        writeln!(f)?;
        writeln!(f, "query: {}", self.sql)?;
        writeln!(f, "result rows: {}", self.result_rows)?;
        for op in &self.operators {
            writeln!(
                f,
                "{}{}  est={:.1} act={} qerr={:.2} ({:.3}ms)",
                "  ".repeat(op.depth),
                op.label,
                op.estimated,
                op.actual,
                op.q_error(),
                op.elapsed.as_secs_f64() * 1e3,
            )?;
        }
        writeln!(f, "metrics: {}", self.metrics)?;
        writeln!(
            f,
            "query q-error: {:.2} (worst operator: {:.2})",
            self.query_q_error(),
            self.max_q_error()
        )
    }
}

/// Walker state: two observation cursors (scans and joins are separate
/// post-order streams) plus the pre-order operator list under construction.
struct Builder<'a> {
    est: &'a dyn CardinalityEstimator,
    binding_names: &'a [String],
    obs: &'a Observations,
    scan_cursor: usize,
    join_cursor: usize,
    operators: Vec<OperatorReport>,
}

impl Builder<'_> {
    fn table_name(&self, t: usize) -> &str {
        self.binding_names.get(t).map_or("?", |s| s.as_str())
    }

    fn next_scan(&mut self) -> (usize, u64, Duration) {
        let (t, rows) = self.obs.scan_outputs.get(self.scan_cursor).copied().unwrap_or((0, 0));
        let elapsed =
            self.obs.scan_elapsed.get(self.scan_cursor).copied().unwrap_or(Duration::ZERO);
        self.scan_cursor += 1;
        (t, rows, elapsed)
    }

    fn next_join(&mut self) -> (u64, Duration) {
        let rows = self.obs.join_outputs.get(self.join_cursor).map_or(0, |(_, r)| *r);
        let elapsed =
            self.obs.join_elapsed.get(self.join_cursor).copied().unwrap_or(Duration::ZERO);
        self.join_cursor += 1;
        (rows, elapsed)
    }

    /// Walk one plan node, consuming its observations in the exact order
    /// the executor produced them (see `execute_node_observed`) and
    /// recomputing the estimator's belief for the node's subtree. Returns
    /// the estimator state covering the subtree.
    fn walk(&mut self, node: &PlanNode, depth: usize) -> ElsResult<JoinState> {
        match node {
            PlanNode::Scan { table_id, filters } => {
                let state = self.est.initial_state(*table_id)?;
                let (obs_table, actual, elapsed) = self.next_scan();
                debug_assert_eq!(obs_table, *table_id, "scan observation order diverged");
                let mut label = format!("Scan({})", self.table_name(*table_id));
                if !filters.is_empty() {
                    label.push_str(&format!(" [{} filter(s)]", filters.len()));
                }
                self.operators.push(OperatorReport {
                    label,
                    depth,
                    tables: vec![*table_id],
                    is_join: false,
                    estimated: state.cardinality(),
                    actual,
                    elapsed,
                    rescan: false,
                });
                Ok(state)
            }
            PlanNode::Join { method, left, right, .. } => {
                // Reserve the join's pre-order slot before descending.
                let slot = self.operators.len();
                self.operators.push(OperatorReport {
                    label: String::new(),
                    depth,
                    tables: node.tables(),
                    is_join: true,
                    estimated: 0.0,
                    actual: 0,
                    elapsed: Duration::ZERO,
                    rescan: false,
                });
                let l = self.walk(left, depth + 1)?;

                // Rescanning access paths (plain NL over a stored inner,
                // and INL) never execute the inner as a plan node: the
                // executor records the inner's *stored* row count as its
                // scan observation. Mirror that — and estimate it with the
                // original (pre-predicate) cardinality, since that is what
                // the observation measures.
                let rescans_inner = matches!(
                    (method, right.as_ref()),
                    (JoinMethod::NestedLoop, PlanNode::Scan { .. })
                ) || *method == JoinMethod::IndexNestedLoop;
                let r = if rescans_inner {
                    let PlanNode::Scan { table_id, .. } = right.as_ref() else {
                        // INL over a non-scan inner fails execution before
                        // any report is built; estimate it as a plain walk.
                        let r = self.walk(right, depth + 1)?;
                        return self.finish_join(slot, method, &l, &r);
                    };
                    let (obs_table, actual, elapsed) = self.next_scan();
                    debug_assert_eq!(obs_table, *table_id, "rescan observation order diverged");
                    let stored = self.est.original_cardinality(*table_id).unwrap_or(0.0);
                    self.operators.push(OperatorReport {
                        label: format!("Rescan({})", self.table_name(*table_id)),
                        depth: depth + 1,
                        tables: vec![*table_id],
                        is_join: false,
                        estimated: stored,
                        actual,
                        elapsed,
                        rescan: true,
                    });
                    self.est.initial_state(*table_id)?
                } else {
                    self.walk(right, depth + 1)?
                };
                self.finish_join(slot, method, &l, &r)
            }
        }
    }

    /// Fill a reserved join slot from the estimator and the next join
    /// observation.
    fn finish_join(
        &mut self,
        slot: usize,
        method: &JoinMethod,
        l: &JoinState,
        r: &JoinState,
    ) -> ElsResult<JoinState> {
        let state = self.est.join_sets(l, r)?;
        let (actual, elapsed) = self.next_join();
        let names: Vec<String> = self.operators[slot]
            .tables
            .clone()
            .into_iter()
            .map(|t| self.table_name(t).to_owned())
            .collect();
        let op = &mut self.operators[slot];
        op.label = format!("Join<{}> {{{}}}", method.name(), names.join(","));
        op.estimated = state.cardinality();
        op.actual = actual;
        op.elapsed = elapsed;
        Ok(state)
    }
}

/// Build the per-operator report for an executed plan. `est` must be the
/// prepared estimator the optimizer used (it carries the effective
/// statistics the plan was costed with); `obs` the observations from the
/// same plan's execution.
pub fn build_operator_reports(
    plan_root: &PlanNode,
    est: &dyn CardinalityEstimator,
    binding_names: &[String],
    obs: &Observations,
) -> ElsResult<Vec<OperatorReport>> {
    let mut b =
        Builder { est, binding_names, obs, scan_cursor: 0, join_cursor: 0, operators: Vec::new() };
    b.walk(plan_root, 0)?;
    debug_assert_eq!(b.scan_cursor, obs.scan_outputs.len(), "unconsumed scan observations");
    debug_assert_eq!(b.join_cursor, obs.join_outputs.len(), "unconsumed join observations");
    Ok(b.operators)
}

/// The direct children of the join at pre-order index `join`: the operator
/// right after it, and the next operator at the same child depth after that
/// child's subtree.
fn direct_children(operators: &[OperatorReport], join: usize) -> Option<(usize, usize)> {
    let child_depth = operators[join].depth + 1;
    let left = join + 1;
    if operators.get(left)?.depth != child_depth {
        return None;
    }
    let mut right = left + 1;
    while operators.get(right).is_some_and(|o| o.depth > child_depth) {
        right += 1;
    }
    (operators.get(right)?.depth == child_depth).then_some((left, right))
}

/// Harvest one executed query's estimated-vs-actual residuals into the
/// feedback store behind `corrections`. Returns
/// `(observations folded, publications granted)`; any granted publication
/// means the caller should invalidate cached plans (once — publications
/// coalesce into a single epoch bump per query).
///
/// Two residual families, keyed like the corrections the optimizer reads:
///
/// * **Scans** — each filtered scan contributes `actual / estimated` under
///   its `(table, predicate-fingerprint)` key. Unfiltered scans are exact
///   by construction and rescanned inners report stored (pre-filter) row
///   counts, so both are skipped.
/// * **Joins** — a join's raw residual conflates its children's errors;
///   dividing observed join selectivity `act_J / (act_L · act_R)` by the
///   estimated one isolates the join-selectivity error, which is split
///   `e^(1/n)` across the `n` correction *applications* at the step — one
///   per crossing predicate under Rule M, one per linking class under the
///   choosing rules — so replaying the learned factors reproduces `e`. For a
///   join over a rescanned inner — whose post-filter actual is
///   unobservable — the inner's filtered *estimate* stands in on both
///   sides of the ratio, so the inner cancels and the residual measures
///   the join alone.
///
/// `corrected` says whether the plan's estimates already carried published
/// corrections (an `Apply`-mode plan); the store composes them back out so
/// learning always targets the raw estimator error.
pub fn harvest_feedback(
    operators: &[OperatorReport],
    els: &Els,
    corrections: &QueryCorrections,
    corrected: bool,
) -> (u64, u64) {
    let store = corrections.store();
    let mut observed = 0u64;
    let mut published = 0u64;
    for (i, op) in operators.iter().enumerate() {
        if op.rescan {
            continue;
        }
        if !op.is_join {
            let Some(&t) = op.tables.first() else { continue };
            let fingerprint = scan_fingerprint(els.predicates(), t);
            let Some(key) = corrections.scan_key(t, &fingerprint) else { continue };
            observed += 1;
            published += u64::from(store.observe(key, op.estimated, op.actual as f64, corrected));
            continue;
        }
        let Some((l, r)) = direct_children(operators, i) else { continue };
        if op.actual == 0 {
            // An empty observed join: the q-error convention calls a
            // sub-tuple estimate of an empty result exact, and a residual
            // learned from it would only push corrections toward zero.
            continue;
        }
        let (lop, rop) = (&operators[l], &operators[r]);
        // Count how many times the estimator applied each class's
        // correction at this step: corrections scale *predicate*
        // selectivities, so Rule M (which multiplies every eligible
        // predicate) applies a class's factor once per predicate crossing
        // the two children, while the choosing rules (LS/SS/REP) collapse
        // a class's eligible set into one value and apply it once.
        let mut applications: HashMap<FeedbackKey, usize> = HashMap::new();
        for p in els.predicates() {
            match p {
                Predicate::JoinEq { left, right } => {
                    let crosses = (lop.tables.contains(&left.table)
                        && rop.tables.contains(&right.table))
                        || (rop.tables.contains(&left.table) && lop.tables.contains(&right.table));
                    if !crosses {
                        continue;
                    }
                    let Some(class) = els.classes().class_of(*left) else { continue };
                    let Some(key) = corrections.join_key(els.classes().members(class)) else {
                        continue;
                    };
                    *applications.entry(key).or_insert(0) += 1;
                }
                // Inequality edges: applied once per predicate under every
                // rule (range selectivities multiply independently of the
                // equi-join rule's choose-vs-multiply policy), keyed by the
                // canonicalized `(column, op, column)` triple.
                Predicate::JoinRange { left, op, right } => {
                    let crosses = (lop.tables.contains(&left.table)
                        && rop.tables.contains(&right.table))
                        || (rop.tables.contains(&left.table) && lop.tables.contains(&right.table));
                    if !crosses {
                        continue;
                    }
                    let Some(key) = corrections.range_key(*left, *op, *right) else { continue };
                    *applications.entry(key).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        if applications.is_empty() {
            // A cartesian step (or classes the key schema cannot name):
            // nothing the optimizer could re-apply, so nothing to learn.
            continue;
        }
        let total = if els.options().rule == SelectivityRule::Multiplicative {
            applications.values().sum::<usize>()
        } else {
            applications.len()
        };
        // A rescanned inner reports its *stored* row count; the post-filter
        // actual is unobservable. Substitute the estimator's filtered
        // cardinality on both sides of the ratio so the inner cancels out —
        // the residual then reads "join output given the left child", which
        // is exact whenever the inner's local estimate is (and the scan key
        // tracks that error separately when it is not).
        let (r_est, r_act) = if rop.rescan {
            let filtered = rop
                .tables
                .first()
                .and_then(|&t| els.effective_cardinality(t).ok())
                .unwrap_or(rop.estimated);
            (filtered, filtered)
        } else {
            (rop.estimated, rop.actual as f64)
        };
        // Actual cardinalities are at least one tuple here; estimates are
        // floored at a sub-tuple epsilon instead — flooring a collapsed
        // estimate (Rule M's 1e-9 "rows") up to one tuple would erase
        // exactly the under-estimation the loop exists to correct.
        const EST_FLOOR: f64 = 1e-6;
        let act_sel =
            (op.actual as f64).max(1.0) / ((lop.actual as f64).max(1.0) * r_act.max(EST_FLOOR));
        let est_sel =
            op.estimated.max(EST_FLOOR) / (lop.estimated.max(EST_FLOOR) * r_est.max(EST_FLOOR));
        let ratio = (act_sel / est_sel).powf(1.0 / total as f64);
        for key in applications.into_keys() {
            observed += 1;
            published += u64::from(store.observe_ratio(key, ratio, corrected));
        }
    }
    (observed, published)
}
