//! Effect of local predicates on table and column cardinalities
//! (Algorithm ELS, Step 4; paper Section 5).
//!
//! After Step 3 has resolved the constant predicates on each column, this
//! module computes, per table:
//!
//! * the **effective table cardinality** ‖R‖′ = ‖R‖ · ∏ S_c (product over
//!   the per-column resolved selectivities, independence assumption), and
//! * the **effective column cardinality** d′ of every column:
//!   * a column constrained by its own equality predicate has d′ = 1;
//!   * a column constrained by its own range predicates has d′ = d · S_c
//!     (paper: "d_y′ = d_y × S_L");
//!   * any column is additionally bounded by the urn model
//!     d′ ≤ ⌈d·(1−(1−1/d)^‖R‖′)⌉ — the paper's treatment of columns *other*
//!     than the predicate column, generalized here to several predicate
//!     columns by taking the minimum of the own-predicate bound and the urn
//!     bound (each is an upper bound on the surviving distinct count);
//!   * nothing exceeds ‖R‖′ (a table cannot hold fewer rows than distinct
//!     values).
//!
//! After this step the rest of the algorithm deals exclusively with join
//! predicates (paper, end of Section 5): the original statistics are
//! retained alongside for the *standard* (pre-ELS) estimation mode and for
//! access-cost calculations.

use std::collections::HashMap;

use crate::correction::{scan_fingerprint, CorrectionSource, NoCorrections};
use crate::error::{ElsError, ElsResult};
use crate::float::exactly_zero;
use crate::ids::ColumnRef;
use crate::predicate::Predicate;
use crate::selectivity::{resolve_column_predicates, ResolvedShape, SelectivityOracle};
use crate::stats::QueryStatistics;
use crate::urn;

/// Which distinct-value reduction model to use for columns that are reduced
/// indirectly (by predicates on *other* columns). The paper argues for the
/// urn model; the proportional alternative is kept for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistinctReduction {
    /// The paper's urn model (Section 5).
    #[default]
    UrnModel,
    /// The "other common estimate" d′ = d · ‖R‖′/‖R‖ the paper criticizes.
    Proportional,
}

/// Post-Step-4 statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveTable {
    /// ‖R‖ before local predicates.
    pub original_cardinality: f64,
    /// ‖R‖′ after local predicates.
    pub cardinality: f64,
    /// d′ per column (indexed by column position).
    pub column_distinct: Vec<f64>,
    /// Original d per column, kept for the standard estimation mode.
    pub original_distinct: Vec<f64>,
    /// Combined selectivity of all local constant predicates on this table.
    pub local_selectivity: f64,
    /// True when the local predicates are contradictory (empty table).
    pub contradiction: bool,
}

/// Post-Step-4 statistics for the whole query.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveStats {
    /// Per-table effective statistics, in `FROM`-list order.
    pub tables: Vec<EffectiveTable>,
}

impl EffectiveStats {
    /// Effective cardinality ‖R‖′ of a table (0.0 for an unknown table —
    /// an out-of-range lookup degrades, it does not panic).
    pub fn cardinality(&self, table: usize) -> f64 {
        self.tables.get(table).map_or(0.0, |t| t.cardinality)
    }

    /// Effective distinct count d′ of a column (0.0 when unknown).
    pub fn distinct(&self, c: ColumnRef) -> f64 {
        self.tables
            .get(c.table)
            .and_then(|t| t.column_distinct.get(c.column))
            .copied()
            // els-lint: allow(numeric-discipline, "documented degrade-don't-panic API: 0.0 distinct values for an unknown column is the doc-comment contract, and join_sel treats 0 as 'no join support'")
            .unwrap_or(0.0)
    }

    /// Original (pre-predicate) distinct count of a column (0.0 when
    /// unknown).
    pub fn original_distinct(&self, c: ColumnRef) -> f64 {
        self.tables
            .get(c.table)
            .and_then(|t| t.original_distinct.get(c.column))
            .copied()
            // els-lint: allow(numeric-discipline, "documented degrade-don't-panic API: same 0.0-when-unknown contract as EffectiveStats::distinct above")
            .unwrap_or(0.0)
    }
}

/// Compute Step 4 for all tables. `predicates` must already be deduplicated
/// (and normally closed under transitivity, so that derived filters like the
/// Section 8 `m < 100` are present). Only [`Predicate::LocalCmp`] conjuncts
/// are consumed here; local column equalities are the business of Step 5
/// ([`crate::same_table`]).
pub fn compute_effective_stats(
    predicates: &[Predicate],
    stats: &QueryStatistics,
    oracle: &dyn SelectivityOracle,
    reduction: DistinctReduction,
) -> ElsResult<EffectiveStats> {
    compute_effective_stats_corrected(predicates, stats, oracle, reduction, &NoCorrections)
}

/// [`compute_effective_stats`] with a feedback hook: after a table's local
/// selectivity is resolved, a published scan correction (keyed by the
/// table's [`scan_fingerprint`]) is multiplied in and the product clamped
/// back into `[0, 1]`, so learned corrections adjust ‖R‖′ — and,
/// downstream, the urn bounds — without touching the Step 3/4 machinery.
pub fn compute_effective_stats_corrected(
    predicates: &[Predicate],
    stats: &QueryStatistics,
    oracle: &dyn SelectivityOracle,
    reduction: DistinctReduction,
    corrections: &dyn CorrectionSource,
) -> ElsResult<EffectiveStats> {
    stats.validate()?;
    let shape = stats.shape();
    for p in predicates {
        p.validate(&shape)?;
    }

    // Bucket constant predicates by column; collect nullness tests apart
    // (they are not comparisons and compose differently).
    let mut by_column: HashMap<ColumnRef, Vec<(crate::predicate::CmpOp, els_storage::Value)>> =
        HashMap::new();
    let mut null_tests: HashMap<ColumnRef, (bool, bool)> = HashMap::new(); // (is_null, is_not_null)
    for p in predicates {
        match p {
            Predicate::LocalCmp { column, op, value } => {
                by_column.entry(*column).or_default().push((*op, value.clone()));
            }
            Predicate::IsNull { column, negated } => {
                let e = null_tests.entry(*column).or_insert((false, false));
                if *negated {
                    e.1 = true;
                } else {
                    e.0 = true;
                }
            }
            _ => {}
        }
    }

    let mut tables = Vec::with_capacity(stats.tables.len());
    for (t, tstats) in stats.tables.iter().enumerate() {
        let ncols = tstats.columns.len();
        let mut table_sel = 1.0f64;
        let mut contradiction = false;
        // Resolve each column's own predicates: `(selectivity, bound)` per
        // column, in column order.
        let mut own: Vec<(f64, Option<f64>)> = Vec::with_capacity(ncols);
        for (c, cstats) in tstats.columns.iter().enumerate() {
            let cref = ColumnRef::new(t, c);
            let has_cmp = by_column.contains_key(&cref);
            let mut own_sel = 1.0f64;
            let mut own_bound: Option<f64> = None;
            // Nullness tests first: `IS NULL` conflicts with any comparison
            // (comparisons require a non-NULL value) and with IS NOT NULL;
            // `IS NOT NULL` is redundant next to a comparison (the model
            // selectivities already carry the non-NULL factor).
            if let Some(&(is_null, is_not_null)) = null_tests.get(&cref) {
                if is_null {
                    if is_not_null || has_cmp || exactly_zero(cstats.null_fraction) {
                        contradiction = true;
                    } else {
                        table_sel *= cstats.null_fraction;
                        own_sel *= cstats.null_fraction;
                        // Only NULL rows remain: the column carries no
                        // joinable values at all.
                        own_bound = Some(0.0);
                    }
                } else if is_not_null && !has_cmp {
                    let sel = 1.0 - cstats.null_fraction;
                    table_sel *= sel;
                    own_sel *= sel;
                    // Every distinct (non-NULL) value survives.
                    own_bound = Some(cstats.distinct);
                }
            }
            if let Some(preds) = by_column.get(&cref) {
                let resolved = resolve_column_predicates(cref, cstats, preds, oracle);
                table_sel *= resolved.selectivity;
                own_sel *= resolved.selectivity;
                match resolved.shape {
                    ResolvedShape::Contradiction => contradiction = true,
                    ResolvedShape::Equality(_) => own_bound = Some(1.0),
                    ResolvedShape::Range => {
                        own_bound = Some(cstats.distinct * resolved.selectivity)
                    }
                    ResolvedShape::Unconstrained => {}
                }
            }
            own.push((own_sel, own_bound));
        }

        // Feedback hook: fold a learned scan correction into the table's
        // combined local selectivity (clamped — a correction can never
        // resurrect more rows than the table holds). Unfiltered tables
        // have an empty fingerprint and are never corrected: their
        // estimate is the exact row count.
        if !contradiction {
            let fingerprint = scan_fingerprint(predicates, t);
            if !fingerprint.is_empty() {
                if let Some(corr) = corrections.scan_correction(t, &fingerprint) {
                    if corr.is_finite() && corr > 0.0 {
                        table_sel = (table_sel * corr).clamp(0.0, 1.0);
                    }
                }
            }
        }

        let original = tstats.cardinality;
        let cardinality = if contradiction { 0.0 } else { original * table_sel };
        // `stats.validate()` vetted the base statistics, but a misbehaving
        // oracle can still return a NaN or negative selectivity; catch the
        // poison here rather than letting it flow into the urn model (which
        // used to swallow it as a silent 0.0 estimate).
        if !cardinality.is_finite() || cardinality < 0.0 {
            return Err(ElsError::DegenerateStats(format!(
                "effective cardinality of table R{t} is {cardinality} \
                 (selectivity {table_sel} on {original} rows)"
            )));
        }

        let mut column_distinct = Vec::with_capacity(ncols);
        for (cstats, &(own_sel, own_bound)) in tstats.columns.iter().zip(&own) {
            let d = cstats.distinct;
            // Selectivity contributed by predicates on *other* columns.
            let other_sel = if own_sel > 0.0 { table_sel / own_sel } else { 0.0 };
            let d_prime = if contradiction || exactly_zero(cardinality) {
                0.0
            } else if cardinality >= original {
                // No reduction at all: keep d exactly.
                d
            } else if other_sel >= 1.0 - 1e-12 {
                // Reduction comes only from this column's own predicates:
                // the paper's exact rule (d' = 1 for equality, d·S for
                // ranges) applies with no urn shaving.
                own_bound.unwrap_or(d)
            } else {
                // Other columns shrank the table too: the urn bound with the
                // final ||R||' captures their effect; own predicates give an
                // independent upper bound. Both hold, so take the minimum.
                let indirect = match reduction {
                    DistinctReduction::UrnModel => urn::expected_distinct_rounded(d, cardinality)?,
                    DistinctReduction::Proportional => {
                        urn::proportional_distinct(d, cardinality, original)?
                    }
                };
                match own_bound {
                    Some(own) => own.min(indirect),
                    None => indirect,
                }
            };
            column_distinct.push(d_prime.min(cardinality.max(0.0)).min(d));
        }

        tables.push(EffectiveTable {
            original_cardinality: original,
            cardinality,
            column_distinct,
            original_distinct: tstats.columns.iter().map(|c| c.distinct).collect(),
            local_selectivity: if contradiction { 0.0 } else { table_sel },
            contradiction,
        });
    }
    Ok(EffectiveStats { tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::selectivity::NoOracle;
    use crate::stats::{ColumnStatistics, TableStatistics};

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    /// One table, ||R|| rows, sequential-style columns with given d.
    fn one_table(rows: f64, ds: &[f64]) -> QueryStatistics {
        QueryStatistics::new(vec![TableStatistics::new(
            rows,
            ds.iter().map(|&d| ColumnStatistics::with_domain(d, 0.0, d - 1.0)).collect(),
        )])
    }

    #[test]
    fn no_predicates_changes_nothing() {
        let stats = one_table(1000.0, &[100.0, 1000.0]);
        let eff =
            compute_effective_stats(&[], &stats, &NoOracle, DistinctReduction::UrnModel).unwrap();
        assert_eq!(eff.cardinality(0), 1000.0);
        assert_eq!(eff.distinct(c(0, 0)), 100.0);
        assert_eq!(eff.distinct(c(0, 1)), 1000.0);
        assert_eq!(eff.tables[0].local_selectivity, 1.0);
    }

    #[test]
    fn section8_filter_on_s() {
        // ||S|| = 1000, d_s = 1000, s < 100 -> ||S||' = 100, d_s' = 100.
        let stats = one_table(1000.0, &[1000.0]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64)];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert_eq!(eff.cardinality(0), 100.0);
        assert_eq!(eff.distinct(c(0, 0)), 100.0);
        assert_eq!(eff.tables[0].local_selectivity, 0.1);
    }

    #[test]
    fn equality_predicate_pins_distinct_to_one() {
        let stats = one_table(1000.0, &[100.0, 500.0]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Eq, 7i64)];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        // ||R||' = 1000/100 = 10 (uniformity), d0' = 1.
        assert_eq!(eff.cardinality(0), 10.0);
        assert_eq!(eff.distinct(c(0, 0)), 1.0);
        // The untouched column is urn-reduced: urn(500, 10) = 10 (ceil) —
        // ten tuples can hold at most ten distinct values.
        assert!(eff.distinct(c(0, 1)) <= 10.0);
        assert!(eff.distinct(c(0, 1)) >= 9.0);
    }

    #[test]
    fn paper_section5_urn_numbers() {
        // d_x = 10000, ||R|| = 100000, local predicate halves the table:
        // urn gives 9933, proportional gives 5000.
        let stats = one_table(100_000.0, &[10_000.0, 100_000.0]);
        // Predicate on column 1 (a key) keeping half the rows: v < 50000.
        let preds = vec![Predicate::local_cmp(c(0, 1), CmpOp::Lt, 50_000i64)];
        let eff_urn =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                .unwrap();
        assert_eq!(eff_urn.cardinality(0), 50_000.0);
        assert_eq!(eff_urn.distinct(c(0, 0)), 9933.0);
        let eff_prop =
            compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::Proportional)
                .unwrap();
        assert_eq!(eff_prop.distinct(c(0, 0)), 5000.0);
    }

    #[test]
    fn own_range_reduction_is_linear_not_urn() {
        // Paper: d_y' = d_y * S_L for the predicate column itself, even when
        // d_y equals ||R|| (where the urn model would shave ~37%).
        let stats = one_table(1000.0, &[1000.0]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64)];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert_eq!(eff.distinct(c(0, 0)), 100.0);
    }

    #[test]
    fn contradiction_empties_the_table() {
        let stats = one_table(1000.0, &[100.0, 50.0]);
        let preds = vec![
            Predicate::local_cmp(c(0, 0), CmpOp::Eq, 5i64),
            Predicate::local_cmp(c(0, 0), CmpOp::Eq, 6i64),
        ];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert!(eff.tables[0].contradiction);
        assert_eq!(eff.cardinality(0), 0.0);
        assert_eq!(eff.distinct(c(0, 0)), 0.0);
        assert_eq!(eff.distinct(c(0, 1)), 0.0);
    }

    #[test]
    fn predicates_on_two_columns_compound() {
        // Two independent 0.1-selectivity filters: ||R||' = 10.
        let stats = one_table(1000.0, &[1000.0, 1000.0, 200.0]);
        let preds = vec![
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64),
            Predicate::local_cmp(c(0, 1), CmpOp::Lt, 100i64),
        ];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert!((eff.cardinality(0) - 10.0).abs() < 1e-9);
        // Own bound for column 0 is 100, but only 10 rows remain.
        assert!(eff.distinct(c(0, 0)) <= 10.0);
        // The bystander column is urn-bounded by the 10 surviving rows.
        assert!(eff.distinct(c(0, 2)) <= 10.0);
    }

    #[test]
    fn distinct_never_exceeds_rows_or_original() {
        let stats = one_table(100.0, &[100.0]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Le, 999i64)];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert!(eff.distinct(c(0, 0)) <= 100.0);
        assert!(eff.distinct(c(0, 0)) <= eff.cardinality(0));
    }

    #[test]
    fn multiple_tables_processed_independently() {
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(1000.0, vec![ColumnStatistics::with_domain(1000.0, 0.0, 999.0)]),
            TableStatistics::new(500.0, vec![ColumnStatistics::with_domain(500.0, 0.0, 499.0)]),
        ]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64)];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert_eq!(eff.cardinality(0), 100.0);
        assert_eq!(eff.cardinality(1), 500.0);
        assert_eq!(eff.distinct(c(1, 0)), 500.0);
    }

    #[test]
    fn is_null_keeps_only_the_null_fraction() {
        let mut stats = one_table(1000.0, &[100.0, 50.0]);
        stats.tables[0].columns[0].null_fraction = 0.2;
        let preds = vec![Predicate::is_null(c(0, 0))];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert_eq!(eff.cardinality(0), 200.0);
        // The IS NULL column carries no joinable values.
        assert_eq!(eff.distinct(c(0, 0)), 0.0);
        // Bystander columns shrink with the table.
        assert!(eff.distinct(c(0, 1)) <= 200.0);
    }

    #[test]
    fn is_not_null_scales_by_complement() {
        let mut stats = one_table(1000.0, &[100.0]);
        stats.tables[0].columns[0].null_fraction = 0.25;
        let preds = vec![Predicate::is_not_null(c(0, 0))];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert_eq!(eff.cardinality(0), 750.0);
        // All distinct (non-NULL) values survive.
        assert_eq!(eff.distinct(c(0, 0)), 100.0);
    }

    #[test]
    fn is_null_conflicts_with_comparisons_and_not_null() {
        let mut stats = one_table(1000.0, &[100.0]);
        stats.tables[0].columns[0].null_fraction = 0.2;
        for extra in
            [Predicate::local_cmp(c(0, 0), CmpOp::Lt, 10i64), Predicate::is_not_null(c(0, 0))]
        {
            let preds = vec![Predicate::is_null(c(0, 0)), extra];
            let eff =
                compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
                    .unwrap();
            assert!(eff.tables[0].contradiction);
            assert_eq!(eff.cardinality(0), 0.0);
        }
        // IS NULL on a column with no NULLs empties the table too.
        let stats = one_table(1000.0, &[100.0]);
        let preds = vec![Predicate::is_null(c(0, 0))];
        let eff = compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert_eq!(eff.cardinality(0), 0.0);
    }

    #[test]
    fn is_not_null_is_redundant_next_to_a_comparison() {
        // The model selectivity of a comparison already carries (1 - nf);
        // adding IS NOT NULL must not double-count it.
        let mut stats = one_table(1000.0, &[1000.0]);
        stats.tables[0].columns[0].null_fraction = 0.5;
        let cmp_only = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64)];
        let both =
            vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64), Predicate::is_not_null(c(0, 0))];
        let a = compute_effective_stats(&cmp_only, &stats, &NoOracle, DistinctReduction::UrnModel)
            .unwrap();
        let b =
            compute_effective_stats(&both, &stats, &NoOracle, DistinctReduction::UrnModel).unwrap();
        assert_eq!(a.cardinality(0), b.cardinality(0));
    }

    #[test]
    fn nan_oracle_selectivity_is_a_typed_error_not_a_zero_estimate() {
        // A custom oracle returning NaN used to flow through table_sel into
        // the urn model, which silently emitted 0.0 — a confident "empty
        // table" estimate from garbage input. It must now surface as
        // DegenerateStats.
        struct NanOracle;
        impl crate::selectivity::SelectivityOracle for NanOracle {
            fn local_selectivity(
                &self,
                _column: ColumnRef,
                _op: CmpOp,
                _value: &els_storage::Value,
            ) -> Option<f64> {
                Some(f64::NAN)
            }
        }
        let stats = one_table(1000.0, &[100.0, 500.0]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 10i64)];
        let err = compute_effective_stats(&preds, &stats, &NanOracle, DistinctReduction::UrnModel)
            .unwrap_err();
        assert!(
            matches!(err, crate::error::ElsError::DegenerateStats(_)),
            "expected DegenerateStats, got {err:?}"
        );
        assert!(err.to_string().contains("R0"), "error must name the table: {err}");
    }

    #[test]
    fn negative_oracle_selectivity_clamps_to_empty_not_garbage() {
        // Out-of-range (but finite) oracle answers are clamped into [0, 1]
        // at resolution time, so a negative selectivity degrades to "no rows
        // survive" — a defensible answer — rather than a negative
        // cardinality or an error.
        struct NegOracle;
        impl crate::selectivity::SelectivityOracle for NegOracle {
            fn local_selectivity(
                &self,
                _column: ColumnRef,
                _op: CmpOp,
                _value: &els_storage::Value,
            ) -> Option<f64> {
                Some(-0.5)
            }
        }
        let stats = one_table(1000.0, &[100.0]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 10i64)];
        let eff = compute_effective_stats(&preds, &stats, &NegOracle, DistinctReduction::UrnModel)
            .unwrap();
        assert_eq!(eff.cardinality(0), 0.0);
        assert_eq!(eff.distinct(c(0, 0)), 0.0);
    }

    #[test]
    fn scan_corrections_scale_the_local_selectivity() {
        struct Fixed(f64);
        impl crate::correction::CorrectionSource for Fixed {
            fn scan_correction(&self, table: usize, fingerprint: &str) -> Option<f64> {
                assert_eq!(table, 0);
                assert_eq!(fingerprint, "c0<100");
                Some(self.0)
            }
            fn join_correction(&self, _: &[ColumnRef]) -> Option<f64> {
                None
            }
        }
        let stats = one_table(1000.0, &[1000.0]);
        let preds = vec![Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64)];
        let eff = crate::local_effects::compute_effective_stats_corrected(
            &preds,
            &stats,
            &NoOracle,
            DistinctReduction::UrnModel,
            &Fixed(3.0),
        )
        .unwrap();
        // Uncorrected: 0.1 · 1000 = 100; corrected: 0.3 · 1000 = 300.
        assert!((eff.cardinality(0) - 300.0).abs() < 1e-9, "got {}", eff.cardinality(0));
        assert!((eff.tables[0].local_selectivity - 0.3).abs() < 1e-12);
        // Corrections clamp into [0, 1]: a 100x factor caps at the full
        // table, and degenerate factors are ignored.
        let eff = crate::local_effects::compute_effective_stats_corrected(
            &preds,
            &stats,
            &NoOracle,
            DistinctReduction::UrnModel,
            &Fixed(100.0),
        )
        .unwrap();
        assert_eq!(eff.cardinality(0), 1000.0);
        for bad in [f64::NAN, 0.0, -2.0, f64::INFINITY] {
            let eff = crate::local_effects::compute_effective_stats_corrected(
                &preds,
                &stats,
                &NoOracle,
                DistinctReduction::UrnModel,
                &Fixed(bad),
            )
            .unwrap();
            assert_eq!(eff.cardinality(0), 100.0, "correction {bad} must be ignored");
        }
    }

    #[test]
    fn unfiltered_tables_are_never_corrected() {
        struct Panicky;
        impl crate::correction::CorrectionSource for Panicky {
            fn scan_correction(&self, _: usize, _: &str) -> Option<f64> {
                panic!("scan_correction must not be called without local predicates");
            }
            fn join_correction(&self, _: &[ColumnRef]) -> Option<f64> {
                None
            }
        }
        let stats = one_table(1000.0, &[100.0]);
        let eff = crate::local_effects::compute_effective_stats_corrected(
            &[],
            &stats,
            &NoOracle,
            DistinctReduction::UrnModel,
            &Panicky,
        )
        .unwrap();
        assert_eq!(eff.cardinality(0), 1000.0);
    }

    #[test]
    fn invalid_predicate_indices_are_rejected() {
        let stats = one_table(10.0, &[10.0]);
        let preds = vec![Predicate::local_cmp(c(2, 0), CmpOp::Eq, 1i64)];
        assert!(compute_effective_stats(&preds, &stats, &NoOracle, DistinctReduction::UrnModel)
            .is_err());
    }
}
