//! End-to-end tests of `explain_analyze`: the per-operator
//! estimated-vs-actual report, its stability across execution modes, and
//! its aggregation into the global metrics registry.

use els::engine::{Database, Engine};
use els::exec::{ExecMode, MetricsRegistry};
use els::storage::datagen::starburst_experiment_tables_sized;

const SECTION8_SQL: &str =
    "SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND s < 100";

fn section8_engine(workers: usize) -> Engine {
    let engine = Engine::new().exec_workers(workers);
    for t in starburst_experiment_tables_sized(42, &[1_000, 10_000, 20_000, 30_000]) {
        engine.register(t).unwrap();
    }
    engine
}

#[test]
fn section8_report_has_per_operator_estimates_and_actuals() {
    let engine = section8_engine(1);
    let report = engine.explain_analyze(SECTION8_SQL).unwrap();

    // Four scans + three joins, root first.
    assert_eq!(report.operators.len(), 7, "{report}");
    assert_eq!(report.join_operators().count(), 3, "{report}");
    let root = report.root().unwrap();
    assert!(root.is_join, "{report}");
    assert_eq!(root.tables, vec![0, 1, 2, 3], "{report}");

    // Containment holds by construction, so `s < 100` makes every join
    // produce exactly 100 rows and ELS gets each one exactly right.
    assert_eq!(report.result_rows, 100, "{report}");
    assert_eq!(root.actual, 100, "{report}");
    assert_eq!(report.query_q_error(), 1.0, "{report}");
    for op in report.join_operators() {
        assert_eq!(op.actual, 100, "{report}");
        assert_eq!(op.q_error(), 1.0, "{report}");
        assert_eq!(op.error_ratio(), 1.0, "{report}");
    }
    assert_eq!(report.rule, "LS", "ELS defaults to rule LS");
}

#[test]
fn actuals_are_identical_across_execution_modes() {
    let serial = section8_engine(1).explain_analyze(SECTION8_SQL).unwrap();
    let parallel = section8_engine(4).explain_analyze(SECTION8_SQL).unwrap();
    assert_eq!(serial.mode, ExecMode::Vectorized { workers: 1 });
    assert_eq!(parallel.mode, ExecMode::Vectorized { workers: 4 });

    let mut db = Database::new();
    for t in starburst_experiment_tables_sized(42, &[1_000, 10_000, 20_000, 30_000]) {
        db.register(t).unwrap();
    }
    db.set_exec_mode(ExecMode::RowAtATime);
    let row = db.explain_analyze(SECTION8_SQL).unwrap();
    assert_eq!(row.mode, ExecMode::RowAtATime);

    for other in [&parallel, &row] {
        assert_eq!(serial.operators.len(), other.operators.len());
        for (a, b) in serial.operators.iter().zip(&other.operators) {
            assert_eq!(a.actual, b.actual, "{}: actuals diverged across modes", a.label);
            assert_eq!(a.tables, b.tables, "{}: operator order diverged", a.label);
        }
    }
}

#[test]
fn display_renders_the_annotated_tree() {
    let engine = section8_engine(1);
    let text = engine.explain_analyze(SECTION8_SQL).unwrap().to_string();
    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
    assert!(text.contains("est="), "{text}");
    assert!(text.contains("act="), "{text}");
    assert!(text.contains("qerr="), "{text}");
    assert!(text.contains("Scan(S"), "{text}");
    assert!(text.contains("Join<"), "{text}");
    assert!(text.contains("rule=LS"), "{text}");
}

#[test]
fn second_analysis_hits_the_plan_cache_and_feeds_the_registry() {
    let engine = section8_engine(1);
    let before = MetricsRegistry::global().q_error_histogram("LS").map_or(0, |h| h.count());
    let cold = engine.explain_analyze(SECTION8_SQL).unwrap();
    assert!(!cold.cache_hit);
    let warm = engine.explain_analyze(SECTION8_SQL).unwrap();
    assert!(warm.cache_hit, "second analysis should reuse the cached plan");
    assert_eq!(cold.operators.len(), warm.operators.len());
    let after = MetricsRegistry::global().q_error_histogram("LS").map_or(0, |h| h.count());
    // Each analysis records one sample per join; other tests share the
    // registry, so assert a lower bound rather than an exact delta.
    assert!(after >= before + 6, "expected >= 6 new LS samples, {before} -> {after}");
}
