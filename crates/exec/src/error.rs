//! Error type for the executor.

use std::fmt;

use els_core::ColumnRef;

/// Errors raised while building or executing a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A plan node referenced a table id with no registered data.
    UnknownTable(usize),
    /// A column reference did not resolve in an intermediate schema.
    ColumnNotInSchema(ColumnRef),
    /// Underlying storage failure.
    Storage(String),
    /// A plan was structurally invalid (e.g. join key columns on the wrong
    /// side).
    InvalidPlan(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "no data registered for table {t}"),
            ExecError::ColumnNotInSchema(c) => {
                write!(f, "column {c} not present in intermediate schema")
            }
            ExecError::Storage(m) => write!(f, "storage error: {m}"),
            ExecError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<els_storage::StorageError> for ExecError {
    fn from(e: els_storage::StorageError) -> Self {
        ExecError::Storage(e.to_string())
    }
}

/// Result alias for this crate.
pub type ExecResult<T> = Result<T, ExecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(ExecError::UnknownTable(2).to_string().contains('2'));
        assert!(ExecError::ColumnNotInSchema(ColumnRef::new(0, 1)).to_string().contains("R0.c1"));
    }
}
