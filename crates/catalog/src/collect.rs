//! Statistics collection (the ANALYZE pass).
//!
//! Collection is exact for row counts, distinct counts, min/max and the
//! NULL fraction — at the scales of the paper's experiment a full scan is
//! cheap, and exact base statistics isolate the estimation-*algorithm*
//! comparison from sampling noise (the paper's Section 8 likewise assumes
//! exact catalog statistics). Histograms and MCV lists are optional.

use els_storage::{Table, Value};

use crate::error::{CatalogError, CatalogResult};
use crate::histogram::{Histogram, MostCommonValues};
use crate::stats::{ColumnStats, TableStats};

/// Which histogram flavour to collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistogramKind {
    /// No histogram.
    None,
    /// Equi-width buckets.
    EquiWidth,
    /// Equi-depth buckets (the default when histograms are requested).
    #[default]
    EquiDepth,
}

/// Row sampling for cheap (approximate) statistics collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingOptions {
    /// Bernoulli sampling probability in `(0, 1]`.
    pub fraction: f64,
    /// RNG seed (collection stays deterministic).
    pub seed: u64,
}

/// Options for one collection pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectOptions {
    /// Histogram flavour for numeric columns.
    pub histogram: HistogramKind,
    /// Bucket count for histograms.
    pub histogram_buckets: usize,
    /// Number of most-common values to track (0 = none).
    pub mcv_size: usize,
    /// When set, per-column statistics come from a Bernoulli row sample
    /// (row count stays exact — counting is cheap — but distinct counts are
    /// estimated, domain bounds may clip, and histograms describe the
    /// sample).
    pub sampling: Option<SamplingOptions>,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            histogram: HistogramKind::None,
            histogram_buckets: 32,
            mcv_size: 0,
            sampling: None,
        }
    }
}

impl CollectOptions {
    /// Collect equi-depth histograms and an MCV list — the full-statistics
    /// configuration used by the skew experiments.
    pub fn full() -> Self {
        CollectOptions {
            histogram: HistogramKind::EquiDepth,
            histogram_buckets: 32,
            mcv_size: 16,
            ..CollectOptions::default()
        }
    }

    /// Sampled collection at the given fraction (builder style). The
    /// fraction is checked by [`CollectOptions::validate`] at registration
    /// time (the fallible path), not here.
    #[must_use]
    pub fn with_sampling(mut self, fraction: f64, seed: u64) -> Self {
        self.sampling = Some(SamplingOptions { fraction, seed });
        self
    }

    /// Check the options are usable. The Bernoulli sampling fraction must
    /// be in `(0, 1]`: NaN or non-positive fractions silently select no
    /// rows (empty sample, `distinct = 0` garbage), and fractions above one
    /// claim precision the sample does not have.
    pub fn validate(&self) -> CatalogResult<()> {
        if let Some(s) = self.sampling {
            if !(s.fraction > 0.0 && s.fraction <= 1.0) {
                return Err(CatalogError::InvalidOptions(format!(
                    "sampling fraction must be in (0, 1], got {}",
                    s.fraction
                )));
            }
        }
        Ok(())
    }
}

/// Distinct-count identity of a non-NULL value. Keying the sample's
/// distinct set on `to_string()` is wrong for floats: `-0.0` and `0.0`
/// render differently yet compare equal (inflating the count the urn
/// inversion amplifies), and display formatting drops trailing zeros,
/// conflating an integer-valued float column with differently-typed
/// twins. `-0.0` is normalized to `0.0`; all other floats key on their
/// bit pattern.
#[derive(PartialEq, Eq, Hash)]
enum DistinctKey<'a> {
    Int(i64),
    Float(u64),
    Str(&'a str),
}

fn distinct_key(v: &Value) -> Option<DistinctKey<'_>> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(DistinctKey::Int(*i)),
        Value::Float(x) => {
            let normalized = if *x == 0.0 { 0.0 } else { *x };
            Some(DistinctKey::Float(normalized.to_bits()))
        }
        Value::Str(s) => Some(DistinctKey::Str(s)),
    }
}

/// Estimate a column's distinct count from a sample, by inverting the urn
/// model of the paper's Section 5: assuming each of `D` values carries
/// `N/D` uniformly scattered copies, the expected distinct count in a
/// `k`-row sample is `E[d_s] = D·(1 − (1 − k/N)^(N/D))`; binary-search the
/// `D ∈ [d_s, N]` matching the observation. (This is the same model the
/// estimator itself trusts, so sampled statistics stay internally
/// consistent with it.)
pub fn estimate_distinct_from_sample(d_sample: f64, sample_rows: f64, total_rows: f64) -> f64 {
    if d_sample <= 0.0 || sample_rows <= 0.0 || total_rows <= 0.0 {
        return 0.0;
    }
    if sample_rows >= total_rows {
        return d_sample;
    }
    let f = sample_rows / total_rows;
    let expected = |d: f64| -> f64 {
        // (1-f)^(N/D) via exp/ln for stability.
        let per_value = total_rows / d;
        d * (1.0 - ((1.0 - f).ln() * per_value).exp())
    };
    let (mut lo, mut hi) = (d_sample, total_rows);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < d_sample {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Scan `table` (or a Bernoulli sample of it) and compute its statistics.
pub fn collect_table_stats(table: &Table, options: &CollectOptions) -> TableStats {
    // Choose the rows statistics are computed over.
    let sampled_rows: Option<Vec<usize>> = options.sampling.map(|s| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(s.seed);
        (0..table.num_rows()).filter(|_| rng.gen::<f64>() < s.fraction).collect()
    });

    let columns = table
        .columns()
        .iter()
        .map(|col| {
            // Materialize the values under consideration (all, or sample).
            let values: Vec<_> = match &sampled_rows {
                None => col.iter().collect(),
                Some(rows) => {
                    // Sampled indices come from `0..num_rows`; an
                    // out-of-range read (impossible) degrades to NULL.
                    rows.iter().map(|&r| col.get(r).unwrap_or(els_storage::Value::Null)).collect()
                }
            };
            let rows = values.len();
            let nulls = values.iter().filter(|v| v.is_null()).count();
            let null_fraction = if rows == 0 { 0.0 } else { nulls as f64 / rows as f64 };
            let mut min: Option<els_storage::Value> = None;
            let mut max: Option<els_storage::Value> = None;
            for v in values.iter().filter(|v| !v.is_null()) {
                if min.as_ref().is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Less) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Greater) {
                    max = Some(v.clone());
                }
            }
            // Distinct: exact on a full scan; urn-inverted on a sample.
            let distinct = match &sampled_rows {
                None => col.distinct_count() as f64,
                Some(_) => {
                    use std::collections::HashSet;
                    let seen =
                        values.iter().filter_map(distinct_key).collect::<HashSet<_>>().len() as f64;
                    estimate_distinct_from_sample(seen, rows as f64, table.num_rows() as f64)
                        .round()
                }
            };
            // Numeric projection for distribution statistics.
            let numeric: Vec<f64> =
                values.iter().filter(|v| !v.is_null()).filter_map(|v| v.as_f64()).collect();
            let histogram = match options.histogram {
                HistogramKind::None => None,
                HistogramKind::EquiWidth => {
                    Histogram::equi_width(&numeric, options.histogram_buckets)
                }
                HistogramKind::EquiDepth => {
                    Histogram::equi_depth(&numeric, options.histogram_buckets)
                }
            };
            let mcv = if options.mcv_size > 0 {
                MostCommonValues::build(&numeric, options.mcv_size)
            } else {
                None
            };
            // Max frequency (UES upper bounds): exact on a full scan. A
            // sample can only lower-bound the true maximum, and a too-low
            // MF would void the bound guarantee — so sampled collection
            // omits the statistic and the bound estimator falls back to
            // its worst case, ‖R‖ − d + 1.
            let max_frequency = match &sampled_rows {
                None => {
                    use std::collections::HashMap;
                    let mut counts: HashMap<DistinctKey<'_>, u64> = HashMap::new();
                    for k in values.iter().filter_map(distinct_key) {
                        *counts.entry(k).or_insert(0) += 1;
                    }
                    Some(counts.values().copied().max().unwrap_or(0) as f64)
                }
                Some(_) => None,
            };
            ColumnStats { distinct, min, max, null_fraction, histogram, mcv, max_frequency }
        })
        .collect();
    TableStats { row_count: table.num_rows(), columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};
    use els_storage::Value;

    #[test]
    fn exact_statistics_on_sequential_column() {
        let t = TableSpec::new("t", 500)
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 100 }))
            .generate(3);
        let stats = collect_table_stats(&t, &CollectOptions::default());
        assert_eq!(stats.row_count, 500);
        let c = &stats.columns[0];
        assert_eq!(c.distinct, 500.0);
        assert_eq!(c.min, Some(Value::Int(100)));
        assert_eq!(c.max, Some(Value::Int(599)));
        assert_eq!(c.null_fraction, 0.0);
        assert!(c.histogram.is_none());
        assert!(c.mcv.is_none());
    }

    #[test]
    fn null_fraction_is_counted() {
        let t = TableSpec::new("t", 1000)
            .column(ColumnSpec::new(
                "v",
                Distribution::WithNulls {
                    inner: Box::new(Distribution::ConstInt { value: 3 }),
                    null_fraction: 0.5,
                },
            ))
            .generate(5);
        let stats = collect_table_stats(&t, &CollectOptions::default());
        let c = &stats.columns[0];
        assert!((c.null_fraction - 0.5).abs() < 0.1);
        assert_eq!(c.distinct, 1.0);
    }

    #[test]
    fn full_options_collect_histogram_and_mcv() {
        let t = TableSpec::new("t", 2000)
            .column(ColumnSpec::new("z", Distribution::ZipfInt { n: 100, theta: 1.2, start: 0 }))
            .generate(7);
        let stats = collect_table_stats(&t, &CollectOptions::full());
        let c = &stats.columns[0];
        let h = c.histogram.as_ref().expect("histogram collected");
        assert_eq!(h.total_count(), 2000);
        let mcv = c.mcv.as_ref().expect("mcv collected");
        // Rank 0 dominates a theta=1.2 Zipf sample.
        let s = mcv.eq_selectivity(0.0).expect("hot value tracked");
        assert!(s > 0.1, "hot value selectivity {s}");
    }

    #[test]
    fn string_columns_get_no_distribution_stats() {
        let t = TableSpec::new("t", 100)
            .column(ColumnSpec::new("s", Distribution::StrTag { prefix: "p".into(), modulus: 5 }))
            .generate(1);
        let stats = collect_table_stats(&t, &CollectOptions::full());
        let c = &stats.columns[0];
        assert!(c.histogram.is_none());
        assert!(c.mcv.is_none());
        assert_eq!(c.distinct, 5.0);
        assert_eq!(c.min, Some(Value::from("p0")));
    }

    #[test]
    fn urn_inversion_recovers_distinct_counts() {
        // A sample seeing d_s distinct values in k of N rows inverts back
        // to within ~15% of the true D across a range of duplication.
        for (d_true, per_value) in [(100u64, 100u64), (1000, 20), (5000, 4)] {
            let n = d_true * per_value;
            let t = TableSpec::new("t", n as usize)
                .column(ColumnSpec::new("v", Distribution::CycleInt { modulus: d_true, start: 0 }))
                .generate(1);
            let opts = CollectOptions::default().with_sampling(0.2, 7);
            let stats = collect_table_stats(&t, &opts);
            let est = stats.columns[0].distinct;
            let rel = (est - d_true as f64).abs() / d_true as f64;
            assert!(rel < 0.15, "d_true {d_true}: estimated {est} ({:.1}% off)", rel * 100.0);
            // Row count stays exact.
            assert_eq!(stats.row_count, n as usize);
        }
    }

    #[test]
    fn sampled_null_fraction_is_close() {
        let t = TableSpec::new("t", 20_000)
            .column(ColumnSpec::new(
                "v",
                Distribution::WithNulls {
                    inner: Box::new(Distribution::UniformInt { lo: 0, hi: 99 }),
                    null_fraction: 0.3,
                },
            ))
            .generate(3);
        let stats = collect_table_stats(&t, &CollectOptions::default().with_sampling(0.25, 11));
        assert!((stats.columns[0].null_fraction - 0.3).abs() < 0.05);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = TableSpec::new("t", 5000)
            .column(ColumnSpec::new("v", Distribution::UniformInt { lo: 0, hi: 499 }))
            .generate(5);
        let a = collect_table_stats(&t, &CollectOptions::default().with_sampling(0.1, 42));
        let b = collect_table_stats(&t, &CollectOptions::default().with_sampling(0.1, 42));
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_distinct_edge_cases() {
        use super::estimate_distinct_from_sample;
        assert_eq!(estimate_distinct_from_sample(0.0, 100.0, 1000.0), 0.0);
        assert_eq!(estimate_distinct_from_sample(50.0, 1000.0, 1000.0), 50.0);
        // A key column: every sampled row distinct -> estimate near N.
        let est = estimate_distinct_from_sample(100.0, 100.0, 1000.0);
        assert!(est > 500.0, "key-column estimate {est} too low");
        // Heavy duplication: 10 distinct in a big sample -> stays near 10.
        let est = estimate_distinct_from_sample(10.0, 5000.0, 10_000.0);
        assert!((est - 10.0).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn invalid_sampling_fractions_are_rejected() {
        for bad in [f64::NAN, 0.0, -0.5, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let err = CollectOptions::default().with_sampling(bad, 1).validate().unwrap_err();
            assert!(matches!(err, CatalogError::InvalidOptions(_)), "fraction {bad} gave {err:?}");
        }
        for good in [f64::MIN_POSITIVE, 0.5, 1.0] {
            CollectOptions::default().with_sampling(good, 1).validate().unwrap();
        }
        CollectOptions::default().validate().unwrap();
        CollectOptions::full().validate().unwrap();
    }

    #[test]
    fn sampled_distinct_uses_value_identity_not_formatting() {
        // -0.0 and 0.0 compare equal but render as "-0" and "0": the old
        // string-keyed sample saw two distinct values in a one-value column.
        use els_storage::ColumnVector;
        let n = 4000;
        let col = ColumnVector::from_floats((0..n).map(|i| if i % 2 == 0 { 0.0 } else { -0.0 }));
        let t = Table::new("t", vec![("v".into(), col)]).unwrap();
        let opts = CollectOptions::default().with_sampling(0.5, 9);
        let stats = collect_table_stats(&t, &opts);
        assert_eq!(stats.columns[0].distinct, 1.0, "float zeros must count once");
    }

    #[test]
    fn max_frequency_is_exact_on_full_scans() {
        // CycleInt over 10 values in 1000 rows: every value occurs exactly
        // 100 times; a key column has MF = 1.
        let t = TableSpec::new("t", 1000)
            .column(ColumnSpec::new("c", Distribution::CycleInt { modulus: 10, start: 0 }))
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
            .generate(1);
        let stats = collect_table_stats(&t, &CollectOptions::default());
        assert_eq!(stats.columns[0].max_frequency, Some(100.0));
        assert_eq!(stats.columns[1].max_frequency, Some(1.0));
    }

    #[test]
    fn max_frequency_skips_nulls_and_is_absent_under_sampling() {
        let t = TableSpec::new("t", 1000)
            .column(ColumnSpec::new(
                "v",
                Distribution::WithNulls {
                    inner: Box::new(Distribution::ConstInt { value: 3 }),
                    null_fraction: 0.5,
                },
            ))
            .generate(5);
        let full = collect_table_stats(&t, &CollectOptions::default());
        let mf = full.columns[0].max_frequency.expect("collected on full scan");
        // Only the non-NULL rows count toward the most common value.
        let non_null = (1000.0 * (1.0 - full.columns[0].null_fraction)).round();
        assert_eq!(mf, non_null);
        // Sampling cannot upper-bound the true MF: the statistic is omitted.
        let sampled = collect_table_stats(&t, &CollectOptions::default().with_sampling(0.5, 3));
        assert_eq!(sampled.columns[0].max_frequency, None);
    }

    #[test]
    fn empty_table_collects_zeroes() {
        let t = els_storage::Table::empty("e", &[("a", els_storage::DataType::Int)]);
        let stats = collect_table_stats(&t, &CollectOptions::full());
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.columns[0].distinct, 0.0);
        assert!(stats.columns[0].histogram.is_none());
    }
}
