//! Shared, concurrently readable catalog state.
//!
//! [`SharedCatalog`] wraps a [`Catalog`] for multi-threaded serving: readers
//! take an immutable [`CatalogSnapshot`] (an `Arc<Catalog>` plus the *epoch*
//! at which it was published) and then run entirely lock-free — binding,
//! optimization and execution all happen against the snapshot, never against
//! shared mutable state. Writers copy the current catalog, apply their
//! change, and publish the result under a short write lock, bumping the
//! epoch.
//!
//! The epoch is the invalidation token for everything derived from catalog
//! contents (statistics, plans): a cached artifact stamped with epoch `e` is
//! valid exactly while `shared.epoch() == e`. The plan cache in
//! `els-optimizer` keys on it.

use std::sync::{Arc, RwLock};

use els_storage::Table;

use els_core::sync::{read_recovering, write_recovering};

use crate::catalog::Catalog;
use crate::collect::CollectOptions;
use crate::error::CatalogResult;

/// An immutable view of the catalog as of one publication.
///
/// Cloning is two `Arc`-count bumps; holding a snapshot never blocks
/// writers (they publish a *new* catalog instead of mutating this one).
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    catalog: Arc<Catalog>,
    epoch: u64,
}

impl CatalogSnapshot {
    /// The catalog contents at this epoch.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl std::ops::Deref for CatalogSnapshot {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.catalog
    }
}

/// A catalog shared between serving threads: snapshot-on-read,
/// copy-on-write with a monotonically increasing epoch.
///
/// ```
/// use els_catalog::SharedCatalog;
/// use els_storage::datagen::{TableSpec, ColumnSpec, Distribution};
///
/// let shared = SharedCatalog::new();
/// let before = shared.snapshot();
/// shared.register(
///     TableSpec::new("t", 100)
///         .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
///         .generate(1),
///     &Default::default(),
/// ).unwrap();
/// let after = shared.snapshot();
/// assert_eq!(before.len(), 0);        // old snapshots are immutable
/// assert_eq!(after.len(), 1);
/// assert!(after.epoch() > before.epoch());
/// ```
#[derive(Debug, Default)]
pub struct SharedCatalog {
    // The Arc and the epoch must change together, so both live under one
    // lock; readers only hold it long enough to clone the Arc.
    state: RwLock<Versioned>,
}

#[derive(Debug, Default)]
struct Versioned {
    catalog: Arc<Catalog>,
    epoch: u64,
}

impl SharedCatalog {
    /// An empty shared catalog at epoch 0.
    pub fn new() -> SharedCatalog {
        SharedCatalog::default()
    }

    /// Wrap an already-populated catalog (epoch starts at 0).
    pub fn from_catalog(catalog: Catalog) -> SharedCatalog {
        SharedCatalog { state: RwLock::new(Versioned { catalog: Arc::new(catalog), epoch: 0 }) }
    }

    /// The current contents + epoch. Readers work from this and never
    /// contend with each other.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let state = read_recovering(&self.state);
        CatalogSnapshot { catalog: Arc::clone(&state.catalog), epoch: state.epoch }
    }

    /// The current epoch (advances by at least 1 on every mutation).
    pub fn epoch(&self) -> u64 {
        read_recovering(&self.state).epoch
    }

    /// Register a table (copy-on-write publish; bumps the epoch on
    /// success). Existing snapshots are unaffected.
    pub fn register(&self, table: Table, options: &CollectOptions) -> CatalogResult<()> {
        self.try_update(|catalog| catalog.register(table, options))
    }

    /// Apply an arbitrary mutation to a private copy of the catalog and
    /// publish it, bumping the epoch. Use for statistics refreshes or
    /// multi-table changes that must appear atomically.
    pub fn update<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        let mut state = write_recovering(&self.state);
        let mut next = (*state.catalog).clone();
        let out = f(&mut next);
        state.catalog = Arc::new(next);
        state.epoch += 1;
        out
    }

    /// Like [`SharedCatalog::update`] but publishes (and bumps the epoch)
    /// only when the mutation succeeds.
    pub fn try_update<R, E>(&self, f: impl FnOnce(&mut Catalog) -> Result<R, E>) -> Result<R, E> {
        let mut state = write_recovering(&self.state);
        let mut next = (*state.catalog).clone();
        let out = f(&mut next)?;
        state.catalog = Arc::new(next);
        state.epoch += 1;
        Ok(out)
    }

    /// Bump the epoch without changing contents, forcing every consumer of
    /// epoch-stamped artifacts (e.g. cached plans) to rebuild. The escape
    /// hatch for invalidation causes the epoch cannot see, such as edited
    /// cost-model constants.
    pub fn invalidate(&self) {
        write_recovering(&self.state).epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

    fn table(name: &str, rows: usize) -> Table {
        TableSpec::new(name, rows)
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
            .generate(7)
    }

    #[test]
    fn snapshots_are_immutable_and_epoch_advances() {
        let shared = SharedCatalog::new();
        assert_eq!(shared.epoch(), 0);
        let s0 = shared.snapshot();
        shared.register(table("a", 10), &CollectOptions::default()).unwrap();
        let s1 = shared.snapshot();
        shared.register(table("b", 20), &CollectOptions::default()).unwrap();
        assert_eq!(s0.len(), 0);
        assert_eq!(s1.len(), 1);
        assert_eq!(shared.snapshot().len(), 2);
        assert!(s0.epoch() < s1.epoch());
        assert_eq!(shared.epoch(), 2);
    }

    #[test]
    fn failed_mutation_does_not_bump_the_epoch() {
        let shared = SharedCatalog::new();
        shared.register(table("a", 10), &CollectOptions::default()).unwrap();
        let before = shared.epoch();
        let dup = shared.register(table("a", 10), &CollectOptions::default());
        assert!(dup.is_err());
        assert_eq!(shared.epoch(), before);
    }

    #[test]
    fn invalidate_bumps_without_content_change() {
        let shared = SharedCatalog::from_catalog(Catalog::new());
        let before = shared.epoch();
        shared.invalidate();
        assert_eq!(shared.epoch(), before + 1);
        assert_eq!(shared.snapshot().len(), 0);
    }

    #[test]
    fn update_publishes_atomically() {
        let shared = SharedCatalog::new();
        shared.update(|catalog| {
            catalog.register(table("a", 5), &CollectOptions::default()).unwrap();
            catalog.register(table("b", 5), &CollectOptions::default()).unwrap();
        });
        assert_eq!(shared.epoch(), 1);
        assert_eq!(shared.snapshot().len(), 2);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let shared = SharedCatalog::new();
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let shared = &shared;
                scope.spawn(move || {
                    shared
                        .register(table(&format!("t{i}"), 10), &CollectOptions::default())
                        .unwrap();
                });
            }
            for _ in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    for _ in 0..100 {
                        let snap = shared.snapshot();
                        // A snapshot is internally consistent: every listed
                        // table resolves.
                        for name in snap.table_names() {
                            assert!(snap.table_data(name).is_ok());
                        }
                    }
                });
            }
        });
        assert_eq!(shared.snapshot().len(), 4);
        assert_eq!(shared.epoch(), 4);
    }
}
