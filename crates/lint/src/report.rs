//! Human and JSON reports.
//!
//! The human report leads with the per-lint delta against the baseline —
//! the line `scripts/check.sh` surfaces — then lists anything that fails
//! the run. The JSON report carries the full structured outcome for
//! tooling.

use std::fmt::Write as _;

use crate::passes::Violation;
use crate::{per_lint_summary, Outcome};

/// Render the human report.
pub fn human(outcome: &Outcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "els-lint: scanned {} library source files", outcome.files_scanned);
    let _ = writeln!(
        s,
        "  {:<20} {:>8} {:>9} {:>11} {:>7}",
        "lint", "current", "baseline", "suppressed", "delta"
    );
    for (lint, (current, baselined, suppressed)) in per_lint_summary(outcome) {
        let delta = current as i64 - baselined as i64;
        let delta = match delta {
            0 => "0".to_string(),
            d if d > 0 => format!("+{d}"),
            d => d.to_string(),
        };
        let _ = writeln!(
            s,
            "  {:<20} {:>8} {:>9} {:>11} {:>7}",
            lint, current, baselined, suppressed, delta
        );
    }
    let slack: Vec<String> = slack_lines(outcome);
    if !slack.is_empty() {
        let _ = writeln!(
            s,
            "  ratchet slack (counts below baseline — tighten with --baseline-update):"
        );
        for line in slack {
            let _ = writeln!(s, "    {line}");
        }
    }
    for e in &outcome.hard_errors {
        let _ = writeln!(s, "error: {}:{}: {}", e.file, e.line, e.message);
    }
    for v in &outcome.new_violations {
        let _ = writeln!(s, "new violation: {}", format_violation(v));
    }
    if outcome.is_ok() {
        let _ = writeln!(s, "els-lint: OK (no new violations)");
    } else {
        let _ = writeln!(
            s,
            "els-lint: FAILED ({} new violation(s), {} error(s))",
            outcome.new_violations.len(),
            outcome.hard_errors.len()
        );
    }
    s
}

fn format_violation(v: &Violation) -> String {
    format!("{}:{}:{}: [{}] {}", v.file, v.line, v.col, v.lint.name(), v.message)
}

/// Per-(lint, file) entries where the tree is now cleaner than the
/// baseline admits.
fn slack_lines(outcome: &Outcome) -> Vec<String> {
    let mut out = Vec::new();
    for (lint, files) in &outcome.baseline {
        for (file, &allowed) in files {
            let current = outcome.counts.get(lint).and_then(|f| f.get(file)).copied().unwrap_or(0);
            if current < allowed {
                out.push(format!("{lint}: {file}: {current} (baseline allows {allowed})"));
            }
        }
    }
    out
}

/// Render the JSON report.
pub fn json(outcome: &Outcome) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", outcome.files_scanned);
    let _ = writeln!(s, "  \"ok\": {},", outcome.is_ok());
    s.push_str("  \"lints\": {\n");
    let summary = per_lint_summary(outcome);
    for (i, (lint, (current, baselined, suppressed))) in summary.iter().enumerate() {
        let comma = if i + 1 < summary.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {}: {{\"current\": {}, \"baseline\": {}, \"suppressed\": {}}}{}",
            quote(lint),
            current,
            baselined,
            suppressed,
            comma
        );
    }
    s.push_str("  },\n");
    s.push_str("  \"new_violations\": [\n");
    for (i, v) in outcome.new_violations.iter().enumerate() {
        let comma = if i + 1 < outcome.new_violations.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}{}",
            quote(v.lint.name()),
            quote(&v.file),
            v.line,
            v.col,
            quote(&v.message),
            comma
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"lock_order\": {\n    \"order\": [");
    for (i, class) in outcome.lock_order.iter().enumerate() {
        let comma = if i + 1 < outcome.lock_order.len() { ", " } else { "" };
        let _ = write!(s, "{}{}", quote(class), comma);
    }
    s.push_str("],\n    \"edges\": [\n");
    for (i, e) in outcome.lock_edges.iter().enumerate() {
        let comma = if i + 1 < outcome.lock_edges.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}, \"via\": {}}}{}",
            quote(&e.from),
            quote(&e.to),
            quote(&e.file),
            e.line,
            quote(&e.via),
            comma
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"panic_paths\": [\n");
    for (i, p) in outcome.panic_paths.iter().enumerate() {
        let comma = if i + 1 < outcome.panic_paths.len() { "," } else { "" };
        let path: Vec<String> = p.path.iter().map(|f| quote(f)).collect();
        let _ = writeln!(
            s,
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"what\": {}, \"path\": [{}]}}{}",
            quote(&p.file),
            p.line,
            p.col,
            quote(&p.what),
            path.join(", "),
            comma
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"errors\": [\n");
    for (i, e) in outcome.hard_errors.iter().enumerate() {
        let comma = if i + 1 < outcome.hard_errors.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"file\": {}, \"line\": {}, \"message\": {}}}{}",
            quote(&e.file),
            e.line,
            quote(&e.message),
            comma
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn quote(s: &str) -> String {
    let mut out = String::from('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
