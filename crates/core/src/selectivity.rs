//! Local-predicate selectivities (Algorithm ELS, Step 3).
//!
//! Each local predicate `R.x op c` is assigned a selectivity. Uniformity is
//! *not* assumed for local predicates when better information exists: a
//! [`SelectivityOracle`] (implemented over histograms by `els-catalog`) is
//! consulted first, and only on a miss does estimation fall back to the
//! discrete-uniform-domain model below.
//!
//! **Model.** A column with distinct count `d`, minimum `min` and maximum
//! `max` is modelled as `d` equally spaced values on `[min, max]` (the
//! uniformity assumption made concrete). Selectivities of range predicates
//! are then exact set counts over that grid — e.g. the paper's Section 8
//! filter `s < 100` over `d_s = 1000` sequential values `0..999` gets
//! selectivity exactly `0.1`. When no domain bounds are known the classic
//! System-R default of 1/3 per range predicate applies.
//!
//! **Multiple predicates on one column.** Following the paper's companion
//! report [16] (Section 4, step 3): if any *equality* predicate exists, the
//! most restrictive consistent equality wins (contradictory constants make
//! the column — and the whole conjunct — empty); otherwise the *tightest
//! pair of range bounds* is kept. `<>` predicates contribute their
//! complement selectivity multiplicatively and never constrain the bounds.

use els_storage::Value;

use crate::ids::ColumnRef;
use crate::predicate::CmpOp;
use crate::stats::ColumnStatistics;

/// Default selectivity of a range predicate when nothing is known about the
/// column's domain (System R's classic 1/3).
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Default selectivity of an equality predicate when even the distinct count
/// is unknown or zero (System R's classic 1/10).
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

/// Default selectivity of an inequality join predicate `L op R` when neither
/// histograms nor domain bounds are known — same 1/3 convention as local
/// range predicates.
pub const DEFAULT_RANGE_JOIN_SELECTIVITY: f64 = 1.0 / 3.0;

/// Hook for distribution statistics (histograms, most-common values).
///
/// `els-core` calls this before applying its uniform model; a `Some(s)`
/// answer is used as-is. Implementations must return selectivities of the
/// predicate against the **base** table (before any other predicate).
pub trait SelectivityOracle {
    /// Selectivity in `[0, 1]` of `column op value`, if this oracle knows.
    fn local_selectivity(&self, column: ColumnRef, op: CmpOp, value: &Value) -> Option<f64>;

    /// Selectivity in `[0, 1]` of the inequality join `left op right` over
    /// the cross product of the two base tables, if this oracle knows —
    /// histogram implementations integrate `fraction_below`/`fraction_equal`
    /// of one side over the other side's buckets. Default: unknown.
    fn join_range_selectivity(&self, left: ColumnRef, op: CmpOp, right: ColumnRef) -> Option<f64> {
        let _ = (left, op, right);
        None
    }
}

/// An oracle that knows nothing; estimation always falls back to the
/// uniform-domain model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl SelectivityOracle for NoOracle {
    fn local_selectivity(&self, _: ColumnRef, _: CmpOp, _: &Value) -> Option<f64> {
        None
    }
}

/// Uniform-domain model for an inequality join `L op R`: both columns are
/// modelled as uniform on their `[min, max]` domains (the same assumption
/// [`model_selectivity`] makes for local ranges), which gives `P(L < R)` in
/// closed form; `P(L = R)` reuses Equation 2's `1 / max(d1, d2)` when the
/// domains overlap. NULLs never satisfy a comparison, so both null
/// fractions scale the result. Falls back to
/// [`DEFAULT_RANGE_JOIN_SELECTIVITY`] when either domain is unknown.
pub fn model_join_range_selectivity(
    left: &ColumnStatistics,
    op: CmpOp,
    right: &ColumnStatistics,
) -> f64 {
    debug_assert!(op.is_range(), "model_join_range_selectivity wants a range operator");
    let non_null = (1.0 - left.null_fraction) * (1.0 - right.null_fraction);
    let (Some(a), Some(b), Some(c), Some(d)) = (left.min, left.max, right.min, right.max) else {
        return (DEFAULT_RANGE_JOIN_SELECTIVITY * non_null).clamp(0.0, 1.0);
    };
    if !(a.is_finite() && b.is_finite() && c.is_finite() && d.is_finite()) || b < a || d < c {
        return (DEFAULT_RANGE_JOIN_SELECTIVITY * non_null).clamp(0.0, 1.0);
    }
    // Mass on the diagonal: zero when the domains are disjoint, Equation 2's
    // containment bound otherwise. The continuous integral below splits that
    // mass evenly between `<` and `>`, so half of it is moved out of each
    // strict side — for two identical d-point grids this reproduces the
    // exact discrete answers (d−1)/2d, 1/d, (d−1)/2d.
    let eq = if b < c || d < a {
        0.0
    } else if b <= a && d <= c {
        // Two overlapping point domains are the same single value.
        1.0
    } else {
        crate::join_sel::join_selectivity(left.distinct.max(1.0), right.distinct.max(1.0))
    };
    let lt = (uniform_prob_less(a, b, c, d) - eq / 2.0).max(0.0);
    let gt = (uniform_prob_less(c, d, a, b) - eq / 2.0).max(0.0);
    let sel = match op {
        CmpOp::Lt => lt,
        CmpOp::Le => lt + eq,
        CmpOp::Gt => gt,
        CmpOp::Ge => gt + eq,
        CmpOp::Eq | CmpOp::Ne => unreachable!("guarded by is_range"),
    };
    (sel * non_null).clamp(0.0, 1.0)
}

/// `P(L < R)` for independent `L ~ U[a, b]`, `R ~ U[c, d]`, handling
/// degenerate (single-point) intervals. Computed as the average of
/// `F_L(r) = P(L < r)` over `[c, d]`.
fn uniform_prob_less(a: f64, b: f64, c: f64, d: f64) -> f64 {
    // Degenerate right side: a point mass at c.
    if d <= c {
        return if b <= a {
            if a < c {
                1.0
            } else {
                0.0
            }
        } else {
            ((c - a) / (b - a)).clamp(0.0, 1.0)
        };
    }
    // Degenerate left side: F_L(r) = [r > a].
    if b <= a {
        return ((d - a.max(c)) / (d - c)).clamp(0.0, 1.0);
    }
    // Piecewise integral of F_L over [c, d]: zero below a, linear ramp on
    // [a, b], one above b.
    let lo = c.max(a);
    let hi = d.min(b);
    let mut integral = 0.0;
    if hi > lo {
        integral += ((hi - a).powi(2) - (lo - a).powi(2)) / (2.0 * (b - a));
    }
    if d > b {
        integral += d - b.max(c);
    }
    (integral / (d - c)).clamp(0.0, 1.0)
}

/// What the per-column resolution of Step 3 decided.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedShape {
    /// No constant predicate on this column.
    Unconstrained,
    /// A single consistent equality `x = value`; the column cardinality
    /// after the predicate is 1 (paper, Section 5).
    Equality(Value),
    /// A (possibly one-sided) range; column cardinality scales with the
    /// selectivity (`d' = d · S_L`, paper Section 5).
    Range,
    /// The predicates contradict each other — the table is empty.
    Contradiction,
}

/// Result of resolving all constant predicates on one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedColumn {
    /// Combined selectivity of the retained predicates.
    pub selectivity: f64,
    /// The retained shape, which drives the column-cardinality update.
    pub shape: ResolvedShape,
}

/// Selectivity of a single `column op value` under the uniform-domain model
/// (oracle misses handled by the caller). Always in `[0, 1]`.
/// # Examples
///
/// The Section 8 filter `s < 100` over 1000 sequential values:
///
/// ```
/// use els_core::{selectivity::model_selectivity, ColumnStatistics, CmpOp};
/// use els_storage::Value;
/// let stats = ColumnStatistics::with_domain(1000.0, 0.0, 999.0);
/// assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(100)), 0.1);
/// ```
pub fn model_selectivity(stats: &ColumnStatistics, op: CmpOp, value: &Value) -> f64 {
    let non_null = 1.0 - stats.null_fraction;
    let d = stats.distinct;
    let sel = match op {
        CmpOp::Eq => {
            if d <= 0.0 {
                DEFAULT_EQ_SELECTIVITY
            } else if out_of_domain(stats, value) {
                0.0
            } else {
                1.0 / d
            }
        }
        CmpOp::Ne => {
            if d <= 0.0 {
                1.0 - DEFAULT_EQ_SELECTIVITY
            } else if out_of_domain(stats, value) {
                1.0
            } else {
                1.0 - 1.0 / d
            }
        }
        CmpOp::Lt => fraction_satisfying(stats, value, RangeSide::Below { strict: true }),
        CmpOp::Le => fraction_satisfying(stats, value, RangeSide::Below { strict: false }),
        CmpOp::Gt => fraction_satisfying(stats, value, RangeSide::Above { strict: true }),
        CmpOp::Ge => fraction_satisfying(stats, value, RangeSide::Above { strict: false }),
    };
    (sel * non_null).clamp(0.0, 1.0)
}

enum RangeSide {
    Below { strict: bool },
    Above { strict: bool },
}

fn out_of_domain(stats: &ColumnStatistics, value: &Value) -> bool {
    match (value.as_f64(), stats.min, stats.max) {
        (Some(c), Some(lo), Some(hi)) => c < lo || c > hi,
        _ => false,
    }
}

/// Count how many of the `d` grid points satisfy the one-sided range, as a
/// fraction of `d`. Falls back to [`DEFAULT_RANGE_SELECTIVITY`] when the
/// domain or the constant is not numeric.
fn fraction_satisfying(stats: &ColumnStatistics, value: &Value, side: RangeSide) -> f64 {
    let (Some(c), Some(lo), Some(hi)) = (value.as_f64(), stats.min, stats.max) else {
        return DEFAULT_RANGE_SELECTIVITY;
    };
    // NaN constants sort above every float in the engine's total order, so
    // `x < NaN` is satisfied by everything and `x > NaN` by nothing.
    if c.is_nan() {
        return match side {
            RangeSide::Below { .. } => 1.0,
            RangeSide::Above { .. } => 0.0,
        };
    }
    let d = stats.distinct;
    if d <= 0.0 {
        return DEFAULT_RANGE_SELECTIVITY;
    }
    let below = grid_points_below(
        c,
        lo,
        hi,
        d,
        matches!(side, RangeSide::Below { strict: true } | RangeSide::Above { strict: false }),
    );
    match side {
        // `x < c` counts strictly-below points; `x <= c` counts
        // non-strictly-below (grid_points_below's flag selects which).
        RangeSide::Below { .. } => below / d,
        // `x > c` = 1 - (x <= c); `x >= c` = 1 - (x < c).
        RangeSide::Above { .. } => 1.0 - below / d,
    }
}

/// Number of the `d` equally spaced grid points on `[lo, hi]` that are
/// `< c` (when `strict`) or `<= c` (when `!strict`).
fn grid_points_below(c: f64, lo: f64, hi: f64, d: f64, strict: bool) -> f64 {
    if d <= 1.0 {
        // One value at lo (== hi).
        let sat = if strict { lo < c } else { lo <= c };
        return if sat { d.clamp(0.0, 1.0) } else { 0.0 };
    }
    if c < lo || (strict && c == lo) {
        return 0.0;
    }
    if c > hi || (!strict && c == hi) {
        return d;
    }
    let step = (hi - lo) / (d - 1.0);
    // Index positions i = 0..d at lo + i*step; count those below c.
    let t = (c - lo) / step;
    let count = if strict {
        // points with i*step < c - lo  <=>  i < t; count = ceil(t) (t not
        // integer) or t (integer).
        t.ceil()
    } else {
        t.floor() + 1.0
    };
    count.clamp(0.0, d)
}

/// Resolve all constant predicates on one column, per [16]: keep the most
/// restrictive equality if any exists, otherwise the tightest range-bound
/// pair; `<>` predicates multiply in their complement. The oracle is
/// consulted per retained predicate.
pub fn resolve_column_predicates(
    column: ColumnRef,
    stats: &ColumnStatistics,
    preds: &[(CmpOp, Value)],
    oracle: &dyn SelectivityOracle,
) -> ResolvedColumn {
    if preds.is_empty() {
        return ResolvedColumn { selectivity: 1.0, shape: ResolvedShape::Unconstrained };
    }

    let sel_of = |op: CmpOp, v: &Value| -> f64 {
        oracle
            .local_selectivity(column, op, v)
            .unwrap_or_else(|| model_selectivity(stats, op, v))
            .clamp(0.0, 1.0)
    };

    // Phase 1: equalities. All must agree on one constant; the constant must
    // satisfy every other predicate on the column.
    let equalities: Vec<&Value> =
        preds.iter().filter_map(|(op, v)| (*op == CmpOp::Eq).then_some(v)).collect();
    if let Some(first) = equalities.first() {
        if equalities.iter().any(|v| !v.sql_eq(first)) {
            return ResolvedColumn { selectivity: 0.0, shape: ResolvedShape::Contradiction };
        }
        for (op, v) in preds.iter().filter(|(op, _)| *op != CmpOp::Eq) {
            let sat = first.sql_cmp(v).map(|ord| op.eval(ord));
            if sat == Some(false) {
                return ResolvedColumn { selectivity: 0.0, shape: ResolvedShape::Contradiction };
            }
        }
        return ResolvedColumn {
            selectivity: sel_of(CmpOp::Eq, first),
            shape: ResolvedShape::Equality((*first).clone()),
        };
    }

    // Phase 2: tightest lower bound (largest constant; at a tie the strict
    // bound is tighter) and tightest upper bound (smallest constant; strict
    // tighter).
    let mut lower: Option<(CmpOp, &Value)> = None;
    let mut upper: Option<(CmpOp, &Value)> = None;
    let mut ne_count = 0usize;
    for (op, v) in preds {
        match op {
            CmpOp::Gt | CmpOp::Ge => {
                lower = Some(match lower {
                    None => (*op, v),
                    Some((cur_op, cur_v)) => match v.sql_cmp(cur_v) {
                        Some(std::cmp::Ordering::Greater) => (*op, v),
                        Some(std::cmp::Ordering::Equal) if *op == CmpOp::Gt => (*op, v),
                        _ => (cur_op, cur_v),
                    },
                });
            }
            CmpOp::Lt | CmpOp::Le => {
                upper = Some(match upper {
                    None => (*op, v),
                    Some((cur_op, cur_v)) => match v.sql_cmp(cur_v) {
                        Some(std::cmp::Ordering::Less) => (*op, v),
                        Some(std::cmp::Ordering::Equal) if *op == CmpOp::Lt => (*op, v),
                        _ => (cur_op, cur_v),
                    },
                });
            }
            CmpOp::Ne => ne_count += 1,
            CmpOp::Eq => unreachable!("equalities handled above"),
        }
    }

    // Detect an empty range (lo >= hi in the strict sense).
    if let (Some((lop, lv)), Some((uop, uv))) = (&lower, &upper) {
        if let Some(ord) = lv.sql_cmp(uv) {
            use std::cmp::Ordering::{Equal, Greater};
            let empty = match ord {
                Greater => true,
                Equal => *lop == CmpOp::Gt || *uop == CmpOp::Lt,
                _ => false,
            };
            if empty {
                return ResolvedColumn { selectivity: 0.0, shape: ResolvedShape::Contradiction };
            }
        }
    }

    let mut sel = match (&lower, &upper) {
        (None, None) => 1.0,
        (Some((op, v)), None) | (None, Some((op, v))) => sel_of(*op, v),
        (Some((lop, lv)), Some((uop, uv))) => {
            // The satisfied sets are a suffix and a prefix of the value grid,
            // so |A ∩ B| = max(0, |A| + |B| − d): exact under the model.
            (sel_of(*lop, lv) + sel_of(*uop, uv) - 1.0).max(0.0)
        }
    };
    // Each `<>` removes (at most) one value.
    for _ in 0..ne_count {
        let d = stats.distinct;
        sel *= if d > 1.0 { 1.0 - 1.0 / d } else { 1.0 };
    }

    let shape = if lower.is_none() && upper.is_none() && ne_count == 0 {
        ResolvedShape::Unconstrained
    } else {
        ResolvedShape::Range
    };
    ResolvedColumn { selectivity: sel.clamp(0.0, 1.0), shape }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> ColumnRef {
        ColumnRef::new(0, 0)
    }

    fn seq_stats(d: f64) -> ColumnStatistics {
        // Sequential integer column 0..d-1, the Section 8 shape.
        ColumnStatistics::with_domain(d, 0.0, d - 1.0)
    }

    #[test]
    fn section8_filter_selectivity_is_exactly_one_tenth() {
        let stats = seq_stats(1000.0);
        let s = model_selectivity(&stats, CmpOp::Lt, &Value::Int(100));
        assert_eq!(s, 0.1);
    }

    #[test]
    fn le_counts_the_boundary_value() {
        let stats = seq_stats(1000.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Le, &Value::Int(99)), 0.1);
        assert_eq!(model_selectivity(&stats, CmpOp::Le, &Value::Int(100)), 0.101);
    }

    #[test]
    fn gt_ge_are_complements_of_le_lt() {
        let stats = seq_stats(100.0);
        let c = Value::Int(30);
        let lt = model_selectivity(&stats, CmpOp::Lt, &c);
        let ge = model_selectivity(&stats, CmpOp::Ge, &c);
        assert!((lt + ge - 1.0).abs() < 1e-12);
        let le = model_selectivity(&stats, CmpOp::Le, &c);
        let gt = model_selectivity(&stats, CmpOp::Gt, &c);
        assert!((le + gt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equality_is_one_over_d_inside_domain_and_zero_outside() {
        let stats = seq_stats(50.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::Int(10)), 1.0 / 50.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::Int(500)), 0.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Ne, &Value::Int(500)), 1.0);
    }

    #[test]
    fn range_without_domain_uses_default() {
        let stats = ColumnStatistics::with_distinct(100.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(5)), DEFAULT_RANGE_SELECTIVITY);
    }

    #[test]
    fn string_equality_uses_distinct_count() {
        let stats = ColumnStatistics::with_distinct(4.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::from("a")), 0.25);
        assert_eq!(
            model_selectivity(&stats, CmpOp::Lt, &Value::from("a")),
            DEFAULT_RANGE_SELECTIVITY
        );
    }

    #[test]
    fn null_fraction_scales_everything() {
        let mut stats = seq_stats(10.0);
        stats.null_fraction = 0.5;
        assert_eq!(model_selectivity(&stats, CmpOp::Eq, &Value::Int(3)), 0.05);
    }

    #[test]
    fn out_of_range_boundaries_clamp() {
        let stats = seq_stats(10.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(-5)), 0.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(100)), 1.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Gt, &Value::Int(-5)), 1.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Gt, &Value::Int(100)), 0.0);
    }

    #[test]
    fn single_value_domain() {
        let stats = ColumnStatistics::with_domain(1.0, 7.0, 7.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Le, &Value::Int(7)), 1.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Lt, &Value::Int(7)), 0.0);
        assert_eq!(model_selectivity(&stats, CmpOp::Ge, &Value::Int(7)), 1.0);
    }

    #[test]
    fn resolve_empty_is_unconstrained() {
        let r = resolve_column_predicates(col(), &seq_stats(10.0), &[], &NoOracle);
        assert_eq!(r.selectivity, 1.0);
        assert_eq!(r.shape, ResolvedShape::Unconstrained);
    }

    #[test]
    fn resolve_picks_equality_over_ranges() {
        // x = 5 AND x < 100: the equality wins, selectivity 1/d.
        let preds = vec![(CmpOp::Eq, Value::Int(5)), (CmpOp::Lt, Value::Int(100))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.selectivity, 1.0 / 1000.0);
        assert_eq!(r.shape, ResolvedShape::Equality(Value::Int(5)));
    }

    #[test]
    fn resolve_detects_equality_contradictions() {
        let preds = vec![(CmpOp::Eq, Value::Int(5)), (CmpOp::Eq, Value::Int(6))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.shape, ResolvedShape::Contradiction);
        assert_eq!(r.selectivity, 0.0);

        // x = 5 AND x > 100 is also empty.
        let preds = vec![(CmpOp::Eq, Value::Int(5)), (CmpOp::Gt, Value::Int(100))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.shape, ResolvedShape::Contradiction);
    }

    #[test]
    fn resolve_keeps_tightest_bounds() {
        // x > 10 AND x > 500 AND x < 900: keep (x > 500, x < 900).
        let preds = vec![
            (CmpOp::Gt, Value::Int(10)),
            (CmpOp::Gt, Value::Int(500)),
            (CmpOp::Lt, Value::Int(900)),
        ];
        let stats = seq_stats(1000.0);
        let r = resolve_column_predicates(col(), &stats, &preds, &NoOracle);
        // Values 501..=899: 399 of 1000.
        assert!((r.selectivity - 0.399).abs() < 1e-9, "got {}", r.selectivity);
        assert_eq!(r.shape, ResolvedShape::Range);
    }

    #[test]
    fn resolve_duplicate_range_predicate_is_idempotent() {
        // The paper's Step 1 example: (x > 500) AND (x > 500).
        let preds = vec![(CmpOp::Gt, Value::Int(500)), (CmpOp::Gt, Value::Int(500))];
        let once = resolve_column_predicates(col(), &seq_stats(1000.0), &preds[..1], &NoOracle);
        let twice = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(once.selectivity, twice.selectivity);
    }

    #[test]
    fn resolve_detects_empty_ranges() {
        let preds = vec![(CmpOp::Gt, Value::Int(900)), (CmpOp::Lt, Value::Int(100))];
        let r = resolve_column_predicates(col(), &seq_stats(1000.0), &preds, &NoOracle);
        assert_eq!(r.shape, ResolvedShape::Contradiction);

        // x > 5 AND x < 5 and x >= 5 AND x < 5 are empty; x >= 5 AND x <= 5
        // is the single value 5.
        let r = resolve_column_predicates(
            col(),
            &seq_stats(1000.0),
            &[(CmpOp::Ge, Value::Int(5)), (CmpOp::Lt, Value::Int(5))],
            &NoOracle,
        );
        assert_eq!(r.shape, ResolvedShape::Contradiction);
        let r = resolve_column_predicates(
            col(),
            &seq_stats(1000.0),
            &[(CmpOp::Ge, Value::Int(5)), (CmpOp::Le, Value::Int(5))],
            &NoOracle,
        );
        assert!((r.selectivity - 1.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn resolve_strict_bound_is_tighter_at_equal_constant() {
        let stats = seq_stats(100.0);
        let strict = resolve_column_predicates(
            col(),
            &stats,
            &[(CmpOp::Gt, Value::Int(50)), (CmpOp::Ge, Value::Int(50))],
            &NoOracle,
        );
        let only_strict =
            resolve_column_predicates(col(), &stats, &[(CmpOp::Gt, Value::Int(50))], &NoOracle);
        assert_eq!(strict.selectivity, only_strict.selectivity);
    }

    #[test]
    fn resolve_ne_multiplies_complement() {
        let stats = seq_stats(10.0);
        let r = resolve_column_predicates(col(), &stats, &[(CmpOp::Ne, Value::Int(3))], &NoOracle);
        assert!((r.selectivity - 0.9).abs() < 1e-12);
        assert_eq!(r.shape, ResolvedShape::Range);
    }

    #[test]
    fn oracle_overrides_model() {
        struct Fixed;
        impl SelectivityOracle for Fixed {
            fn local_selectivity(&self, _: ColumnRef, _: CmpOp, _: &Value) -> Option<f64> {
                Some(0.25)
            }
        }
        let stats = seq_stats(1000.0);
        let r = resolve_column_predicates(col(), &stats, &[(CmpOp::Lt, Value::Int(100))], &Fixed);
        assert_eq!(r.selectivity, 0.25);
    }

    #[test]
    fn join_range_model_on_identical_grids_matches_exact_discrete_answers() {
        // L and R both d=1000 sequential values 0..999: exactly
        // P(L < R) = (d−1)/2d = 0.4995, P(L <= R) = (d+1)/2d = 0.5005.
        let stats = seq_stats(1000.0);
        let lt = model_join_range_selectivity(&stats, CmpOp::Lt, &stats);
        assert!((lt - 0.4995).abs() < 1e-12, "got {lt}");
        let le = model_join_range_selectivity(&stats, CmpOp::Le, &stats);
        assert!((le - 0.5005).abs() < 1e-12, "got {le}");
        // Lt and Gt are symmetric on identical domains.
        let gt = model_join_range_selectivity(&stats, CmpOp::Gt, &stats);
        assert_eq!(lt, gt);
    }

    #[test]
    fn join_range_model_on_disjoint_domains_is_zero_or_one() {
        let lo = ColumnStatistics::with_domain(100.0, 0.0, 99.0);
        let hi = ColumnStatistics::with_domain(100.0, 1000.0, 1099.0);
        assert_eq!(model_join_range_selectivity(&lo, CmpOp::Lt, &hi), 1.0);
        assert_eq!(model_join_range_selectivity(&lo, CmpOp::Gt, &hi), 0.0);
        assert_eq!(model_join_range_selectivity(&hi, CmpOp::Le, &lo), 0.0);
        assert_eq!(model_join_range_selectivity(&hi, CmpOp::Ge, &lo), 1.0);
    }

    #[test]
    fn join_range_model_handles_offset_and_degenerate_domains() {
        // L ~ U[0, 100], R ~ U[50, 150]: P(L < R) by the piecewise integral:
        // (1/100)·[∫_50^100 (r/100) dr + 50] = (1/100)·[37.5 + 50] = 0.875,
        // minus half the diagonal mass 1/101.
        let l = ColumnStatistics::with_domain(101.0, 0.0, 100.0);
        let r = ColumnStatistics::with_domain(101.0, 50.0, 150.0);
        let lt = model_join_range_selectivity(&l, CmpOp::Lt, &r);
        assert!((lt - (0.875 - 0.5 / 101.0)).abs() < 1e-12, "got {lt}");
        // Degenerate single-point sides.
        let point = ColumnStatistics::with_domain(1.0, 7.0, 7.0);
        let wide = ColumnStatistics::with_domain(100.0, 0.0, 13.0);
        // P(7 < R) with R ~ U[0, 13] = 6/13, minus half the diagonal mass
        // 1/max(1, 100) = 0.01.
        let s = model_join_range_selectivity(&point, CmpOp::Lt, &wide);
        assert!((s - (6.0 / 13.0 - 0.005)).abs() < 1e-12, "got {s}");
        // Two identical points: L < R never, L <= R always (eq mass 1).
        let s = model_join_range_selectivity(&point, CmpOp::Lt, &point);
        assert_eq!(s, 0.0);
        let s = model_join_range_selectivity(&point, CmpOp::Le, &point);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn join_range_model_without_domains_uses_default_and_scales_nulls() {
        let unknown = ColumnStatistics::with_distinct(100.0);
        let s = model_join_range_selectivity(&unknown, CmpOp::Lt, &unknown);
        assert_eq!(s, DEFAULT_RANGE_JOIN_SELECTIVITY);
        let mut nully = seq_stats(10.0);
        nully.null_fraction = 0.5;
        let full = seq_stats(10.0);
        let s = model_join_range_selectivity(&nully, CmpOp::Lt, &full);
        let base = model_join_range_selectivity(&full, CmpOp::Lt, &full);
        assert!((s - base * 0.5).abs() < 1e-12);
    }

    proptest::proptest! {
        #[test]
        fn join_range_model_is_a_probability_and_complements(
            a in -500.0f64..500.0,
            w1 in 0.0f64..1000.0,
            c in -500.0f64..500.0,
            w2 in 0.0f64..1000.0,
            d1 in 1.0f64..10_000.0,
            d2 in 1.0f64..10_000.0,
        ) {
            let l = ColumnStatistics::with_domain(d1.floor(), a, a + w1);
            let r = ColumnStatistics::with_domain(d2.floor(), c, c + w2);
            let lt = model_join_range_selectivity(&l, CmpOp::Lt, &r);
            let le = model_join_range_selectivity(&l, CmpOp::Le, &r);
            let gt = model_join_range_selectivity(&l, CmpOp::Gt, &r);
            let ge = model_join_range_selectivity(&l, CmpOp::Ge, &r);
            for s in [lt, le, gt, ge] {
                proptest::prop_assert!((0.0..=1.0).contains(&s));
            }
            proptest::prop_assert!(lt <= le + 1e-12);
            proptest::prop_assert!(gt <= ge + 1e-12);
            // Complements never lose mass (`L < R` and `L >= R` partition
            // the non-NULL pairs); clamping the diagonal split can only
            // overcount, and by at most the eq mass.
            let eq = 1.0 / d1.floor().max(d2.floor());
            proptest::prop_assert!(lt + ge >= 1.0 - 1e-9);
            proptest::prop_assert!(le + gt >= 1.0 - 1e-9);
            proptest::prop_assert!(lt + ge <= 1.0 + eq + 1e-9);
            proptest::prop_assert!(le + gt <= 1.0 + eq + 1e-9);
        }
    }

    proptest::proptest! {
        #[test]
        fn model_selectivity_is_a_probability(
            d in 1.0f64..10_000.0,
            c in -100i64..1100,
            op_idx in 0usize..6,
        ) {
            let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
            let stats = ColumnStatistics::with_domain(d.floor(), 0.0, 999.0);
            let s = model_selectivity(&stats, ops[op_idx], &Value::Int(c));
            proptest::prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn tighter_bound_never_increases_selectivity(
            a in 0i64..1000,
            b in 0i64..1000,
        ) {
            let stats = ColumnStatistics::with_domain(1000.0, 0.0, 999.0);
            let wide = model_selectivity(&stats, CmpOp::Lt, &Value::Int(a.max(b)));
            let joint = resolve_column_predicates(
                ColumnRef::new(0, 0),
                &stats,
                &[(CmpOp::Lt, Value::Int(a)), (CmpOp::Lt, Value::Int(b))],
                &NoOracle,
            );
            proptest::prop_assert!(joint.selectivity <= wide + 1e-12);
        }
    }
}
