//! The end-to-end Algorithm ELS façade (paper, Section 4).
//!
//! [`Els::prepare`] runs the preliminary phase — Steps 1 through 5 — once
//! per query; the returned object then answers incremental estimation
//! requests (Step 6) for any join order, which is exactly how a System-R
//! style dynamic-programming enumerator consumes it.
//!
//! The same entry point also configures the *baseline* algorithms of the
//! paper's experiment:
//!
//! * **Algorithm SM** — [`Preprocessing::Standard`] +
//!   [`SelectivityRule::Multiplicative`];
//! * **Algorithm SSS** — [`Preprocessing::Standard`] +
//!   [`SelectivityRule::SmallestSelectivity`];
//! * **Algorithm ELS** — [`Preprocessing::Els`] +
//!   [`SelectivityRule::LargestSelectivity`] (the default).
//!
//! "Standard" pre-processing reduces table cardinalities by local-predicate
//! selectivities (as System R does) but computes join selectivities from the
//! *unreduced* column cardinalities and ignores the single-table
//! j-equivalence treatment of Section 6 — the two defects Sections 5 and 6
//! of the paper correct.

use std::collections::HashMap;

use crate::closure::transitive_closure;
use crate::correction::{CorrectionSource, NoCorrections};
use crate::equivalence::EquivalenceClasses;
use crate::error::ElsResult;
use crate::estimator::{JoinState, PreparedQuery};
use crate::ids::{ClassId, ColumnRef, TableId};
use crate::join_sel::{annotate_join_predicates_corrected, annotate_range_predicates};
use crate::local_effects::{compute_effective_stats_corrected, DistinctReduction, EffectiveStats};
use crate::predicate::{dedup_predicates, Predicate};
use crate::rules::{RepresentativeStrategy, SelectivityRule};
use crate::same_table::{apply_same_table_equivalences, SameTableAdjustment};
use crate::selectivity::{NoOracle, SelectivityOracle};
use crate::stats::QueryStatistics;

/// Whether Steps 4–5 use the paper's corrections or the standard behaviour
/// of contemporary optimizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preprocessing {
    /// Join selectivities from unreduced column cardinalities; no Section 6
    /// treatment. (Table cardinalities are still reduced by local
    /// predicates, as in System R.)
    Standard,
    /// Full ELS: effective column cardinalities (Section 5) and same-table
    /// j-equivalence handling (Section 6).
    #[default]
    Els,
}

/// Configuration of the estimation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElsOptions {
    /// Selectivity-choice rule for Step 6 (default: LS).
    pub rule: SelectivityRule,
    /// Standard vs ELS pre-processing (default: ELS).
    pub preprocessing: Preprocessing,
    /// Whether Step 2 (predicate transitive closure) runs (default: yes).
    /// The paper's experiment toggles this independently of the rule.
    pub apply_closure: bool,
    /// Distinct-value reduction model for Step 4 (default: urn model).
    pub distinct_reduction: DistinctReduction,
    /// How the per-class representative selectivity is derived when
    /// [`SelectivityRule::Representative`] is in force.
    pub representative: RepresentativeStrategy,
}

impl Default for ElsOptions {
    fn default() -> Self {
        ElsOptions {
            rule: SelectivityRule::LargestSelectivity,
            preprocessing: Preprocessing::Els,
            apply_closure: true,
            distinct_reduction: DistinctReduction::UrnModel,
            representative: RepresentativeStrategy::default(),
        }
    }
}

impl ElsOptions {
    /// The paper's Algorithm SM: standard pre-processing + Rule M.
    pub fn algorithm_sm() -> Self {
        ElsOptions {
            rule: SelectivityRule::Multiplicative,
            preprocessing: Preprocessing::Standard,
            ..ElsOptions::default()
        }
    }

    /// The paper's Algorithm SSS: standard pre-processing + Rule SS.
    pub fn algorithm_sss() -> Self {
        ElsOptions {
            rule: SelectivityRule::SmallestSelectivity,
            preprocessing: Preprocessing::Standard,
            ..ElsOptions::default()
        }
    }

    /// The paper's Algorithm ELS (the default configuration).
    pub fn algorithm_els() -> Self {
        ElsOptions::default()
    }

    /// Replace the selectivity rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: SelectivityRule) -> Self {
        self.rule = rule;
        self
    }

    /// Replace the pre-processing mode.
    #[must_use]
    pub fn with_preprocessing(mut self, p: Preprocessing) -> Self {
        self.preprocessing = p;
        self
    }

    /// Enable or disable predicate transitive closure.
    #[must_use]
    pub fn with_closure(mut self, on: bool) -> Self {
        self.apply_closure = on;
        self
    }

    /// Replace the distinct-reduction model.
    #[must_use]
    pub fn with_distinct_reduction(mut self, r: DistinctReduction) -> Self {
        self.distinct_reduction = r;
        self
    }

    /// Replace the representative-selectivity strategy.
    #[must_use]
    pub fn with_representative(mut self, r: RepresentativeStrategy) -> Self {
        self.representative = r;
        self
    }
}

/// A fully prepared estimation pipeline for one query.
#[derive(Debug, Clone)]
pub struct Els {
    options: ElsOptions,
    predicates: Vec<Predicate>,
    classes: EquivalenceClasses,
    effective: EffectiveStats,
    adjustments: Vec<SameTableAdjustment>,
    prepared: PreparedQuery,
}

impl Els {
    /// Run Steps 1–5 with no distribution statistics (uniformity model for
    /// local predicates).
    pub fn prepare(
        predicates: &[Predicate],
        stats: &QueryStatistics,
        options: &ElsOptions,
    ) -> ElsResult<Els> {
        Els::prepare_with_oracle(predicates, stats, options, &NoOracle)
    }

    /// Run Steps 1–5, consulting `oracle` (e.g. histograms) for
    /// local-predicate selectivities.
    pub fn prepare_with_oracle(
        predicates: &[Predicate],
        stats: &QueryStatistics,
        options: &ElsOptions,
        oracle: &dyn SelectivityOracle,
    ) -> ElsResult<Els> {
        Els::prepare_full(predicates, stats, options, oracle, &NoCorrections)
    }

    /// Run Steps 1–5 with both hooks: `oracle` for distribution
    /// statistics and `corrections` for feedback-learned factors (scan
    /// corrections fold into Step 4's local selectivities, join
    /// corrections into Step 5's Equation 2 values; see
    /// [`crate::correction`]). Passing [`NoCorrections`] makes this
    /// identical to [`Els::prepare_with_oracle`].
    pub fn prepare_full(
        predicates: &[Predicate],
        stats: &QueryStatistics,
        options: &ElsOptions,
        oracle: &dyn SelectivityOracle,
        corrections: &dyn CorrectionSource,
    ) -> ElsResult<Els> {
        // Step 1: deduplicate. Step 2: transitive closure (optional).
        let predicates = if options.apply_closure {
            transitive_closure(predicates)
        } else {
            dedup_predicates(predicates)
        };
        // Equivalence classes over whatever predicate set survives.
        let classes = EquivalenceClasses::from_predicates(&predicates);

        // Steps 3–4: local predicate selectivities and effective statistics.
        let mut effective = compute_effective_stats_corrected(
            &predicates,
            stats,
            oracle,
            options.distinct_reduction,
            corrections,
        )?;

        // Step 5 special case (Section 6), ELS pre-processing only.
        let adjustments = match options.preprocessing {
            Preprocessing::Els => apply_same_table_equivalences(&mut effective, &classes)?,
            Preprocessing::Standard => Vec::new(),
        };

        // Step 5: join selectivities from the appropriate cardinalities.
        let infos = match options.preprocessing {
            Preprocessing::Els => annotate_join_predicates_corrected(
                &predicates,
                &classes,
                |c| effective.distinct(c),
                corrections,
            )?,
            Preprocessing::Standard => annotate_join_predicates_corrected(
                &predicates,
                &classes,
                |c| effective.original_distinct(c),
                corrections,
            )?,
        };

        // Fixed representative per class (only used by Rule REP).
        let mut class_sels: HashMap<ClassId, Vec<f64>> = HashMap::new();
        for i in &infos {
            class_sels.entry(i.class).or_default().push(i.selectivity);
        }
        let reps: HashMap<ClassId, f64> =
            class_sels.into_iter().map(|(k, v)| (k, options.representative.derive(&v))).collect();

        // Inequality join predicates: classless, annotated from histograms
        // (oracle), the uniform-domain model, and feedback corrections.
        let ranges = annotate_range_predicates(&predicates, stats, oracle, corrections)?;

        let table_cardinality = effective.tables.iter().map(|t| t.cardinality).collect();
        let prepared = PreparedQuery::from_parts(table_cardinality, infos, reps, options.rule)
            .with_range_predicates(ranges);
        Ok(Els { options: *options, predicates, classes, effective, adjustments, prepared })
    }

    /// The configured options.
    pub fn options(&self) -> &ElsOptions {
        &self.options
    }

    /// The predicate set after Steps 1–2 (deduplicated; closed under
    /// transitivity when closure is enabled). The executor evaluates exactly
    /// this set.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The j-equivalence classes.
    pub fn classes(&self) -> &EquivalenceClasses {
        &self.classes
    }

    /// Post-Step-4/5 effective statistics.
    pub fn effective_stats(&self) -> &EffectiveStats {
        &self.effective
    }

    /// The Section 6 adjustments that were applied (empty under standard
    /// pre-processing).
    pub fn same_table_adjustments(&self) -> &[SameTableAdjustment] {
        &self.adjustments
    }

    /// The prepared Step 6 estimator.
    pub fn prepared(&self) -> &PreparedQuery {
        &self.prepared
    }

    /// Effective cardinality ‖R‖′ of a base table.
    pub fn effective_cardinality(&self, table: TableId) -> ElsResult<f64> {
        self.prepared.base_cardinality(table)
    }

    /// Effective distinct count of a column as used in join selectivities.
    pub fn join_distinct(&self, column: ColumnRef) -> f64 {
        match self.options.preprocessing {
            Preprocessing::Els => self.effective.distinct(column),
            Preprocessing::Standard => self.effective.original_distinct(column),
        }
    }

    /// Step 6: start a join state from one base table.
    pub fn initial_state(&self, table: TableId) -> ElsResult<JoinState> {
        self.prepared.initial_state(table)
    }

    /// Step 6: extend a join state by one table.
    pub fn join(&self, state: &JoinState, table: TableId) -> ElsResult<JoinState> {
        self.prepared.join(state, table)
    }

    /// Step 6, bushy form: join two disjoint intermediate results.
    pub fn join_sets(&self, a: &JoinState, b: &JoinState) -> ElsResult<JoinState> {
        self.prepared.join_sets(a, b)
    }

    /// Step 6 over a whole join order; returns the size after each step.
    pub fn estimate_order(&self, order: &[TableId]) -> ElsResult<Vec<f64>> {
        self.prepared.estimate_order(order)
    }

    /// Convenience: the final estimated size of joining all tables in the
    /// given order. A single-table order estimates at that table's
    /// effective cardinality; an empty order estimates an empty result.
    pub fn estimate_final(&self, order: &[TableId]) -> ElsResult<f64> {
        if let Some(&last) = self.estimate_order(order)?.last() {
            return Ok(last);
        }
        match order.first() {
            Some(&t) => self.prepared.base_cardinality(t),
            None => Ok(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::stats::{ColumnStatistics, TableStatistics};
    use crate::ElsError;

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    /// The Section 8 catalog: S/M/B/G with key join columns.
    fn section8() -> (QueryStatistics, Vec<Predicate>) {
        let mk = |rows: f64| {
            TableStatistics::new(rows, vec![ColumnStatistics::with_domain(rows, 0.0, rows - 1.0)])
        };
        let stats =
            QueryStatistics::new(vec![mk(1000.0), mk(10_000.0), mk(50_000.0), mk(100_000.0)]);
        let preds = vec![
            Predicate::col_eq(c(0, 0), c(1, 0)),              // s = m
            Predicate::col_eq(c(1, 0), c(2, 0)),              // m = b
            Predicate::col_eq(c(2, 0), c(3, 0)),              // b = g
            Predicate::local_cmp(c(0, 0), CmpOp::Lt, 100i64), // s < 100
        ];
        (stats, preds)
    }

    #[test]
    fn section8_els_estimates_every_intermediate_as_100() {
        let (stats, preds) = section8();
        let els = Els::prepare(&preds, &stats, &ElsOptions::algorithm_els()).unwrap();
        // The order ELS chose in the paper: B ⋈ G ⋈ M ⋈ S.
        let sizes = els.estimate_order(&[2, 3, 1, 0]).unwrap();
        assert_eq!(sizes, vec![100.0, 100.0, 100.0]);
        // Effective base cardinalities are all 100.
        for t in 0..4 {
            assert_eq!(els.effective_cardinality(t).unwrap(), 100.0);
        }
    }

    #[test]
    fn section8_sm_with_ptc_reproduces_paper_row2() {
        // Rule M with closure, order M ⋈ B ⋈ S ⋈ G:
        // estimates (0.2, 4e-8, 4e-21) — the paper's second row.
        let (stats, preds) = section8();
        let sm = Els::prepare(&preds, &stats, &ElsOptions::algorithm_sm()).unwrap();
        let sizes = sm.estimate_order(&[1, 2, 0, 3]).unwrap();
        assert!((sizes[0] - 0.2).abs() < 1e-12, "got {:?}", sizes);
        assert!((sizes[1] - 4e-8).abs() < 1e-20, "got {:?}", sizes);
        assert!((sizes[2] - 4e-21).abs() < 1e-33, "got {:?}", sizes);
    }

    #[test]
    fn section8_sss_with_ptc_reproduces_paper_row3() {
        // Rule SS with closure, same order: (0.2, 4e-4, 4e-7).
        let (stats, preds) = section8();
        let sss = Els::prepare(&preds, &stats, &ElsOptions::algorithm_sss()).unwrap();
        let sizes = sss.estimate_order(&[1, 2, 0, 3]).unwrap();
        assert!((sizes[0] - 0.2).abs() < 1e-12, "got {:?}", sizes);
        assert!((sizes[1] - 4e-4).abs() < 1e-16, "got {:?}", sizes);
        assert!((sizes[2] - 4e-7).abs() < 1e-19, "got {:?}", sizes);
    }

    #[test]
    fn closure_off_limits_eligible_predicates() {
        let (stats, preds) = section8();
        let opts = ElsOptions::algorithm_sm().with_closure(false);
        let sm = Els::prepare(&preds, &stats, &opts).unwrap();
        // Without closure only s=m, m=b, b=g exist: S ⋈ B has no predicate
        // and is a cartesian product.
        let s = sm.initial_state(0).unwrap();
        let sb = sm.join(&s, 2).unwrap();
        assert_eq!(sb.cardinality(), 100.0 * 50_000.0);
        // And the derived filters m<100 etc. are absent: ||M||' = 10000.
        assert_eq!(sm.effective_cardinality(1).unwrap(), 10_000.0);
    }

    #[test]
    fn closure_on_derives_filters_for_all_tables() {
        let (stats, preds) = section8();
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        // 6 join predicates + 4 local filters after closure.
        assert_eq!(els.predicates().len(), 10);
        assert_eq!(els.effective_cardinality(3).unwrap(), 100.0);
    }

    #[test]
    fn standard_mode_uses_unreduced_distincts() {
        let (stats, preds) = section8();
        let sm = Els::prepare(&preds, &stats, &ElsOptions::algorithm_sm()).unwrap();
        assert_eq!(sm.join_distinct(c(0, 0)), 1000.0);
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        assert_eq!(els.join_distinct(c(0, 0)), 100.0);
    }

    #[test]
    fn section6_adjustments_only_under_els() {
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(100.0, vec![ColumnStatistics::with_distinct(100.0)]),
            TableStatistics::new(
                1000.0,
                vec![ColumnStatistics::with_distinct(10.0), ColumnStatistics::with_distinct(50.0)],
            ),
        ]);
        let preds = vec![Predicate::col_eq(c(0, 0), c(1, 0)), Predicate::col_eq(c(0, 0), c(1, 1))];
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        assert_eq!(els.same_table_adjustments().len(), 1);
        assert_eq!(els.effective_cardinality(1).unwrap(), 20.0);
        let std = Els::prepare(&preds, &stats, &ElsOptions::algorithm_sm()).unwrap();
        assert!(std.same_table_adjustments().is_empty());
        assert_eq!(std.effective_cardinality(1).unwrap(), 1000.0);
    }

    #[test]
    fn estimate_final_handles_single_table_orders() {
        let (stats, preds) = section8();
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        assert_eq!(els.estimate_final(&[0]).unwrap(), 100.0);
        assert_eq!(els.estimate_final(&[]).unwrap(), 0.0);
    }

    #[test]
    fn options_builders_compose() {
        let o = ElsOptions::default()
            .with_rule(SelectivityRule::SmallestSelectivity)
            .with_preprocessing(Preprocessing::Standard)
            .with_closure(false)
            .with_distinct_reduction(DistinctReduction::Proportional)
            .with_representative(RepresentativeStrategy::GeometricMean);
        assert_eq!(o.rule, SelectivityRule::SmallestSelectivity);
        assert_eq!(o.preprocessing, Preprocessing::Standard);
        assert!(!o.apply_closure);
        assert_eq!(o.distinct_reduction, DistinctReduction::Proportional);
        assert_eq!(o.representative, RepresentativeStrategy::GeometricMean);
    }

    /// Regression: degenerate table ids through the `Els` facade surface as
    /// `InvalidJoinStep`, never as an indexing or shift-overflow panic.
    #[test]
    fn facade_rejects_out_of_range_tables_with_typed_errors() {
        let (stats, preds) = section8();
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        let s = els.initial_state(0).unwrap();
        for bad in [stats.num_tables(), 64, usize::MAX] {
            assert!(
                matches!(els.effective_cardinality(bad), Err(ElsError::UnknownTable(t)) if t == bad)
            );
            assert!(els.initial_state(bad).is_err());
            assert!(els.join(&s, bad).is_err());
            assert!(els.estimate_order(&[0, bad]).is_err());
            assert!(els.estimate_final(&[bad]).is_err());
        }
    }
}
