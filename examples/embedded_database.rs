//! The embedded-database workflow: CSV in, SQL out.
//!
//! Shows the `els::engine::Database` facade end to end: load a table from
//! CSV, generate a companion table, run filtered joins and a GROUP BY, and
//! print an EXPLAIN report — all with the paper's Algorithm ELS doing the
//! cardinality estimation underneath (switchable to the SM/SSS baselines).
//!
//! Run with: `cargo run --example embedded_database`

use std::io::Cursor;

use els::engine::Database;
use els::optimizer::EstimatorPreset;
use els::storage::csv::read_csv;
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

const ORDERS_CSV: &str = "\
order_id,customer,amount
1,3,25.0
2,1,100.5
3,3,8.25
4,2,60.0
5,1,9.99
6,3,30.0
7,4,75.5
8,2,12.0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();

    // Load one table from CSV, generate another.
    let orders = read_csv("orders", &mut Cursor::new(ORDERS_CSV), None)?;
    db.register(orders)?;
    db.generate(
        TableSpec::new("customers", 5)
            .column(ColumnSpec::new("id", Distribution::SequentialInt { start: 0 }))
            .column(ColumnSpec::new("region", Distribution::CycleInt { modulus: 2, start: 0 })),
        7,
    )?;

    // A filtered join.
    let r = db.execute(
        "SELECT COUNT(*) FROM orders, customers \
         WHERE orders.customer = customers.id AND customers.region = 1",
    )?;
    println!("orders from region-1 customers: {}", r.count);
    println!("  join order: {}   estimates: {:?}", r.join_order.join(" ⋈ "), r.estimated_sizes);

    // A grouped count.
    let r =
        db.execute("SELECT customer, COUNT(*) FROM orders WHERE amount > 10 GROUP BY customer")?;
    println!("\norders over 10 by customer:");
    for row in 0..r.rows.num_rows() {
        let vals = r.rows.row(row)?;
        println!("  customer {} -> {} orders", vals[0], vals[1]);
    }

    // Peek behind the curtain.
    println!("\nEXPLAIN under ELS:");
    println!(
        "{}",
        db.explain("SELECT COUNT(*) FROM orders, customers WHERE orders.customer = customers.id")?
    );

    // The same query under the misestimating baseline, for contrast.
    db.set_estimator(EstimatorPreset::Sm);
    let r =
        db.execute("SELECT COUNT(*) FROM orders, customers WHERE orders.customer = customers.id")?;
    println!("same answer under Algorithm SM (the plan may differ): {}", r.count);
    Ok(())
}
