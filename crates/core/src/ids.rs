//! Identifiers for tables, columns, and equivalence classes.
//!
//! A query is described positionally: the tables of the `FROM` list are
//! numbered `0..n`, and each table's columns are numbered within it. These
//! indices are resolved against names by the SQL binder (`els-sql`); the
//! estimation core itself is name-free.

use std::fmt;

/// Index of a table in the query's `FROM` list.
pub type TableId = usize;

/// A reference to one column of one query table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnRef {
    /// The table's position in the `FROM` list.
    pub table: TableId,
    /// The column's position in that table's schema.
    pub column: usize,
}

impl ColumnRef {
    /// Create a column reference.
    pub const fn new(table: TableId, column: usize) -> Self {
        ColumnRef { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}.c{}", self.table, self.column)
    }
}

/// Identifier of a j-equivalence class (dense indices assigned by
/// [`crate::equivalence::EquivalenceClasses`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EC{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_refs_order_by_table_then_column() {
        let a = ColumnRef::new(0, 5);
        let b = ColumnRef::new(1, 0);
        let c = ColumnRef::new(1, 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ColumnRef::new(2, 3).to_string(), "R2.c3");
        assert_eq!(ClassId(1).to_string(), "EC1");
    }
}
