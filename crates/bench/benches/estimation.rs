//! **B1** — estimation throughput: Algorithm ELS preparation (Steps 1–5)
//! and incremental estimation (Step 6), the per-query and per-DP-transition
//! costs an optimizer pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use els_bench::{chain_predicates, chain_statistics};
use els_core::{Els, ElsOptions};
use std::hint::black_box;

fn dims(n: usize) -> Vec<(f64, f64)> {
    (0..n).map(|i| (((i + 2) * 1000) as f64, ((i + 1) * 100) as f64)).collect()
}

fn bench_prepare(c: &mut Criterion) {
    let mut g = c.benchmark_group("els_prepare");
    for n in [4usize, 8, 12] {
        let stats = chain_statistics(&dims(n));
        let preds = chain_predicates(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                Els::prepare(black_box(&preds), black_box(&stats), &ElsOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_join_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("els_join_step");
    for n in [4usize, 8, 12] {
        let stats = chain_statistics(&dims(n));
        let preds = chain_predicates(n);
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        let order: Vec<usize> = (0..n).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| els.estimate_order(black_box(&order)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_prepare, bench_join_step
}
criterion_main!(benches);
