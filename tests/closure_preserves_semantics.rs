//! Predicate transitive closure is a *semantics-preserving* rewrite: for
//! any generated workload, executing the original predicate set and the
//! closed predicate set yields identical results — closure only adds
//! predicates that are already implied.

use els::core::closure::{pairwise_fixpoint, transitive_closure};
use els::exec::execute_plan;
use els::optimizer::{
    apply_predicate_transitive_closure, bound_query_tables, optimize_bound, EstimatorPreset,
    OptimizerOptions,
};
use els_bench::workload::{generate, Shape, WorkloadSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn closed_and_original_queries_agree(seed in 0u64..5_000, star in proptest::bool::ANY) {
        let spec = WorkloadSpec {
            tables: 3,
            shape: if star { Shape::Star } else { Shape::Chain },
            ..Default::default()
        };
        let inst = generate(&spec, seed);
        let tables = bound_query_tables(&inst.bound, &inst.catalog).unwrap();

        // Original predicates, closure disabled end to end.
        let no_ptc = OptimizerOptions::preset(EstimatorPreset::SmNoPtc);
        let original = optimize_bound(&inst.bound, &inst.catalog, &no_ptc).unwrap();
        let a = execute_plan(&original.plan, &tables).unwrap().count;

        // Explicitly rewritten query, closure again disabled (the derived
        // predicates are now *literal*).
        let rewritten = apply_predicate_transitive_closure(&inst.bound);
        let closed = optimize_bound(&rewritten, &inst.catalog, &no_ptc).unwrap();
        let b = execute_plan(&closed.plan, &tables).unwrap().count;

        prop_assert_eq!(a, b, "closure changed the result of `{}`", inst.sql);
    }

    /// The production class-based closure and the literal pairwise fixpoint
    /// agree on workload-shaped predicate sets (beyond the random small
    /// sets already tested in els-core).
    #[test]
    fn closure_implementations_agree_on_workloads(seed in 0u64..5_000) {
        let inst = generate(&WorkloadSpec { tables: 4, ..Default::default() }, seed);
        let a = transitive_closure(&inst.bound.predicates);
        let b = pairwise_fixpoint(&inst.bound.predicates);
        let key = |ps: &[els::core::Predicate]| {
            let mut v: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&a), key(&b));
    }
}

#[test]
fn closure_never_removes_rows_and_never_adds_them() {
    // A deterministic spot check with hand-built data, including NULLs in
    // the filter column (closure rule e must not propagate across NULL
    // semantics incorrectly).
    let inst =
        generate(&WorkloadSpec { tables: 3, filter_probability: 1.0, ..Default::default() }, 1234);
    let tables = bound_query_tables(&inst.bound, &inst.catalog).unwrap();
    let with_ptc =
        optimize_bound(&inst.bound, &inst.catalog, &OptimizerOptions::preset(EstimatorPreset::Els))
            .unwrap();
    let without_ptc = optimize_bound(
        &inst.bound,
        &inst.catalog,
        &OptimizerOptions::preset(EstimatorPreset::SmNoPtc),
    )
    .unwrap();
    let a = execute_plan(&with_ptc.plan, &tables).unwrap().count;
    let b = execute_plan(&without_ptc.plan, &tables).unwrap().count;
    assert_eq!(a, b);
}
