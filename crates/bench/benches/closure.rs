//! **B2** — predicate transitive closure cost: the class-based production
//! implementation vs the literal pairwise fixpoint, on chain queries of
//! growing size (a chain of n equalities closes into n(n+1)/2 predicates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use els_bench::chain_predicates;
use els_core::closure::{pairwise_fixpoint, transitive_closure};
use std::hint::black_box;

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("transitive_closure");
    for n in [4usize, 8, 16] {
        let preds = chain_predicates(n);
        g.bench_with_input(BenchmarkId::new("class_based", n), &n, |b, _| {
            b.iter(|| transitive_closure(black_box(&preds)))
        });
        if n <= 8 {
            g.bench_with_input(BenchmarkId::new("pairwise_fixpoint", n), &n, |b, _| {
                b.iter(|| pairwise_fixpoint(black_box(&preds)))
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_closure
}
criterion_main!(benches);
