//! Execution metrics.
//!
//! The paper reports elapsed seconds; this engine additionally counts
//! logical work (tuples, comparisons) and *simulated page reads* under the
//! storage page model so plan quality can be compared deterministically,
//! independent of machine noise. Nested-loops inner rescans are charged
//! their full page count per outer tuple — the cost structure that makes
//! misplaced giant tables expensive, exactly the failure mode the paper's
//! experiment demonstrates.

use std::fmt;
use std::time::Duration;

/// Counters accumulated while executing one plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecMetrics {
    /// Tuples read out of base tables.
    pub tuples_scanned: u64,
    /// Logical page reads (base scans + NL inner rescans), regardless of
    /// buffering.
    pub pages_read: u64,
    /// Physical page reads of *base tables*: equals the base-table share of
    /// `pages_read` when unbuffered, less when a buffer pool absorbs
    /// rescans (see [`crate::buffer`]). Intermediate-result "pages" are
    /// memory-resident and never counted here.
    pub physical_pages_read: u64,
    /// Tuples produced by all operators.
    pub tuples_emitted: u64,
    /// Key comparisons performed by joins and sorts.
    pub comparisons: u64,
    /// Rows passed through sort operators.
    pub rows_sorted: u64,
    /// Hash-table probes.
    pub hash_probes: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecMetrics {
    /// Merge another metrics record into this one (durations add).
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.tuples_scanned += other.tuples_scanned;
        self.pages_read += other.pages_read;
        self.physical_pages_read += other.physical_pages_read;
        self.tuples_emitted += other.tuples_emitted;
        self.comparisons += other.comparisons;
        self.rows_sorted += other.rows_sorted;
        self.hash_probes += other.hash_probes;
        self.elapsed += other.elapsed;
    }
}

impl fmt::Display for ExecMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} pages={} phys={} emitted={} cmps={} sorted={} probes={} elapsed={:?}",
            self.tuples_scanned,
            self.pages_read,
            self.physical_pages_read,
            self.tuples_emitted,
            self.comparisons,
            self.rows_sorted,
            self.hash_probes,
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_everything() {
        let mut a = ExecMetrics {
            tuples_scanned: 1,
            pages_read: 2,
            physical_pages_read: 2,
            tuples_emitted: 3,
            comparisons: 4,
            rows_sorted: 5,
            hash_probes: 6,
            elapsed: Duration::from_millis(10),
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.tuples_scanned, 2);
        assert_eq!(a.pages_read, 4);
        assert_eq!(a.comparisons, 8);
        assert_eq!(a.elapsed, Duration::from_millis(20));
    }

    #[test]
    fn display_is_one_line() {
        let m = ExecMetrics::default();
        let s = m.to_string();
        assert!(s.contains("pages=0"));
        assert!(!s.contains('\n'));
    }
}
