//! Physical table profiles for the cost model.
//!
//! The paper keeps the *original* (unreduced) table statistics for access
//! cost calculations even after local predicates have reduced the effective
//! cardinalities (Section 5, last paragraph): scanning a table costs its
//! full page count no matter how selective the filters are. Profiles carry
//! exactly those physical numbers.

use els_storage::{Table, PAGE_SIZE_BYTES};

/// Physical description of one query table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableProfile {
    /// Stored row count (original, pre-predicate).
    pub rows: f64,
    /// Stored page count.
    pub pages: f64,
    /// Estimated bytes per tuple.
    pub row_bytes: usize,
}

impl TableProfile {
    /// Profile a stored table.
    pub fn of(table: &Table) -> TableProfile {
        TableProfile {
            rows: table.num_rows() as f64,
            pages: table.num_pages() as f64,
            row_bytes: table.estimated_row_bytes(),
        }
    }

    /// Synthesize a profile from a row count and tuple width (for tests and
    /// statistics-only experiments with no materialized data).
    pub fn synthetic(rows: f64, row_bytes: usize) -> TableProfile {
        let per_page = (PAGE_SIZE_BYTES / row_bytes.max(1)).max(1) as f64;
        TableProfile { rows, pages: (rows / per_page).ceil(), row_bytes: row_bytes.max(1) }
    }

    /// Pages occupied by `rows` tuples of `row_bytes` width under the page
    /// model — used for intermediate results.
    pub fn pages_for(rows: f64, row_bytes: usize) -> f64 {
        if rows <= 0.0 {
            return 0.0;
        }
        let per_page = (PAGE_SIZE_BYTES / row_bytes.max(1)).max(1) as f64;
        (rows / per_page).ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::datagen::{ColumnSpec, Distribution, TableSpec};

    #[test]
    fn profile_of_stored_table() {
        let t = TableSpec::new("t", 1000)
            .column(ColumnSpec::new("a", Distribution::SequentialInt { start: 0 }))
            .column(ColumnSpec::new("b", Distribution::SequentialInt { start: 0 }))
            .generate(1);
        let p = TableProfile::of(&t);
        assert_eq!(p.rows, 1000.0);
        assert_eq!(p.row_bytes, 16);
        // 256 tuples per 4KiB page -> 4 pages.
        assert_eq!(p.pages, 4.0);
    }

    #[test]
    fn synthetic_matches_of() {
        let t = TableSpec::new("t", 1000)
            .column(ColumnSpec::new("a", Distribution::SequentialInt { start: 0 }))
            .generate(1);
        let a = TableProfile::of(&t);
        let b = TableProfile::synthetic(1000.0, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn pages_for_rounds_up_and_handles_zero() {
        assert_eq!(TableProfile::pages_for(0.0, 8), 0.0);
        assert_eq!(TableProfile::pages_for(1.0, 8), 1.0);
        assert_eq!(TableProfile::pages_for(513.0, 8), 2.0);
        // Fractional expected rows still cost a page.
        assert_eq!(TableProfile::pages_for(0.25, 8), 1.0);
    }
}
