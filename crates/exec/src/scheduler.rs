//! Work-stealing morsel scheduler — the one library module that spawns
//! threads.
//!
//! Parallel operators (the radix-partitioned hash join, the morsel probe)
//! describe their work as `n_tasks` independent, index-addressed tasks and
//! hand a closure to [`run_tasks`]. Each worker starts with a contiguous
//! block of task indices in its own deque, pops from the front of its own
//! deque, and steals from the *back* of a victim's when it runs dry — the
//! classic work-stealing shape: owners drain their block in order (cache-
//! friendly for morsel ranges), thieves take the work the owner would reach
//! last.
//!
//! **Determinism.** Scheduling decides only *who* runs a task and *when*;
//! results are keyed by task index and returned sorted in task order, so
//! the output is a pure function of the task closure — worker count,
//! steal interleavings, and deque layout are invisible to callers. The
//! [`RunStats::steals`] counter is the only schedule-dependent output, and
//! it feeds monitoring counters, never results.
//!
//! els-lint's `parallelism-seam` pass bans `thread::spawn`/`thread::scope`
//! everywhere else in library code, so every parallel code path shares this
//! module's panic policy (worker panics are re-raised on the coordinator,
//! never swallowed into truncated results).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use els_core::sync::lock_recovering;

/// Counters describing one [`run_tasks`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Tasks a worker popped from *another* worker's deque. Zero on the
    /// serial path; schedule-dependent (not deterministic) when parallel.
    pub steals: u64,
}

/// Run `n_tasks` independent tasks across up to `workers` threads with
/// work-stealing, returning the results in task order (`results[i]` is
/// `task(i)`) regardless of which worker ran what.
///
/// `workers <= 1` (or fewer than two tasks) runs inline on the calling
/// thread with no thread machinery at all, so serial callers pay nothing.
pub fn run_tasks<T, F>(workers: usize, n_tasks: usize, task: F) -> (Vec<T>, RunStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n_tasks <= 1 {
        return ((0..n_tasks).map(task).collect(), RunStats::default());
    }
    let workers = workers.min(n_tasks);
    // Seed each worker's deque with a contiguous block of task indices so
    // an unstolen run processes tasks exactly in order.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * n_tasks / workers;
            let hi = (w + 1) * n_tasks / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let steals = AtomicU64::new(0);
    let mut keyed: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (deques, steals, task) = (&deques, &steals, &task);
                s.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own deque first, front to back.
                        let own = lock_recovering(&deques[w]).pop_front();
                        if let Some(t) = own {
                            out.push((t, task(t)));
                            continue;
                        }
                        // Dry: steal from the back of the first non-empty
                        // victim, scanning neighbours in a fixed order.
                        let mut stolen = None;
                        for off in 1..deques.len() {
                            let victim = (w + off) % deques.len();
                            if let Some(t) = lock_recovering(&deques[victim]).pop_back() {
                                stolen = Some(t);
                                break;
                            }
                        }
                        let Some(t) = stolen else { break };
                        steals.fetch_add(1, Ordering::Relaxed);
                        out.push((t, task(t)));
                    }
                    out
                })
            })
            .collect();
        // els-lint: allow(panic-freedom, "re-raises a worker panic on the coordinating thread; swallowing it would return truncated results")
        handles.into_iter().flat_map(|h| h.join().expect("scheduler worker panicked")).collect()
    });
    // Tasks are claimed exactly once (every pop holds the deque lock), so
    // sorting by task index restores the deterministic order.
    keyed.sort_unstable_by_key(|&(t, _)| t);
    (
        keyed.into_iter().map(|(_, r)| r).collect(),
        RunStats { steals: steals.load(Ordering::Relaxed) },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            for n_tasks in [0, 1, 2, 7, 100] {
                let (results, _) = run_tasks(workers, n_tasks, |i| i * 3);
                let expected: Vec<usize> = (0..n_tasks).map(|i| i * 3).collect();
                assert_eq!(results, expected, "workers={workers} tasks={n_tasks}");
            }
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let (results, stats) = run_tasks(4, 257, |i| {
            ran.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(ran.load(Ordering::SeqCst), 257);
        assert_eq!(results.len(), 257);
        assert!(stats.steals <= 257, "a steal is a task, so steals are bounded by tasks");
    }

    #[test]
    fn serial_path_never_steals_or_spawns() {
        let (results, stats) = run_tasks(1, 50, |i| i);
        assert_eq!(results.len(), 50);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn worker_panic_propagates_instead_of_truncating() {
        let res = std::panic::catch_unwind(|| {
            run_tasks(2, 16, |i| {
                assert!(i != 7, "deliberate");
                i
            })
        });
        assert!(res.is_err(), "task panic must reach the caller");
    }
}
