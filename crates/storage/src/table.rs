//! Named tables: equal-length columns plus a simple page model.

use crate::column::ColumnVector;
use crate::error::{StorageError, StorageResult};
use crate::value::{DataType, Value};

/// Size of one simulated disk page, in bytes. The optimizer's cost model
/// works in pages; 4 KiB matches the systems the paper targets.
pub const PAGE_SIZE_BYTES: usize = 4096;

/// A named, schema-ful, in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    column_names: Vec<String>,
    columns: Vec<ColumnVector>,
}

impl Table {
    /// Build a table from parallel `(name, column)` pairs.
    ///
    /// # Errors
    /// Returns [`StorageError::RaggedColumns`] when columns have unequal
    /// lengths.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<(String, ColumnVector)>,
    ) -> StorageResult<Self> {
        if let Some(first) = columns.first().map(|(_, c)| c.len()) {
            for (_, c) in &columns {
                if c.len() != first {
                    return Err(StorageError::RaggedColumns { first, offending: c.len() });
                }
            }
        }
        let (column_names, columns) = columns.into_iter().unzip();
        Ok(Table { name: name.into(), column_names, columns })
    }

    /// Build an empty table from a schema.
    pub fn empty(name: impl Into<String>, schema: &[(&str, DataType)]) -> Self {
        Table {
            name: name.into(),
            column_names: schema.iter().map(|(n, _)| (*n).to_owned()).collect(),
            columns: schema.iter().map(|(_, t)| ColumnVector::new(*t)).collect(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows. This is the *table cardinality* ‖R‖ of the paper.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnVector::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names.iter().position(|n| n == name)
    }

    /// Access a column by index.
    pub fn column(&self, index: usize) -> StorageResult<&ColumnVector> {
        self.columns
            .get(index)
            .ok_or(StorageError::ColumnOutOfBounds { index, len: self.columns.len() })
    }

    /// Access a column by name.
    pub fn column_by_name(&self, name: &str) -> StorageResult<&ColumnVector> {
        let idx =
            self.column_index(name).ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))?;
        self.column(idx)
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    /// Append one row of values, in schema order.
    pub fn push_row(&mut self, row: Vec<Value>) -> StorageResult<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        // Validate all values first so a failed push cannot leave ragged
        // columns behind.
        for (col, value) in self.columns.iter().zip(&row) {
            if let Some(t) = value.data_type() {
                let ok = t == col.data_type()
                    || (col.data_type() == DataType::Float && t == DataType::Int);
                if !ok {
                    return Err(StorageError::TypeMismatch {
                        expected: col.data_type(),
                        actual: t,
                    });
                }
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        Ok(())
    }

    /// Read one row as owned values.
    pub fn row(&self, index: usize) -> StorageResult<Vec<Value>> {
        if index >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { index, len: self.num_rows() });
        }
        self.columns.iter().map(|c| c.get(index)).collect()
    }

    /// Estimated width of one row in bytes under the page model.
    pub fn estimated_row_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.data_type().estimated_width()).sum::<usize>().max(1)
    }

    /// Number of simulated pages this table occupies (at least 1 when
    /// non-empty). The paper's cost discussion is in terms of page accesses;
    /// the executor charges one page read per `tuples_per_page` tuples
    /// scanned.
    pub fn num_pages(&self) -> usize {
        if self.num_rows() == 0 {
            return 0;
        }
        let per_page = self.tuples_per_page();
        self.num_rows().div_ceil(per_page)
    }

    /// How many tuples fit in one simulated page.
    pub fn tuples_per_page(&self) -> usize {
        (PAGE_SIZE_BYTES / self.estimated_row_bytes()).max(1)
    }

    /// Materialize a new table containing the rows at `indices`.
    pub fn gather(&self, name: impl Into<String>, indices: &[usize]) -> StorageResult<Table> {
        let columns = self
            .column_names
            .iter()
            .zip(&self.columns)
            .map(|(n, c)| Ok((n.clone(), c.gather(indices)?)))
            .collect::<StorageResult<Vec<_>>>()?;
        Table::new(name, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::empty("t", &[("a", DataType::Int), ("b", DataType::Str)]);
        t.push_row(vec![Value::Int(1), Value::from("one")]).unwrap();
        t.push_row(vec![Value::Int(2), Value::from("two")]).unwrap();
        t
    }

    #[test]
    fn build_and_read_rows() {
        let t = sample();
        assert_eq!(t.name(), "t");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.row(1).unwrap(), vec![Value::Int(2), Value::from("two")]);
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = Table::new(
            "bad",
            vec![
                ("a".into(), ColumnVector::from_ints([1, 2])),
                ("b".into(), ColumnVector::from_ints([1])),
            ],
        )
        .unwrap_err();
        assert_eq!(err, StorageError::RaggedColumns { first: 2, offending: 1 });
    }

    #[test]
    fn push_row_arity_checked() {
        let mut t = sample();
        let err = t.push_row(vec![Value::Int(3)]).unwrap_err();
        assert_eq!(err, StorageError::ArityMismatch { expected: 2, actual: 1 });
        // Table must be unchanged.
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn push_row_type_checked_atomically() {
        let mut t = sample();
        // Second value has the wrong type; the first must not be committed.
        let err = t.push_row(vec![Value::Int(3), Value::Int(9)]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column_by_name("a").unwrap().len(), 2);
    }

    #[test]
    fn nulls_accepted_in_rows() {
        let mut t = sample();
        t.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.row(2).unwrap(), vec![Value::Null, Value::Null]);
    }

    #[test]
    fn column_lookup() {
        let t = sample();
        assert_eq!(t.column_index("b"), Some(1));
        assert!(t.column_by_name("a").is_ok());
        assert!(matches!(t.column_by_name("zz").unwrap_err(), StorageError::UnknownColumn(_)));
    }

    #[test]
    fn page_model_counts() {
        let t = sample();
        // Row width: 8 (int) + 24 (str) = 32 bytes -> 128 tuples/page.
        assert_eq!(t.estimated_row_bytes(), 32);
        assert_eq!(t.tuples_per_page(), 128);
        assert_eq!(t.num_pages(), 1);
        let big = Table::new("big", vec![("x".into(), ColumnVector::from_ints(0..1000))]).unwrap();
        // 8 bytes/row -> 512 tuples/page -> 1000 rows = 2 pages.
        assert_eq!(big.num_pages(), 2);
    }

    #[test]
    fn empty_table_has_zero_pages() {
        let t = Table::empty("e", &[("a", DataType::Int)]);
        assert_eq!(t.num_pages(), 0);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn gather_builds_subtable() {
        let t = sample();
        let g = t.gather("g", &[1]).unwrap();
        assert_eq!(g.num_rows(), 1);
        assert_eq!(g.row(0).unwrap(), vec![Value::Int(2), Value::from("two")]);
        assert_eq!(g.name(), "g");
    }
}
