//! Typed column vectors with validity bitmaps.

use std::collections::HashSet;

use crate::error::{StorageError, StorageResult};
use crate::value::{DataType, Value};

/// A typed column of values plus a validity bitmap.
///
/// The payload vectors always have one slot per row; rows whose validity bit
/// is `false` are NULL and the corresponding payload slot holds an arbitrary
/// default. This mirrors the layout of columnar engines (validity + data) and
/// keeps scans branch-light.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVector {
    data: ColumnData,
    /// `validity[i]` is true iff row `i` is non-NULL. Kept as `Vec<bool>`;
    /// a packed bitmap buys nothing at the scales exercised here.
    validity: Vec<bool>,
}

#[derive(Debug, Clone, PartialEq)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
}

impl ColumnVector {
    /// Create an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        let data = match data_type {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
        };
        ColumnVector { data, validity: Vec::new() }
    }

    /// Create an empty column with capacity for `cap` rows.
    pub fn with_capacity(data_type: DataType, cap: usize) -> Self {
        let data = match data_type {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        };
        ColumnVector { data, validity: Vec::with_capacity(cap) }
    }

    /// Build an integer column from an iterator of values (all non-NULL).
    pub fn from_ints(values: impl IntoIterator<Item = i64>) -> Self {
        let data: Vec<i64> = values.into_iter().collect();
        let validity = vec![true; data.len()];
        ColumnVector { data: ColumnData::Int(data), validity }
    }

    /// Build a float column from an iterator of values (all non-NULL).
    pub fn from_floats(values: impl IntoIterator<Item = f64>) -> Self {
        let data: Vec<f64> = values.into_iter().collect();
        let validity = vec![true; data.len()];
        ColumnVector { data: ColumnData::Float(data), validity }
    }

    /// Build a string column from an iterator of values (all non-NULL).
    pub fn from_strs<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        let data: Vec<String> = values.into_iter().map(Into::into).collect();
        let validity = vec![true; data.len()];
        ColumnVector { data: ColumnData::Str(data), validity }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    /// Number of rows, including NULLs.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity.iter().filter(|v| !**v).count()
    }

    /// Append one value. NULL is accepted by every column type; a non-NULL
    /// value must match the column type.
    pub fn push(&mut self, value: Value) -> StorageResult<()> {
        match (&mut self.data, value) {
            (_, Value::Null) => {
                match &mut self.data {
                    ColumnData::Int(v) => v.push(0),
                    ColumnData::Float(v) => v.push(0.0),
                    ColumnData::Str(v) => v.push(String::new()),
                }
                self.validity.push(false);
                Ok(())
            }
            (ColumnData::Int(v), Value::Int(x)) => {
                v.push(x);
                self.validity.push(true);
                Ok(())
            }
            (ColumnData::Float(v), Value::Float(x)) => {
                v.push(x);
                self.validity.push(true);
                Ok(())
            }
            // Widen integers into float columns; common when literals are
            // written without a decimal point.
            (ColumnData::Float(v), Value::Int(x)) => {
                v.push(x as f64);
                self.validity.push(true);
                Ok(())
            }
            (ColumnData::Str(v), Value::Str(x)) => {
                v.push(x);
                self.validity.push(true);
                Ok(())
            }
            (_, other) => Err(StorageError::TypeMismatch {
                expected: self.data_type(),
                // `other` is non-NULL in this arm, so the type exists; fall
                // back to the column's own type rather than assert.
                actual: other.data_type().unwrap_or(self.data_type()),
            }),
        }
    }

    /// Read the value at `row`.
    pub fn get(&self, row: usize) -> StorageResult<Value> {
        if row >= self.len() {
            return Err(StorageError::RowOutOfBounds { index: row, len: self.len() });
        }
        if !self.validity[row] {
            return Ok(Value::Null);
        }
        Ok(match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
        })
    }

    /// Read the value at `row` without cloning string payloads; panics when
    /// out of bounds. Used by inner loops of the executor.
    pub fn value_ref(&self, row: usize) -> ValueRef<'_> {
        if !self.validity[row] {
            return ValueRef::Null;
        }
        match &self.data {
            ColumnData::Int(v) => ValueRef::Int(v[row]),
            ColumnData::Float(v) => ValueRef::Float(v[row]),
            ColumnData::Str(v) => ValueRef::Str(&v[row]),
        }
    }

    /// Iterate over all values (cloning strings).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).unwrap_or(Value::Null))
    }

    /// Count distinct non-NULL values. This is the *column cardinality* `d_x`
    /// of the paper, computed exactly (used when collecting statistics).
    pub fn distinct_count(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v
                .iter()
                .zip(&self.validity)
                .filter_map(|(x, ok)| ok.then_some(*x))
                .collect::<HashSet<_>>()
                .len(),
            ColumnData::Float(v) => v
                .iter()
                .zip(&self.validity)
                .filter_map(|(x, ok)| ok.then_some(x.to_bits()))
                .collect::<HashSet<_>>()
                .len(),
            ColumnData::Str(v) => v
                .iter()
                .zip(&self.validity)
                .filter_map(|(x, ok)| ok.then_some(x.as_str()))
                .collect::<HashSet<_>>()
                .len(),
        }
    }

    /// Minimum and maximum non-NULL values, or `None` if all rows are NULL.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for i in 0..self.len() {
            let v = self.get(i).unwrap_or(Value::Null);
            if v.is_null() {
                continue;
            }
            match (&min, &max) {
                (Some(lo), Some(hi)) => {
                    if v.total_cmp(lo) == std::cmp::Ordering::Less {
                        min = Some(v.clone());
                    }
                    if v.total_cmp(hi) == std::cmp::Ordering::Greater {
                        max = Some(v);
                    }
                }
                _ => {
                    min = Some(v.clone());
                    max = Some(v);
                }
            }
        }
        min.zip(max)
    }

    /// Borrowed payload slice of an `Int` column (`None` for other types).
    /// Slots whose validity bit is `false` are NULL and hold an arbitrary
    /// default — always consult [`ColumnVector::validity`] alongside.
    pub fn as_int_slice(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrowed payload slice of a `Float` column (`None` for other types).
    pub fn as_float_slice(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrowed payload slice of a `Str` column (`None` for other types).
    pub fn as_str_slice(&self) -> Option<&[String]> {
        match &self.data {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The validity bitmap: `validity()[i]` is true iff row `i` is non-NULL.
    pub fn validity(&self) -> &[bool] {
        &self.validity
    }

    /// Gather the rows at `indices` into a new column (used by joins).
    pub fn gather(&self, indices: &[usize]) -> StorageResult<Self> {
        self.gather_by(indices.iter().copied(), indices.len())
    }

    /// [`ColumnVector::gather`] over `u32` row ids — the executor's
    /// selection-vector representation.
    pub fn gather_u32(&self, indices: &[u32]) -> StorageResult<Self> {
        self.gather_by(indices.iter().map(|&i| i as usize), indices.len())
    }

    /// Typed gather: copies payload slots directly instead of round-tripping
    /// each cell through an owned [`Value`].
    fn gather_by(
        &self,
        indices: impl Iterator<Item = usize> + Clone,
        n: usize,
    ) -> StorageResult<Self> {
        let len = self.len();
        if let Some(bad) = indices.clone().find(|&i| i >= len) {
            return Err(StorageError::RowOutOfBounds { index: bad, len });
        }
        let mut validity = Vec::with_capacity(n);
        validity.extend(indices.clone().map(|i| self.validity[i]));
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.map(|i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.map(|i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.map(|i| v[i].clone()).collect()),
        };
        Ok(ColumnVector { data, validity })
    }
}

/// A borrowed view of one cell, avoiding string clones in hot paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// SQL NULL.
    Null,
    /// Integer cell.
    Int(i64),
    /// Float cell.
    Float(f64),
    /// Borrowed string cell.
    Str(&'a str),
}

impl ValueRef<'_> {
    /// Convert to an owned [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(v) => Value::Int(v),
            ValueRef::Float(v) => Value::Float(v),
            ValueRef::Str(s) => Value::Str(s.to_owned()),
        }
    }

    /// SQL equality (NULL never equals anything).
    pub fn sql_eq(self, other: ValueRef<'_>) -> bool {
        match (self, other) {
            (ValueRef::Null, _) | (_, ValueRef::Null) => false,
            (ValueRef::Int(a), ValueRef::Int(b)) => a == b,
            (ValueRef::Float(a), ValueRef::Float(b)) => a.total_cmp(&b).is_eq(),
            (ValueRef::Int(a), ValueRef::Float(b)) => (a as f64).total_cmp(&b).is_eq(),
            (ValueRef::Float(a), ValueRef::Int(b)) => a.total_cmp(&(b as f64)).is_eq(),
            (ValueRef::Str(a), ValueRef::Str(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut c = ColumnVector::new(DataType::Int);
        c.push(Value::Int(5)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(-2)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0).unwrap(), Value::Int(5));
        assert_eq!(c.get(1).unwrap(), Value::Null);
        assert_eq!(c.get(2).unwrap(), Value::Int(-2));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn push_rejects_wrong_type() {
        let mut c = ColumnVector::new(DataType::Int);
        let err = c.push(Value::from("nope")).unwrap_err();
        assert_eq!(
            err,
            StorageError::TypeMismatch { expected: DataType::Int, actual: DataType::Str }
        );
    }

    #[test]
    fn float_column_widens_ints() {
        let mut c = ColumnVector::new(DataType::Float);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn get_out_of_bounds_errors() {
        let c = ColumnVector::from_ints([1, 2]);
        assert_eq!(c.get(2).unwrap_err(), StorageError::RowOutOfBounds { index: 2, len: 2 });
    }

    #[test]
    fn distinct_count_ignores_nulls() {
        let mut c = ColumnVector::from_ints([1, 1, 2, 3, 3, 3]);
        assert_eq!(c.distinct_count(), 3);
        c.push(Value::Null).unwrap();
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn distinct_count_on_strings() {
        let c = ColumnVector::from_strs(["a", "b", "a"]);
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn min_max_skips_nulls() {
        let mut c = ColumnVector::new(DataType::Int);
        c.push(Value::Null).unwrap();
        c.push(Value::Int(4)).unwrap();
        c.push(Value::Int(-1)).unwrap();
        let (lo, hi) = c.min_max().unwrap();
        assert_eq!(lo, Value::Int(-1));
        assert_eq!(hi, Value::Int(4));
    }

    #[test]
    fn min_max_of_all_null_column_is_none() {
        let mut c = ColumnVector::new(DataType::Float);
        c.push(Value::Null).unwrap();
        assert!(c.min_max().is_none());
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let c = ColumnVector::from_ints([10, 20, 30]);
        let g = c.gather(&[2, 0, 0]).unwrap();
        assert_eq!(g.get(0).unwrap(), Value::Int(30));
        assert_eq!(g.get(1).unwrap(), Value::Int(10));
        assert_eq!(g.get(2).unwrap(), Value::Int(10));
    }

    #[test]
    fn slice_accessors_expose_payload_and_validity() {
        let mut c = ColumnVector::new(DataType::Int);
        c.push(Value::Int(7)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.as_int_slice().unwrap().len(), 2);
        assert_eq!(c.as_int_slice().unwrap()[0], 7);
        assert_eq!(c.validity(), &[true, false]);
        assert!(c.as_float_slice().is_none());
        assert!(c.as_str_slice().is_none());
        let f = ColumnVector::from_floats([1.5]);
        assert_eq!(f.as_float_slice().unwrap(), &[1.5]);
        let s = ColumnVector::from_strs(["x"]);
        assert_eq!(s.as_str_slice().unwrap(), &["x".to_owned()]);
    }

    #[test]
    fn gather_u32_matches_gather_and_keeps_nulls() {
        let mut c = ColumnVector::new(DataType::Str);
        c.push(Value::from("a")).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::from("c")).unwrap();
        let a = c.gather(&[2, 1, 0]).unwrap();
        let b = c.gather_u32(&[2, 1, 0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.get(1).unwrap(), Value::Null);
        assert_eq!(a.get(0).unwrap(), Value::from("c"));
        assert!(c.gather_u32(&[3]).is_err());
    }

    #[test]
    fn value_ref_equality_matches_sql_semantics() {
        assert!(ValueRef::Int(2).sql_eq(ValueRef::Float(2.0)));
        assert!(!ValueRef::Null.sql_eq(ValueRef::Null));
        assert!(ValueRef::Str("x").sql_eq(ValueRef::Str("x")));
        assert!(!ValueRef::Int(1).sql_eq(ValueRef::Str("1")));
    }

    #[test]
    fn iter_yields_all_rows() {
        let c = ColumnVector::from_floats([1.0, 2.5]);
        let vals: Vec<Value> = c.iter().collect();
        assert_eq!(vals, vec![Value::Float(1.0), Value::Float(2.5)]);
    }
}
