#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it ships.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check

echo "check.sh: all gates passed"
