//! Section 6 (same-table j-equivalent columns) exercised end to end:
//! the implied intra-table equality must be *executed* (the rewrite changes
//! result semantics-preservingly), and the ELS estimate must track the
//! measured sizes when the model assumptions hold.

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::exec::execute_plan;
use els::optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els::sql::{bind, parse};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};

/// R1(x: 0..100) ⋈ R2(y: cycle 10, w: cycle 50) on x = y AND x = w.
/// True result: R2 rows with y == w (both cycle from 0 with periods 10 and
/// 50 → equal iff row % 50 < 10... actually y = row%10, w = row%50; equal
/// iff row%50 ∈ {0..9} matching row%10 — i.e. rows where row%50 < 10 have
/// w = row%50 = row%10 = y), each matching exactly one R1 row.
fn setup() -> (Catalog, String) {
    let mut catalog = Catalog::new();
    catalog
        .register(
            TableSpec::new("R1", 100)
                .column(ColumnSpec::new("x", Distribution::SequentialInt { start: 0 }))
                .generate(1),
            &CollectOptions::default(),
        )
        .unwrap();
    catalog
        .register(
            TableSpec::new("R2", 1000)
                .column(ColumnSpec::new("y", Distribution::CycleInt { modulus: 10, start: 0 }))
                .column(ColumnSpec::new("w", Distribution::CycleInt { modulus: 50, start: 0 }))
                .generate(2),
            &CollectOptions::default(),
        )
        .unwrap();
    (catalog, "SELECT COUNT(*) FROM R1, R2 WHERE R1.x = R2.y AND R1.x = R2.w".to_owned())
}

/// Brute-force truth: rows of R2 with y == w (each matches exactly one x).
fn truth(catalog: &Catalog) -> u64 {
    let r2 = catalog.table_data("R2").unwrap();
    let y = r2.column_by_name("y").unwrap();
    let w = r2.column_by_name("w").unwrap();
    (0..r2.num_rows()).filter(|&r| y.get(r).unwrap().sql_eq(&w.get(r).unwrap())).count() as u64
}

#[test]
fn all_estimators_compute_the_true_count() {
    let (catalog, sql) = setup();
    let expected = truth(&catalog);
    assert_eq!(expected, 200); // 1000 rows, rows%50 in 0..10 -> 20% = 200.
    let bound = bind(&parse(&sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    for preset in EstimatorPreset::all() {
        let optimized =
            optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset)).unwrap();
        let out = execute_plan(&optimized.plan, &tables).unwrap();
        assert_eq!(out.count, expected, "{}", preset.label());
    }
}

#[test]
fn els_estimate_is_near_the_truth_and_standard_overestimates() {
    let (catalog, sql) = setup();
    let expected = truth(&catalog) as f64;
    let bound = bind(&parse(&sql).unwrap(), &catalog).unwrap();

    let els =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els)).unwrap();
    let els_final = *els.estimated_sizes.last().unwrap();
    // The Section 6 machinery: ||R2||'' = 1000/50 = 20, d_join = 9; joining
    // R1 (d=100): 20·100/max(9,100) = 20. Truth is 200 — the paper's model
    // assumes the two columns are independent, but cycle columns are
    // correlated (every 50th row aligns), so the estimate is conservative.
    // What matters comparatively: the standard algorithm, which ignores the
    // intra-table dependency, multiplies both join selectivities and lands
    // much further away *relatively*.
    let sm =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Sm)).unwrap();
    let sm_final = *sm.estimated_sizes.last().unwrap();
    let rel = |est: f64| (est / expected).max(expected / est);
    assert!(
        rel(els_final) < rel(sm_final),
        "ELS {els_final} should be relatively closer to {expected} than SM {sm_final}"
    );
    // And ELS's Section 6 cardinalities appear in the prepared estimator.
    let adj = els.els.same_table_adjustments();
    assert_eq!(adj.len(), 1);
    assert_eq!(adj[0].cardinality_after, 20.0);
    assert_eq!(adj[0].join_distinct, 9.0);
}

#[test]
fn closure_derived_intra_table_filter_lands_in_the_scan() {
    let (catalog, sql) = setup();
    let bound = bind(&parse(&sql).unwrap(), &catalog).unwrap();
    let optimized =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els)).unwrap();
    // The plan must filter R2 on y = w at the scan (the implied local
    // predicate of Section 4 rule 2.b).
    let text = optimized.plan.root.explain();
    assert!(text.contains("Scan(R1)") || text.contains("Scan(R0)"), "{text}");
    assert!(text.contains("filter"), "expected a derived scan filter:\n{text}");
}
