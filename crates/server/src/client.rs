//! A small blocking client for the line protocol.
//!
//! Exists so the integration tests and the `bench_server_traffic` load
//! generator speak the protocol through one implementation instead of
//! three hand-rolled ones. Every response parses back into the typed
//! [`ServerError`] vocabulary, so a bench can distinguish a clean
//! `Overloaded` rejection from a hang (the read timeout) — the difference
//! the overload-regression gate is built on.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::error::{ServerError, ServerResult};
use crate::protocol::{parse_header, parse_row, MAX_LINE_BYTES};

/// One parsed query result.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// `COUNT(*)` value (or result row count for projections).
    pub count: u64,
    /// Whether the server answered from its plan cache.
    pub cached: bool,
    /// Result rows as unescaped strings.
    pub rows: Vec<Vec<String>>,
}

/// A connected, handshaken client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect, handshake as `tenant`, and wait for `READY`. A typed
    /// error here is the server refusing (overloaded, unknown tenant);
    /// an `Io` error wraps transport failures, including the read
    /// timeout that would otherwise be a silent hang.
    pub fn connect(
        addr: std::net::SocketAddr,
        tenant: &str,
        timeout: Duration,
    ) -> ServerResult<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client { reader, writer: stream };
        // An admission-rejected connection may close before our HELLO
        // lands (broken pipe); the rejection line is still in flight, so
        // read the response even when the write failed.
        let hello_failed =
            writeln!(client.writer, "HELLO {tenant}").and_then(|()| client.writer.flush()).is_err();
        let line = match client.read_line() {
            Ok(line) => line,
            Err(_) if hello_failed => {
                return Err(ServerError::Io("connection refused during handshake".to_string()))
            }
            Err(e) => return Err(e),
        };
        if line == "READY" {
            return Ok(client);
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (kind, msg) = rest.split_once(' ').unwrap_or((rest, ""));
            return Err(ServerError::from_wire(kind, msg));
        }
        Err(ServerError::Protocol(format!("expected READY, got `{line}`")))
    }

    /// Run one query and read the full response.
    pub fn query(&mut self, sql: &str) -> ServerResult<Reply> {
        writeln!(self.writer, "{sql}")?;
        self.writer.flush()?;
        let header = self.read_line()?;
        let (rows, count, cached) = parse_header(&header)?;
        let mut out = Vec::with_capacity(rows as usize);
        loop {
            let line = self.read_line()?;
            if line == "." {
                break;
            }
            out.push(parse_row(&line)?);
        }
        if out.len() as u64 != rows {
            return Err(ServerError::Protocol(format!(
                "header promised {rows} rows, got {}",
                out.len()
            )));
        }
        Ok(Reply { count, cached, rows: out })
    }

    /// Send a query but never read the response — simulates a client that
    /// disconnects mid-result when the `Client` is dropped right after.
    pub fn fire_and_hang_up(mut self, sql: &str) -> ServerResult<()> {
        writeln!(self.writer, "{sql}")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Polite goodbye; errors are irrelevant because the socket closes
    /// either way.
    pub fn quit(mut self) {
        let _ = writeln!(self.writer, "QUIT");
        let _ = self.writer.flush();
    }

    fn read_line(&mut self) -> ServerResult<String> {
        let mut buf = Vec::new();
        loop {
            match self.reader.read_until(b'\n', &mut buf) {
                Ok(0) if buf.is_empty() => {
                    return Err(ServerError::Io("connection closed".to_string()))
                }
                Ok(0) => break,
                Ok(_) if buf.last() == Some(&b'\n') => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Unlike the server, a client read timeout is terminal:
                // the bench counts it as a hang, the protocol's one
                // unacceptable outcome.
                Err(e) => return Err(ServerError::Io(e.to_string())),
            }
            if buf.len() > MAX_LINE_BYTES {
                return Err(ServerError::Protocol(format!(
                    "response line exceeds {MAX_LINE_BYTES} bytes"
                )));
            }
        }
        Ok(String::from_utf8_lossy(&buf).trim_end().to_string())
    }
}
