//! End-to-end: SQL text → bind → optimize → execute, with results checked
//! against brute-force evaluation and estimates checked against the data.

use std::sync::Arc;

use els::catalog::collect::CollectOptions;
use els::catalog::Catalog;
use els::exec::execute_plan;
use els::optimizer::{bound_query_tables, optimize_bound, EstimatorPreset, OptimizerOptions};
use els::sql::{bind, parse};
use els::storage::datagen::{ColumnSpec, Distribution, TableSpec};
use els::storage::Table;

/// Brute-force COUNT(*) of a conjunctive query by nested iteration.
fn brute_force_count(tables: &[Arc<Table>], predicates: &[els::core::Predicate]) -> u64 {
    fn rec(
        tables: &[Arc<Table>],
        predicates: &[els::core::Predicate],
        row: &mut Vec<usize>,
        depth: usize,
    ) -> u64 {
        if depth == tables.len() {
            let ok = predicates.iter().all(|p| match p {
                els::core::Predicate::LocalCmp { column, op, value } => {
                    let v = tables[column.table]
                        .column(column.column)
                        .unwrap()
                        .get(row[column.table])
                        .unwrap();
                    v.sql_cmp(value).map(|o| op.eval(o)).unwrap_or(false)
                }
                els::core::Predicate::IsNull { column, negated } => {
                    let v = tables[column.table]
                        .column(column.column)
                        .unwrap()
                        .get(row[column.table])
                        .unwrap();
                    v.is_null() != *negated
                }
                els::core::Predicate::LocalColEq { left, right }
                | els::core::Predicate::JoinEq { left, right } => {
                    let a = tables[left.table]
                        .column(left.column)
                        .unwrap()
                        .get(row[left.table])
                        .unwrap();
                    let b = tables[right.table]
                        .column(right.column)
                        .unwrap()
                        .get(row[right.table])
                        .unwrap();
                    a.sql_eq(&b)
                }
                els::core::Predicate::JoinRange { left, op, right } => {
                    let a = tables[left.table]
                        .column(left.column)
                        .unwrap()
                        .get(row[left.table])
                        .unwrap();
                    let b = tables[right.table]
                        .column(right.column)
                        .unwrap()
                        .get(row[right.table])
                        .unwrap();
                    a.sql_cmp(&b).map(|o| op.eval(o)).unwrap_or(false)
                }
            });
            return ok as u64;
        }
        let mut total = 0;
        for r in 0..tables[depth].num_rows() {
            row[depth] = r;
            total += rec(tables, predicates, row, depth + 1);
        }
        total
    }
    let mut row = vec![0usize; tables.len()];
    rec(tables, predicates, &mut row, 0)
}

fn small_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        TableSpec::new("A", 30)
            .column(ColumnSpec::new("k", Distribution::SequentialInt { start: 0 }))
            .column(ColumnSpec::new("v", Distribution::CycleInt { modulus: 5, start: 0 }))
            .generate(1),
        &CollectOptions::default(),
    )
    .unwrap();
    c.register(
        TableSpec::new("Bt", 40)
            .column(ColumnSpec::new("k", Distribution::CycleInt { modulus: 20, start: 0 }))
            .column(ColumnSpec::new("w", Distribution::CycleInt { modulus: 4, start: 0 }))
            .generate(2),
        &CollectOptions::default(),
    )
    .unwrap();
    c.register(
        TableSpec::new("Ct", 25)
            .column(ColumnSpec::new("k", Distribution::CycleInt { modulus: 10, start: 0 }))
            .generate(3),
        &CollectOptions::default(),
    )
    .unwrap();
    c
}

/// Optimize + execute `sql` under every preset and check the count against
/// brute force.
fn check_query(sql: &str) {
    let catalog = small_catalog();
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let truth = brute_force_count(&tables, &bound.predicates);
    for preset in EstimatorPreset::all() {
        let optimized =
            optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset)).unwrap();
        let out = execute_plan(&optimized.plan, &tables).unwrap();
        assert_eq!(out.count, truth, "{sql} under {}", preset.label());
    }
    // Hash joins enabled must agree too.
    let optimized = optimize_bound(
        &bound,
        &catalog,
        &OptimizerOptions::preset(EstimatorPreset::Els).with_hash_join(),
    )
    .unwrap();
    let out = execute_plan(&optimized.plan, &tables).unwrap();
    assert_eq!(out.count, truth, "{sql} with hash joins");
    // And bushy-tree enumeration (plans may have intermediate inners).
    let optimized = optimize_bound(
        &bound,
        &catalog,
        &OptimizerOptions::preset(EstimatorPreset::Els).with_hash_join().with_bushy_trees(),
    )
    .unwrap();
    let out = execute_plan(&optimized.plan, &tables).unwrap();
    assert_eq!(out.count, truth, "{sql} with bushy trees");
    // And indexed nested loops in the repertoire.
    let optimized = optimize_bound(
        &bound,
        &catalog,
        &OptimizerOptions::preset(EstimatorPreset::Els).with_index_nested_loop(),
    )
    .unwrap();
    let out = execute_plan(&optimized.plan, &tables).unwrap();
    assert_eq!(out.count, truth, "{sql} with index nested loops");
}

#[test]
fn two_way_join() {
    check_query("SELECT COUNT(*) FROM A, Bt WHERE A.k = Bt.k");
}

#[test]
fn two_way_join_with_filter() {
    check_query("SELECT COUNT(*) FROM A, Bt WHERE A.k = Bt.k AND A.k < 12");
}

#[test]
fn three_way_chain() {
    check_query("SELECT COUNT(*) FROM A, Bt, Ct WHERE A.k = Bt.k AND Bt.k = Ct.k");
}

#[test]
fn three_way_chain_with_filters() {
    check_query(
        "SELECT COUNT(*) FROM A, Bt, Ct WHERE A.k = Bt.k AND Bt.k = Ct.k AND A.k < 8 AND Bt.w = 1",
    );
}

#[test]
fn same_table_j_equivalent_columns_query() {
    // A.k = Bt.k AND A.k = Bt.w: the Section 6 shape. Closure derives
    // Bt.k = Bt.w, applied at the scan.
    check_query("SELECT COUNT(*) FROM A, Bt WHERE A.k = Bt.k AND A.k = Bt.w");
}

#[test]
fn cartesian_product_query() {
    check_query("SELECT COUNT(*) FROM A, Ct");
}

#[test]
fn local_only_query() {
    check_query("SELECT COUNT(*) FROM A WHERE v = 2 AND k >= 4");
}

#[test]
fn empty_result_query() {
    check_query("SELECT COUNT(*) FROM A, Bt WHERE A.k = Bt.k AND A.k > 1000");
}

#[test]
fn duplicate_predicates_query() {
    check_query(
        "SELECT COUNT(*) FROM A, Bt WHERE A.k = Bt.k AND A.k = Bt.k AND A.k < 12 AND A.k < 12",
    );
}

#[test]
fn pure_inequality_band_join() {
    check_query("SELECT COUNT(*) FROM A, Bt WHERE A.k < Bt.k");
}

#[test]
fn inequality_with_filters() {
    check_query("SELECT COUNT(*) FROM A, Bt WHERE A.k >= Bt.k AND A.k < 12 AND Bt.w = 1");
}

#[test]
fn mixed_equi_and_inequality_join() {
    check_query("SELECT COUNT(*) FROM A, Bt WHERE A.k = Bt.k AND A.v <= Bt.w");
}

#[test]
fn column_between_band_join() {
    check_query("SELECT COUNT(*) FROM A, Bt WHERE Bt.k BETWEEN A.v AND A.k");
}

#[test]
fn three_way_with_inequality_edge() {
    check_query("SELECT COUNT(*) FROM A, Bt, Ct WHERE A.k = Bt.k AND Bt.k > Ct.k");
}

#[test]
fn inverted_between_is_statically_empty() {
    // `BETWEEN 5 AND 3` binds to the contradictory pair `k >= 5 AND k <= 3`:
    // the estimate collapses to zero and so does the executed result —
    // end-to-end, under every preset.
    let catalog = small_catalog();
    let sql = "SELECT COUNT(*) FROM A, Bt WHERE A.k = Bt.k AND A.k BETWEEN 5 AND 3";
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    assert_eq!(brute_force_count(&tables, &bound.predicates), 0);
    for preset in EstimatorPreset::all() {
        let optimized =
            optimize_bound(&bound, &catalog, &OptimizerOptions::preset(preset)).unwrap();
        let out = execute_plan(&optimized.plan, &tables).unwrap();
        assert_eq!(out.count, 0, "{sql} under {}", preset.label());
        if preset == EstimatorPreset::Els {
            let last = *optimized.estimated_sizes.last().unwrap();
            assert!(last < 1.0, "contradictory range must estimate below one tuple: {last}");
        }
    }
}

#[test]
fn projection_star_and_columns_execute() {
    let catalog = small_catalog();
    let bound =
        bind(&parse("SELECT A.k, Bt.w FROM A, Bt WHERE A.k = Bt.k").unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els)).unwrap();
    let out = execute_plan(&optimized.plan, &tables).unwrap();
    assert_eq!(out.rows.num_columns(), 2);
    assert!(out.count > 0);
}

#[test]
fn estimates_are_exact_when_model_assumptions_hold() {
    // Cycle columns with nested domains satisfy uniformity + containment
    // exactly, so ELS's estimate must equal the executed count.
    let catalog = small_catalog();
    let sql = "SELECT COUNT(*) FROM A, Bt, Ct WHERE A.k = Bt.k AND Bt.k = Ct.k";
    let bound = bind(&parse(sql).unwrap(), &catalog).unwrap();
    let tables = bound_query_tables(&bound, &catalog).unwrap();
    let optimized =
        optimize_bound(&bound, &catalog, &OptimizerOptions::preset(EstimatorPreset::Els)).unwrap();
    let out = execute_plan(&optimized.plan, &tables).unwrap();
    let final_estimate = *optimized.estimated_sizes.last().unwrap();
    assert_eq!(final_estimate.round() as u64, out.count);
}
