//! Intermediate results with column provenance.

use els_core::ColumnRef;
use els_storage::{ColumnVector, Table};

use crate::error::{ExecError, ExecResult};

/// A materialized intermediate result: a table whose columns are tracked
/// back to `(table, column)` positions of the original query, so predicates
/// expressed against the query can be evaluated at any point in the plan.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// The data. Column names are synthesized (`t{T}_c{C}`).
    pub data: Table,
    /// Provenance of each data column, parallel to the table's columns.
    pub provenance: Vec<ColumnRef>,
}

impl Chunk {
    /// Wrap a base table scan result: every stored column, with provenance
    /// `(table_id, i)`.
    pub fn from_base_table(table_id: usize, data: Table) -> Chunk {
        let provenance = (0..data.num_columns()).map(|i| ColumnRef::new(table_id, i)).collect();
        Chunk { data, provenance }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.data.num_rows()
    }

    /// Position of a query column in this chunk, if present.
    pub fn position_of(&self, c: ColumnRef) -> Option<usize> {
        self.provenance.iter().position(|p| *p == c)
    }

    /// Position of a query column, as an error when absent.
    pub fn require(&self, c: ColumnRef) -> ExecResult<usize> {
        self.position_of(c).ok_or(ExecError::ColumnNotInSchema(c))
    }

    /// True when this chunk carries any column of query table `t`.
    pub fn covers_table(&self, t: usize) -> bool {
        self.provenance.iter().any(|p| p.table == t)
    }

    /// Build a chunk by concatenating columns gathered from two parents
    /// (used by joins): `rows` lists `(left_row, right_row)` pairs.
    pub fn join_rows(left: &Chunk, right: &Chunk, rows: &[(usize, usize)]) -> ExecResult<Chunk> {
        let (l_idx, r_idx): (Vec<usize>, Vec<usize>) = rows.iter().copied().unzip();
        let mut columns: Vec<(String, ColumnVector)> = Vec::new();
        let mut provenance = Vec::new();
        for (i, col) in left.data.columns().iter().enumerate() {
            let p = left.provenance[i];
            columns.push((format!("t{}_c{}", p.table, p.column), col.gather(&l_idx)?));
            provenance.push(p);
        }
        for (i, col) in right.data.columns().iter().enumerate() {
            let p = right.provenance[i];
            columns.push((format!("t{}_c{}", p.table, p.column), col.gather(&r_idx)?));
            provenance.push(p);
        }
        Ok(Chunk { data: Table::new("join", columns)?, provenance })
    }

    /// Keep only the rows at `indices`.
    pub fn filter_rows(&self, indices: &[usize]) -> ExecResult<Chunk> {
        Ok(Chunk {
            data: self.data.gather(self.data.name().to_owned(), indices)?,
            provenance: self.provenance.clone(),
        })
    }

    /// Project to the given query columns (each must be present).
    pub fn project(&self, columns: &[ColumnRef]) -> ExecResult<Chunk> {
        let mut cols: Vec<(String, ColumnVector)> = Vec::new();
        let mut provenance = Vec::new();
        for &c in columns {
            let pos = self.require(c)?;
            cols.push((format!("t{}_c{}", c.table, c.column), self.data.column(pos)?.clone()));
            provenance.push(c);
        }
        Ok(Chunk { data: Table::new("project", cols)?, provenance })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use els_storage::{DataType, Value};

    fn base(table_id: usize, values: &[i64]) -> Chunk {
        let mut t = Table::empty("b", &[("k", DataType::Int)]);
        for &v in values {
            t.push_row(vec![Value::Int(v)]).unwrap();
        }
        Chunk::from_base_table(table_id, t)
    }

    #[test]
    fn provenance_tracks_base_columns() {
        let c = base(3, &[1, 2]);
        assert_eq!(c.provenance, vec![ColumnRef::new(3, 0)]);
        assert!(c.covers_table(3));
        assert!(!c.covers_table(0));
        assert_eq!(c.position_of(ColumnRef::new(3, 0)), Some(0));
        assert!(c.require(ColumnRef::new(1, 0)).is_err());
    }

    #[test]
    fn join_rows_concatenates_schemas() {
        let l = base(0, &[10, 20]);
        let r = base(1, &[30, 40]);
        let j = Chunk::join_rows(&l, &r, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.provenance, vec![ColumnRef::new(0, 0), ColumnRef::new(1, 0)]);
        assert_eq!(j.data.row(0).unwrap(), vec![Value::Int(10), Value::Int(40)]);
        assert_eq!(j.data.row(1).unwrap(), vec![Value::Int(20), Value::Int(30)]);
    }

    #[test]
    fn filter_rows_keeps_selection() {
        let c = base(0, &[5, 6, 7]);
        let f = c.filter_rows(&[2, 0]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.data.row(0).unwrap(), vec![Value::Int(7)]);
    }

    #[test]
    fn project_reorders_columns() {
        let l = base(0, &[1]);
        let r = base(1, &[2]);
        let j = Chunk::join_rows(&l, &r, &[(0, 0)]).unwrap();
        let p = j.project(&[ColumnRef::new(1, 0)]).unwrap();
        assert_eq!(p.provenance, vec![ColumnRef::new(1, 0)]);
        assert_eq!(p.data.row(0).unwrap(), vec![Value::Int(2)]);
        assert!(j.project(&[ColumnRef::new(9, 9)]).is_err());
    }
}
