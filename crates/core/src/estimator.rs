//! Incremental join-result-size estimation (Algorithm ELS, Step 6;
//! paper Section 7).
//!
//! A [`PreparedQuery`] holds everything Steps 1–5 produced: effective table
//! cardinalities, the column cardinalities to plug into Equation 2, the
//! equivalence classes, and the annotated join predicates. A [`JoinState`]
//! is an immutable snapshot of one intermediate result (a set of joined
//! tables plus its estimated cardinality); [`PreparedQuery::join`] extends a
//! state by one table, the access pattern of every System-R style
//! enumerator.
//!
//! At each step the *eligible* predicates — those linking the new table to
//! tables already in the state — are grouped by equivalence class, each
//! class contributes one selectivity chosen by the configured
//! [`SelectivityRule`], classes multiply (independence assumption), and the
//! new cardinality is `old · ‖T‖′ · ∏ per-class selectivity`.

use std::collections::HashMap;

use crate::error::{ElsError, ElsResult};
use crate::ids::{ClassId, TableId};
use crate::join_sel::{JoinPredicateInfo, RangePredicateInfo};
use crate::rules::SelectivityRule;

/// Maximum number of tables in one query (states are 64-bit bitmasks).
pub const MAX_TABLES: usize = 64;

/// An immutable snapshot of an intermediate join result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinState {
    tables: u64,
    cardinality: f64,
}

impl JoinState {
    /// Build a state directly from a table bitmask and an estimate. Only
    /// estimator implementations (this module and [`crate::cardinality`])
    /// construct states; everyone else receives them from an estimator, so
    /// the mask/cardinality pairing stays an estimator invariant.
    pub(crate) fn from_parts(tables: u64, cardinality: f64) -> JoinState {
        JoinState { tables, cardinality }
    }

    /// The estimated cardinality of this intermediate result.
    pub fn cardinality(&self) -> f64 {
        self.cardinality
    }

    /// Bitmask of the joined tables (bit `i` = table `i`).
    pub fn table_mask(&self) -> u64 {
        self.tables
    }

    /// True when `table` is part of this state.
    pub fn contains(&self, table: TableId) -> bool {
        table < MAX_TABLES && self.tables & (1 << table) != 0
    }

    /// The tables in this state, ascending.
    pub fn tables(&self) -> Vec<TableId> {
        (0..MAX_TABLES).filter(|t| self.contains(*t)).collect()
    }

    /// Number of tables in the state.
    pub fn len(&self) -> usize {
        self.tables.count_ones() as usize
    }

    /// True when the state is empty (no tables yet).
    pub fn is_empty(&self) -> bool {
        self.tables == 0
    }
}

/// How one equivalence class contributed to one join step.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassChoice {
    /// The class.
    pub class: ClassId,
    /// Selectivities of the eligible predicates in this class.
    pub eligible: Vec<f64>,
    /// The value the configured rule selected/combined.
    pub chosen: f64,
}

/// Diagnostic record of one join step (see
/// [`PreparedQuery::explain_join`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStepExplanation {
    /// The table being joined in.
    pub table: TableId,
    /// Its effective base cardinality.
    pub base_cardinality: f64,
    /// Per-class eligible selectivities and the rule's choice.
    pub classes: Vec<ClassChoice>,
    /// Intermediate cardinality before the step.
    pub cardinality_before: f64,
    /// Intermediate cardinality after the step.
    pub cardinality_after: f64,
}

/// The output of Steps 1–5, ready for incremental estimation.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// Effective table cardinalities (‖R‖′, or ‖R‖″ after Section 6).
    pub(crate) table_cardinality: Vec<f64>,
    /// Annotated join predicates (post-closure when closure is enabled).
    pub(crate) join_predicates: Vec<JoinPredicateInfo>,
    /// Annotated inequality join predicates. Classless: each multiplies its
    /// selectivity into the first step that crosses it.
    pub(crate) range_predicates: Vec<RangePredicateInfo>,
    /// Fixed representative selectivity per class (for Rule REP).
    pub(crate) class_representative: HashMap<ClassId, f64>,
    /// The configured selectivity-choice rule.
    pub(crate) rule: SelectivityRule,
}

impl PreparedQuery {
    /// Build a prepared query directly from its parts. Most users should go
    /// through [`crate::algorithm::Els::prepare`], which runs Steps 1–5;
    /// this constructor exists for tests and custom pipelines.
    pub fn from_parts(
        table_cardinality: Vec<f64>,
        join_predicates: Vec<JoinPredicateInfo>,
        class_representative: HashMap<ClassId, f64>,
        rule: SelectivityRule,
    ) -> Self {
        PreparedQuery {
            table_cardinality,
            join_predicates,
            range_predicates: Vec::new(),
            class_representative,
            rule,
        }
    }

    /// Attach annotated inequality join predicates (builder style).
    #[must_use]
    pub fn with_range_predicates(mut self, range_predicates: Vec<RangePredicateInfo>) -> Self {
        self.range_predicates = range_predicates;
        self
    }

    /// Number of tables in the query.
    pub fn num_tables(&self) -> usize {
        self.table_cardinality.len()
    }

    /// Effective cardinality of a base table (after local predicates and the
    /// Section 6 adjustment).
    pub fn base_cardinality(&self, table: TableId) -> ElsResult<f64> {
        self.table_cardinality.get(table).copied().ok_or(ElsError::UnknownTable(table))
    }

    /// The annotated join predicates.
    pub fn join_predicates(&self) -> &[JoinPredicateInfo] {
        &self.join_predicates
    }

    /// The annotated inequality join predicates.
    pub fn range_predicates(&self) -> &[RangePredicateInfo] {
        &self.range_predicates
    }

    /// Product of the selectivities of the range predicates linking `table`
    /// to the tables of `state` (1.0 when none cross).
    fn range_selectivity(&self, state: &JoinState, table: TableId) -> f64 {
        self.range_predicates
            .iter()
            .filter(|p| {
                (p.left.table == table && state.contains(p.right.table))
                    || (p.right.table == table && state.contains(p.left.table))
            })
            .map(|p| p.selectivity)
            .product()
    }

    /// The selectivity-choice rule in force.
    pub fn rule(&self) -> SelectivityRule {
        self.rule
    }

    /// The effective cardinality of `table`, or a typed error when the id
    /// is outside the query or the 64-table state mask. Centralizing the
    /// bound check keeps the estimator free of indexing panics: Algorithm
    /// ELS must degrade to an error on degenerate inputs, never abort.
    fn checked_base(&self, table: TableId) -> ElsResult<f64> {
        if table >= MAX_TABLES {
            return Err(ElsError::InvalidJoinStep { table, reason: "table out of range" });
        }
        self.table_cardinality
            .get(table)
            .copied()
            .ok_or(ElsError::InvalidJoinStep { table, reason: "table out of range" })
    }

    /// Start a join with a single base table.
    pub fn initial_state(&self, table: TableId) -> ElsResult<JoinState> {
        let cardinality = self.checked_base(table)?;
        Ok(JoinState { tables: 1 << table, cardinality })
    }

    /// The representative selectivity of `class`. Only
    /// [`SelectivityRule::Representative`] consumes the value
    /// ([`SelectivityRule::combine`] ignores it under every other rule), so
    /// a missing entry is fine there — but under Rule REP it means Steps
    /// 1–5 and this query disagree about the class set (drifted or
    /// hand-built stats), and silently substituting 1.0 would turn every
    /// affected join step into a cartesian product. Degrade to a typed
    /// error instead.
    fn representative(&self, class: ClassId) -> ElsResult<f64> {
        match self.class_representative.get(&class).copied() {
            Some(r) => Ok(r),
            None if self.rule != SelectivityRule::Representative => Ok(1.0),
            None => Err(ElsError::DegenerateStats(format!(
                "rule REP has no representative selectivity for class {class}"
            ))),
        }
    }

    /// Selectivities of the predicates linking `table` to the tables of
    /// `state`, grouped by equivalence class.
    fn eligible_by_class(&self, state: &JoinState, table: TableId) -> HashMap<ClassId, Vec<f64>> {
        let mut by_class: HashMap<ClassId, Vec<f64>> = HashMap::new();
        for p in &self.join_predicates {
            let links = (p.left.table == table && state.contains(p.right.table))
                || (p.right.table == table && state.contains(p.left.table));
            if links {
                by_class.entry(p.class).or_default().push(p.selectivity);
            }
        }
        by_class
    }

    /// Extend `state` by `table`, returning the new state with its estimated
    /// cardinality. When no predicate links the new table to the state the
    /// step is a cartesian product.
    pub fn join(&self, state: &JoinState, table: TableId) -> ElsResult<JoinState> {
        let base = self.checked_base(table)?;
        if state.contains(table) {
            return Err(ElsError::InvalidJoinStep { table, reason: "table already joined" });
        }
        if state.is_empty() {
            return self.initial_state(table);
        }
        let mut selectivity = 1.0f64;
        for (class, eligible) in self.eligible_by_class(state, table) {
            selectivity *= self.rule.combine(&eligible, self.representative(class)?);
        }
        selectivity *= self.range_selectivity(state, table);
        Ok(JoinState {
            tables: state.tables | (1 << table),
            cardinality: state.cardinality * base * selectivity,
        })
    }

    /// Explain one join step: the eligible selectivities per class, the
    /// value each class contributed under the configured rule, and the
    /// resulting cardinality. Pure diagnostics — [`PreparedQuery::join`]
    /// computes the same numbers.
    pub fn explain_join(
        &self,
        state: &JoinState,
        table: TableId,
    ) -> ElsResult<JoinStepExplanation> {
        let new_state = self.join(state, table)?;
        let base_cardinality = self.checked_base(table)?;
        let mut classes: Vec<ClassChoice> = Vec::new();
        for (class, eligible) in self.eligible_by_class(state, table) {
            let chosen = self.rule.combine(&eligible, self.representative(class)?);
            classes.push(ClassChoice { class, eligible, chosen });
        }
        classes.sort_by_key(|c| c.class);
        Ok(JoinStepExplanation {
            table,
            base_cardinality,
            classes,
            cardinality_before: state.cardinality(),
            cardinality_after: new_state.cardinality(),
        })
    }

    /// Join two disjoint intermediate results (the bushy-tree transition).
    /// Eligible predicates are those linking a table of `a` to a table of
    /// `b`; the configured rule combines them per class exactly as in the
    /// left-deep case. Rule LS remains consistent with Equation 3 here:
    /// with per-side class minima `m_a`, `m_b`, the largest eligible
    /// selectivity is `1/max(m_a, m_b)`, which stitches the two partial
    /// denominators into the full all-but-global-min product.
    pub fn join_sets(&self, a: &JoinState, b: &JoinState) -> ElsResult<JoinState> {
        if a.tables & b.tables != 0 {
            return Err(ElsError::InvalidJoinStep {
                table: (a.tables & b.tables).trailing_zeros() as usize,
                reason: "join sides overlap",
            });
        }
        if a.is_empty() {
            return Ok(*b);
        }
        if b.is_empty() {
            return Ok(*a);
        }
        let mut by_class: HashMap<ClassId, Vec<f64>> = HashMap::new();
        for p in &self.join_predicates {
            let links = (a.contains(p.left.table) && b.contains(p.right.table))
                || (b.contains(p.left.table) && a.contains(p.right.table));
            if links {
                by_class.entry(p.class).or_default().push(p.selectivity);
            }
        }
        let mut selectivity = 1.0f64;
        for (class, eligible) in by_class {
            selectivity *= self.rule.combine(&eligible, self.representative(class)?);
        }
        for p in &self.range_predicates {
            let links = (a.contains(p.left.table) && b.contains(p.right.table))
                || (b.contains(p.left.table) && a.contains(p.right.table));
            if links {
                selectivity *= p.selectivity;
            }
        }
        Ok(JoinState {
            tables: a.tables | b.tables,
            cardinality: a.cardinality * b.cardinality * selectivity,
        })
    }

    /// Estimate the sizes of every intermediate result along a join order.
    /// Returns one entry per join step (so `order.len() - 1` entries).
    pub fn estimate_order(&self, order: &[TableId]) -> ElsResult<Vec<f64>> {
        let Some((&first, rest)) = order.split_first() else {
            return Ok(Vec::new());
        };
        let mut state = self.initial_state(first)?;
        let mut sizes = Vec::with_capacity(rest.len());
        for &t in rest {
            state = self.join(&state, t)?;
            sizes.push(state.cardinality());
        }
        Ok(sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::transitive_closure;
    use crate::equivalence::EquivalenceClasses;
    use crate::ids::ColumnRef;
    use crate::join_sel::annotate_join_predicates;
    use crate::predicate::Predicate;
    use crate::rules::RepresentativeStrategy;

    fn c(t: usize, col: usize) -> ColumnRef {
        ColumnRef::new(t, col)
    }

    /// Paper Example 1b query: three tables, one class, closure applied;
    /// cardinalities 100/1000/1000, d = 10/100/1000.
    fn example_1b(rule: SelectivityRule, rep: RepresentativeStrategy) -> PreparedQuery {
        let preds = transitive_closure(&[
            Predicate::col_eq(c(0, 0), c(1, 0)),
            Predicate::col_eq(c(1, 0), c(2, 0)),
        ]);
        let classes = EquivalenceClasses::from_predicates(&preds);
        let d = |cr: ColumnRef| [10.0, 100.0, 1000.0][cr.table];
        let infos = annotate_join_predicates(&preds, &classes, d).unwrap();
        let mut class_sels: HashMap<ClassId, Vec<f64>> = HashMap::new();
        for i in &infos {
            class_sels.entry(i.class).or_default().push(i.selectivity);
        }
        let reps = class_sels.into_iter().map(|(k, v)| (k, rep.derive(&v))).collect();
        PreparedQuery::from_parts(vec![100.0, 1000.0, 1000.0], infos, reps, rule)
    }

    #[test]
    fn example_1b_intermediate_and_final() {
        // R2 ⋈ R3 = 1000, then LS gives the correct 1000.
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        let sizes = q.estimate_order(&[1, 2, 0]).unwrap();
        assert_eq!(sizes, vec![1000.0, 1000.0]);
    }

    #[test]
    fn example_2_rule_m_underestimates() {
        let q = example_1b(SelectivityRule::Multiplicative, Default::default());
        let sizes = q.estimate_order(&[1, 2, 0]).unwrap();
        assert_eq!(sizes[0], 1000.0);
        assert!((sizes[1] - 1.0).abs() < 1e-9, "Rule M should give 1, got {}", sizes[1]);
    }

    #[test]
    fn example_3_rule_ss_underestimates() {
        let q = example_1b(SelectivityRule::SmallestSelectivity, Default::default());
        let sizes = q.estimate_order(&[1, 2, 0]).unwrap();
        assert_eq!(sizes, vec![1000.0, 100.0]);
    }

    #[test]
    fn representative_rule_fails_both_ways() {
        // Rep = 0.01 (largest in class): final = 10000, too high.
        let q = example_1b(SelectivityRule::Representative, RepresentativeStrategy::LargestInClass);
        let sizes = q.estimate_order(&[1, 2, 0]).unwrap();
        assert_eq!(sizes, vec![10_000.0, 10_000.0]);
        // Rep = 0.001 (smallest): final = 100, too low.
        let q =
            example_1b(SelectivityRule::Representative, RepresentativeStrategy::SmallestInClass);
        let sizes = q.estimate_order(&[1, 2, 0]).unwrap();
        assert_eq!(sizes, vec![1000.0, 100.0]);
    }

    #[test]
    fn ls_is_order_independent_on_example_1b() {
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        for order in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let sizes = q.estimate_order(&order).unwrap();
            assert_eq!(*sizes.last().unwrap(), 1000.0, "final size differs for order {order:?}");
        }
    }

    #[test]
    fn rule_m_is_order_dependent_here() {
        // Starting with R1 ⋈ R2 then R3: eligible at step 2 are J2 and J3.
        let q = example_1b(SelectivityRule::Multiplicative, Default::default());
        let a = q.estimate_order(&[0, 1, 2]).unwrap().last().copied().unwrap();
        let b = q.estimate_order(&[1, 2, 0]).unwrap().last().copied().unwrap();
        assert!((a - 1.0).abs() < 1e-9 && (b - 1.0).abs() < 1e-9);
        // Both underestimate, but via different paths; the intermediate
        // differs: R1 ⋈ R2 = 100*1000*0.01 = 1000.
        assert_eq!(q.estimate_order(&[0, 1, 2]).unwrap()[0], 1000.0);
    }

    #[test]
    fn range_predicates_multiply_into_crossing_steps() {
        use crate::join_sel::RangePredicateInfo;
        use crate::predicate::CmpOp;
        let q = PreparedQuery::from_parts(
            vec![10.0, 20.0, 30.0],
            Vec::new(),
            HashMap::new(),
            SelectivityRule::LargestSelectivity,
        )
        .with_range_predicates(vec![RangePredicateInfo {
            left: c(0, 0),
            op: CmpOp::Lt,
            right: c(1, 0),
            selectivity: 0.25,
        }]);
        assert_eq!(q.range_predicates().len(), 1);
        // Crossing step applies the 0.25; the unrelated table does not.
        let s = q.initial_state(0).unwrap();
        let s01 = q.join(&s, 1).unwrap();
        assert_eq!(s01.cardinality(), 10.0 * 20.0 * 0.25);
        let s012 = q.join(&s01, 2).unwrap();
        assert_eq!(s012.cardinality(), 10.0 * 20.0 * 0.25 * 30.0);
        // Starting elsewhere, the predicate fires when its pair first meets.
        let s2 = q.initial_state(2).unwrap();
        let s20 = q.join(&s2, 0).unwrap();
        assert_eq!(s20.cardinality(), 300.0);
        let s201 = q.join(&s20, 1).unwrap();
        assert_eq!(s201.cardinality(), 300.0 * 20.0 * 0.25);
        // Bushy form agrees.
        let bushy = q.join_sets(&q.initial_state(1).unwrap(), &s20).unwrap();
        assert_eq!(bushy.cardinality(), s201.cardinality());
    }

    #[test]
    fn cartesian_product_when_no_predicate_links() {
        let q = PreparedQuery::from_parts(
            vec![10.0, 20.0],
            Vec::new(),
            HashMap::new(),
            SelectivityRule::LargestSelectivity,
        );
        let s = q.join(&q.initial_state(0).unwrap(), 1).unwrap();
        assert_eq!(s.cardinality(), 200.0);
    }

    #[test]
    fn join_state_accessors() {
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        let s = q.initial_state(1).unwrap();
        assert!(s.contains(1));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
        let s = q.join(&s, 2).unwrap();
        assert_eq!(s.tables(), vec![1, 2]);
        assert_eq!(s.table_mask(), 0b110);
    }

    #[test]
    fn invalid_steps_are_rejected() {
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        let s = q.initial_state(0).unwrap();
        assert!(matches!(
            q.join(&s, 0),
            Err(ElsError::InvalidJoinStep { table: 0, reason: "table already joined" })
        ));
        assert!(q.join(&s, 9).is_err());
        assert!(q.initial_state(9).is_err());
    }

    #[test]
    fn join_sets_matches_left_deep_for_single_table_sides() {
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        let a = q.initial_state(1).unwrap();
        let b = q.initial_state(2).unwrap();
        let bushy = q.join_sets(&a, &b).unwrap();
        let left_deep = q.join(&a, 2).unwrap();
        assert_eq!(bushy.cardinality(), left_deep.cardinality());
        assert_eq!(bushy.table_mask(), left_deep.table_mask());
    }

    #[test]
    fn join_sets_is_consistent_with_equation_3() {
        // (R1) ⋈ (R2 ⋈ R3) bushy == 1000 under LS.
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        let right = q.join(&q.initial_state(1).unwrap(), 2).unwrap();
        let left = q.initial_state(0).unwrap();
        let all = q.join_sets(&left, &right).unwrap();
        assert_eq!(all.cardinality(), 1000.0);
    }

    #[test]
    fn join_sets_rejects_overlap_and_handles_empty() {
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        let a = q.initial_state(0).unwrap();
        assert!(q.join_sets(&a, &a).is_err());
        let empty = JoinState { tables: 0, cardinality: 0.0 };
        assert_eq!(q.join_sets(&a, &empty).unwrap(), a);
        assert_eq!(q.join_sets(&empty, &a).unwrap(), a);
    }

    #[test]
    fn join_sets_cartesian_when_disconnected() {
        let q = PreparedQuery::from_parts(
            vec![10.0, 20.0],
            Vec::new(),
            HashMap::new(),
            SelectivityRule::LargestSelectivity,
        );
        let s = q.join_sets(&q.initial_state(0).unwrap(), &q.initial_state(1).unwrap()).unwrap();
        assert_eq!(s.cardinality(), 200.0);
    }

    #[test]
    fn empty_order_estimates_nothing() {
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        assert!(q.estimate_order(&[]).unwrap().is_empty());
        assert!(q.estimate_order(&[2]).unwrap().is_empty());
    }

    /// Regression: table ids at or past the 64-table state mask used to
    /// reach `1 << table` (a shift-overflow panic in debug builds) and
    /// direct `table_cardinality[table]` indexing. Every entry point must
    /// return a typed error instead.
    #[test]
    fn out_of_range_tables_are_typed_errors_not_panics() {
        let q = example_1b(SelectivityRule::LargestSelectivity, Default::default());
        let s = q.initial_state(0).unwrap();
        for bad in [MAX_TABLES, MAX_TABLES + 1, usize::MAX] {
            assert!(matches!(
                q.initial_state(bad),
                Err(ElsError::InvalidJoinStep { reason: "table out of range", .. })
            ));
            assert!(matches!(q.join(&s, bad), Err(ElsError::InvalidJoinStep { .. })));
            assert!(q.explain_join(&s, bad).is_err());
            assert!(q.base_cardinality(bad).is_err());
            assert!(q.estimate_order(&[0, bad]).is_err());
        }
    }

    /// Regression: under Rule REP a class with no representative entry used
    /// to silently contribute selectivity 1.0 — a cartesian step planned as
    /// confident — from any drifted or hand-built `from_parts` input. It
    /// must now be a typed `DegenerateStats` error; every other rule keeps
    /// ignoring the representative map entirely.
    #[test]
    fn missing_representative_is_an_error_only_under_rule_rep() {
        let preds = transitive_closure(&[Predicate::col_eq(c(0, 0), c(1, 0))]);
        let classes = EquivalenceClasses::from_predicates(&preds);
        let infos =
            annotate_join_predicates(&preds, &classes, |cr| [10.0, 100.0][cr.table]).unwrap();
        for rule in [
            SelectivityRule::LargestSelectivity,
            SelectivityRule::SmallestSelectivity,
            SelectivityRule::Multiplicative,
        ] {
            let q =
                PreparedQuery::from_parts(vec![100.0, 1000.0], infos.clone(), HashMap::new(), rule);
            let s = q.join(&q.initial_state(0).unwrap(), 1).unwrap();
            assert!(s.cardinality() > 0.0, "{rule:?} must not need representatives");
            assert!(q.explain_join(&q.initial_state(0).unwrap(), 1).is_ok());
        }
        let q = PreparedQuery::from_parts(
            vec![100.0, 1000.0],
            infos,
            HashMap::new(),
            SelectivityRule::Representative,
        );
        let s0 = q.initial_state(0).unwrap();
        for err in [
            q.join(&s0, 1).unwrap_err(),
            q.explain_join(&s0, 1).unwrap_err(),
            q.join_sets(&s0, &q.initial_state(1).unwrap()).unwrap_err(),
        ] {
            assert!(matches!(err, ElsError::DegenerateStats(_)), "got {err:?}");
            assert!(err.to_string().contains("EC"), "error must name the class: {err}");
        }
    }

    /// Regression: a caller may hand `from_parts` more than [`MAX_TABLES`]
    /// cardinalities. Table 64 then exists in the vector but has no bit in
    /// the state mask — it must be rejected, not silently aliased to bit 0.
    #[test]
    fn oversized_table_vector_cannot_overflow_the_state_mask() {
        let q = PreparedQuery::from_parts(
            vec![10.0; MAX_TABLES + 8],
            Vec::new(),
            HashMap::new(),
            SelectivityRule::LargestSelectivity,
        );
        assert!(q.initial_state(MAX_TABLES - 1).is_ok());
        assert!(matches!(
            q.initial_state(MAX_TABLES),
            Err(ElsError::InvalidJoinStep { table, reason: "table out of range" })
                if table == MAX_TABLES
        ));
        let s = q.initial_state(0).unwrap();
        assert!(q.join(&s, MAX_TABLES).is_err());
        assert!(q.join(&s, MAX_TABLES + 7).is_err());
    }
}
