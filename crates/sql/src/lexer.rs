//! Tokenizer for the SPJ subset.

use crate::error::{SqlError, SqlResult};

/// One lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input where the token starts.
    pub position: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (case preserved; keyword checks are
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl TokenKind {
    /// True when this is the (case-insensitive) keyword `kw`.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `input`.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, position: start });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, position: start });
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, position: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, position: start });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, position: start });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, position: start });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ne, position: start });
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        position: start,
                        message: "expected `=` after `!`".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token { kind: TokenKind::Le, position: start });
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token { kind: TokenKind::Ne, position: start });
                    i += 2;
                }
                _ => {
                    tokens.push(Token { kind: TokenKind::Lt, position: start });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, position: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, position: start });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') => {
                            // `''` escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), position: start });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_digit() {
                        j += 1;
                    } else if b == '.'
                        && !is_float
                        && bytes.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        is_float = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad integer literal `{text}`"),
                    })?)
                };
                tokens.push(Token { kind, position: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..j].to_owned()),
                    position: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::Lex {
                    position: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_the_section8_query() {
        let ks = kinds("SELECT COUNT(*) FROM S, M WHERE s = m AND s < 100");
        assert_eq!(ks.len(), 17);
        assert!(ks[0].is_keyword("select"));
        assert_eq!(ks[2], TokenKind::LParen);
        assert_eq!(ks[3], TokenKind::Star);
        assert_eq!(ks[15], TokenKind::Lt);
        assert_eq!(ks[16], TokenKind::Int(100));
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds("42 -7 3.25 'it''s'"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(3.25),
                TokenKind::Str("it's".into())
            ]
        );
    }

    #[test]
    fn qualified_names() {
        assert_eq!(
            kinds("R1.x"),
            vec![TokenKind::Ident("R1".into()), TokenKind::Dot, TokenKind::Ident("x".into())]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("a ; b").unwrap_err();
        assert_eq!(err, SqlError::Lex { position: 2, message: "unexpected character `;`".into() });
        assert!(matches!(tokenize("'open"), Err(SqlError::Lex { .. })));
        assert!(matches!(tokenize("a ! b"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let ks = kinds("select FROM WhErE");
        assert!(ks[0].is_keyword("SELECT"));
        assert!(ks[1].is_keyword("from"));
        assert!(ks[2].is_keyword("where"));
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        assert!(tokenize("   ").unwrap().is_empty());
    }
}
