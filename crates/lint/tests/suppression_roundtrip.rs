//! Property test: a well-formed `// els-lint: allow(<lint>, "<reason>")`
//! comment survives the lexer → suppression-parser round trip byte for
//! byte, no matter what code surrounds it — including the constructs the
//! lexer exists to get right (raw strings containing `//`, nested block
//! comments, char literals that look like string openers).

use proptest::collection;
use proptest::prelude::*;

use els_lint::source::SourceFile;

/// Characters that may appear in a justification: everything printable
/// except `"` and `\` (the suppression grammar takes the reason as a plain
/// quoted span, no escapes — by design, so reasons stay greppable).
const REASON_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-.,:;!?()[]{}<>/'#@";

const LINTS: &[&str] =
    &["panic-freedom", "determinism", "metrics-only-io", "atomics-discipline", "layering"];

/// Surrounding lines chosen to confuse a text-level (non-lexing) scanner.
const DECOYS: &[&str] = &[
    "let url = r#\"https://example.com // not a comment\"#;",
    "/* outer /* nested \" */ still a comment */ let x = 1;",
    "let q = '\"'; let esc = '\\''; let lt: &'static str = \"//\";",
    "let s = \"string with // slashes and \\\" quote\";",
    "let b = b\"bytes // here\"; let r = r\"raw // there\";",
];

fn reason_from(indices: &[usize]) -> String {
    let mut s: String =
        indices.iter().map(|&i| REASON_CHARS[i % REASON_CHARS.len()] as char).collect();
    // The parser rejects blank reasons; trim-pad so every draw is valid.
    if s.trim().is_empty() {
        s = format!("x{s}");
    }
    s.trim().to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn suppression_comment_round_trips(
        idx in collection::vec(0usize..1000, 1..60),
        lint_i in 0usize..5,
        decoy_i in 0usize..5,
        trailing in proptest::bool::ANY,
    ) {
        let reason = reason_from(&idx);
        let lint = LINTS[lint_i % LINTS.len()];
        let decoy = DECOYS[decoy_i % DECOYS.len()];
        let comment = format!("// els-lint: allow({lint}, \"{reason}\")");
        let text = if trailing {
            format!("{decoy}\nlet v = s.len(); {comment}\n{decoy}\n")
        } else {
            format!("{decoy}\n{comment}\nlet v = s.len();\n{decoy}\n")
        };

        let file = SourceFile::parse("crates/demo/src/lib.rs", &text);
        prop_assert_eq!(
            file.errors.len(), 0,
            "unexpected parse errors: {:?}", file.errors
        );
        prop_assert_eq!(file.suppressions.len(), 1);
        let s = &file.suppressions[0];
        prop_assert_eq!(s.lint.as_str(), lint);
        prop_assert_eq!(s.reason.as_str(), reason.as_str(), "reason mangled in transit");
        // Both forms target the `let v` statement: its own line when
        // trailing (line 2), the line after the comment when standalone.
        prop_assert_eq!(s.applies_to, if trailing { 2 } else { 3 });
    }
}

/// Deleting the justification (or the whole argument list) must turn the
/// comment into a hard error, not a silent no-op — the ratchet depends on
/// suppressions being accountable.
#[test]
fn justification_is_mandatory() {
    for bad in [
        "// els-lint: allow(panic-freedom)",
        "// els-lint: allow(panic-freedom, )",
        "// els-lint: allow(panic-freedom, \"\")",
        "// els-lint: allow(panic-freedom, \"   \")",
        "// els-lint: allow(panic-freedom, reason without quotes)",
    ] {
        let text = format!("{bad}\nlet x = 1;\n");
        let file = SourceFile::parse("crates/demo/src/lib.rs", &text);
        assert!(!file.errors.is_empty(), "expected a hard error for {bad:?}");
        assert!(file.suppressions.is_empty(), "no suppression may arise from {bad:?}");
    }
}
