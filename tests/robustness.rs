//! Failure injection: hostile statistics and degenerate inputs must produce
//! errors or clamped estimates — never panics, NaNs, or negative sizes.

use els::core::prelude::*;
use proptest::prelude::*;

fn two_table_query() -> Vec<Predicate> {
    vec![
        Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
        Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, 10i64),
    ]
}

#[test]
fn non_finite_statistics_are_rejected() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(bad, vec![ColumnStatistics::with_distinct(1.0)]),
            TableStatistics::new(10.0, vec![ColumnStatistics::with_distinct(5.0)]),
        ]);
        assert!(
            Els::prepare(&two_table_query(), &stats, &ElsOptions::default()).is_err(),
            "cardinality {bad} must be rejected"
        );
        let stats = QueryStatistics::new(vec![
            TableStatistics::new(10.0, vec![ColumnStatistics::with_distinct(bad)]),
            TableStatistics::new(10.0, vec![ColumnStatistics::with_distinct(5.0)]),
        ]);
        assert!(
            Els::prepare(&two_table_query(), &stats, &ElsOptions::default()).is_err(),
            "distinct {bad} must be rejected"
        );
    }
}

#[test]
fn inconsistent_distinct_counts_are_rejected() {
    // More distinct values than rows.
    let stats = QueryStatistics::new(vec![
        TableStatistics::new(5.0, vec![ColumnStatistics::with_distinct(10.0)]),
        TableStatistics::new(10.0, vec![ColumnStatistics::with_distinct(5.0)]),
    ]);
    assert!(Els::prepare(&two_table_query(), &stats, &ElsOptions::default()).is_err());
}

#[test]
fn predicates_out_of_shape_are_rejected() {
    let stats = QueryStatistics::new(vec![TableStatistics::new(
        10.0,
        vec![ColumnStatistics::with_distinct(5.0)],
    )]);
    // Join predicate to a non-existent second table.
    assert!(Els::prepare(&two_table_query(), &stats, &ElsOptions::default()).is_err());
    // Column index out of range.
    let preds = vec![Predicate::local_cmp(ColumnRef::new(0, 7), CmpOp::Eq, 1i64)];
    assert!(Els::prepare(&preds, &stats, &ElsOptions::default()).is_err());
}

#[test]
fn empty_tables_propagate_zero_not_nan() {
    let stats = QueryStatistics::new(vec![
        TableStatistics::new(0.0, vec![ColumnStatistics::with_distinct(0.0)]),
        TableStatistics::new(10.0, vec![ColumnStatistics::with_distinct(5.0)]),
    ]);
    let preds = vec![Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0))];
    let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
    let final_size = els.estimate_final(&[0, 1]).unwrap();
    assert_eq!(final_size, 0.0);
    assert!(!final_size.is_nan());
}

#[test]
fn nan_literal_in_a_predicate_does_not_panic() {
    let stats = QueryStatistics::new(vec![TableStatistics::new(
        100.0,
        vec![ColumnStatistics::with_domain(100.0, 0.0, 99.0)],
    )]);
    let preds = vec![Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, f64::NAN)];
    let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
    let est = els.effective_cardinality(0).unwrap();
    assert!(est.is_finite());
    assert!(est >= 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any *valid* statistics and any well-shaped predicate set yields
    /// finite, non-negative estimates in every rule and order.
    #[test]
    fn estimates_are_always_finite_and_non_negative(
        rows in proptest::collection::vec(0u64..100_000, 3..=3),
        ds in proptest::collection::vec(0u64..100_000, 3..=3),
        consts in proptest::collection::vec(-1000i64..1000, 0..3),
        order_seed in 0u64..6,
    ) {
        let stats = QueryStatistics::new(
            rows.iter()
                .zip(&ds)
                .map(|(&r, &d)| {
                    let d = d.min(r);
                    TableStatistics::new(r as f64, vec![ColumnStatistics::with_distinct(d as f64)])
                })
                .collect(),
        );
        let mut preds = vec![
            Predicate::join_eq(ColumnRef::new(0, 0), ColumnRef::new(1, 0)),
            Predicate::join_eq(ColumnRef::new(1, 0), ColumnRef::new(2, 0)),
        ];
        for (i, &c) in consts.iter().enumerate() {
            preds.push(Predicate::local_cmp(
                ColumnRef::new(i % 3, 0),
                [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq][i % 3],
                c,
            ));
        }
        let orders = [[0usize, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let order = orders[order_seed as usize];
        for rule in [
            SelectivityRule::Multiplicative,
            SelectivityRule::SmallestSelectivity,
            SelectivityRule::LargestSelectivity,
            SelectivityRule::Representative,
        ] {
            let els = Els::prepare(&preds, &stats, &ElsOptions::default().with_rule(rule)).unwrap();
            for size in els.estimate_order(&order).unwrap() {
                prop_assert!(size.is_finite(), "{rule:?} produced {size}");
                prop_assert!(size >= 0.0, "{rule:?} produced {size}");
            }
        }
    }

    /// Effective statistics are internally consistent for arbitrary valid
    /// inputs: 0 <= ||R||' <= ||R|| and 0 <= d' <= min(d, ||R||').
    #[test]
    fn effective_stats_invariants(
        rows in 1u64..100_000,
        d in 1u64..100_000,
        cut in -100i64..200_000,
    ) {
        let d = d.min(rows);
        let stats = QueryStatistics::new(vec![TableStatistics::new(
            rows as f64,
            vec![
                ColumnStatistics::with_domain(d as f64, 0.0, (d - 1) as f64),
                ColumnStatistics::with_distinct((d / 2).max(1).min(rows) as f64),
            ],
        )]);
        let preds = vec![Predicate::local_cmp(ColumnRef::new(0, 0), CmpOp::Lt, cut)];
        let els = Els::prepare(&preds, &stats, &ElsOptions::default()).unwrap();
        let eff = els.effective_stats();
        let t = &eff.tables[0];
        prop_assert!(t.cardinality >= 0.0 && t.cardinality <= t.original_cardinality + 1e-9);
        for (i, &dp) in t.column_distinct.iter().enumerate() {
            prop_assert!(dp >= 0.0);
            prop_assert!(dp <= t.original_distinct[i] + 1e-9, "column {i}: {dp}");
            prop_assert!(dp <= t.cardinality + 1e-9, "column {i}: {dp} > rows {}", t.cardinality);
        }
    }
}
