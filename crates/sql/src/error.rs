//! Error type for the SQL front-end.

use std::fmt;

/// Errors from lexing, parsing, or binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexer hit an unexpected character.
    Lex {
        /// Byte offset of the offender.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// Parser found an unexpected token.
    Parse {
        /// Byte offset of the offending token.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// Name resolution failed or a predicate shape is unsupported.
    Bind(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => write!(f, "lex error at {position}: {message}"),
            SqlError::Parse { position, message } => {
                write!(f, "parse error at {position}: {message}")
            }
            SqlError::Bind(message) => write!(f, "bind error: {message}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<els_catalog::CatalogError> for SqlError {
    fn from(e: els_catalog::CatalogError) -> Self {
        SqlError::Bind(e.to_string())
    }
}

/// Result alias for this crate.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_positions() {
        let e = SqlError::Parse { position: 17, message: "expected FROM".into() };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("expected FROM"));
    }

    #[test]
    fn catalog_errors_convert() {
        let e: SqlError = els_catalog::CatalogError::UnknownTable("t".into()).into();
        assert!(matches!(e, SqlError::Bind(_)));
    }
}
