//! The engine's single poisoned-lock policy: **recover**.
//!
//! Every shared structure in the engine guarded by a `Mutex`/`RwLock` —
//! the plan cache, the metrics registry, the feedback store, the shared
//! catalog — maintains its invariants at every point a panic can unwind
//! through (plain counters, maps, and copy-on-write snapshots; no
//! multi-step states held across calls into user code). Poisoning
//! therefore adds no safety and subtracts a lot of availability: one
//! panicking worker thread would cascade `PoisonError`s into every other
//! thread touching the engine. These helpers centralize the decision to
//! take the guard anyway, so the policy is written (and lintable) in
//! exactly one place instead of being re-decided at each `lock()` site.
//!
//! If a structure ever *does* need partial-update protection, it should
//! not reach for poisoning — it should keep a generation counter or build
//! the new state off to the side and swap it in, as `SharedCatalog` does.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub fn lock_recovering<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Take a read lock, recovering the guard if a writer panicked.
pub fn read_recovering<T: ?Sized>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Take a write lock, recovering the guard if a previous holder panicked.
pub fn write_recovering<T: ?Sized>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison<T: Send + Sync + 'static>(m: &Arc<Mutex<T>>) {
        let m2 = Arc::clone(m);
        let res = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first holder");
            panic!("deliberate: poison the mutex");
        })
        .join();
        assert!(res.is_err(), "worker should have panicked");
    }

    #[test]
    fn poisoned_mutex_recovers_with_data_intact() {
        let m = Arc::new(Mutex::new(41));
        poison(&m);
        assert!(m.is_poisoned());
        *lock_recovering(&m) += 1;
        assert_eq!(*lock_recovering(&m), 42);
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let res = std::thread::spawn(move || {
            let _guard = l2.write().expect("first writer");
            panic!("deliberate: poison the rwlock");
        })
        .join();
        assert!(res.is_err());
        assert_eq!(read_recovering(&l).len(), 3);
        write_recovering(&l).push(4);
        assert_eq!(*read_recovering(&l), vec![1, 2, 3, 4]);
    }
}
