//! The one place the engine reads a wall clock.
//!
//! PR 3 made `Observations` compare timing-blind (a manual `PartialEq`
//! skips the elapsed vectors) exactly so differential tests never depend
//! on wall time. That property survives only if clock reads stay behind a
//! single seam: the `determinism` pass of `els-lint` bans `Instant` and
//! `SystemTime` in every other library module, and this file is its entire
//! allowlist. Operators measure durations through [`Stopwatch`]; nothing
//! else in library code may observe time.

use std::time::Duration;
// The clippy-level twin of the els-lint determinism pass disallows
// `Instant::now` everywhere; this module is the seam it points to.
#[allow(clippy::disallowed_methods)]
mod clock {
    use std::time::{Duration, Instant};

    /// A started wall-clock measurement.
    #[derive(Debug, Clone, Copy)]
    pub struct Stopwatch {
        start: Instant,
    }

    impl Stopwatch {
        /// Start measuring now.
        pub fn start() -> Stopwatch {
            Stopwatch { start: Instant::now() }
        }

        /// Wall time since [`Stopwatch::start`].
        pub fn elapsed(&self) -> Duration {
            self.start.elapsed()
        }
    }
}

pub use clock::Stopwatch;

/// Measure one closure, returning its result and its wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn timed_returns_the_closure_result() {
        let (v, d) = timed(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }
}
